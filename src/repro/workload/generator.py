"""Synthetic XML workload generators.

The paper's own examples define the document shapes the experiments need:
the ``/Catalog/Categories/Product`` collection of Table 2, the recursive
``<a>`` nesting of the Fig. 7 state-explosion discussion, and the
``//b/s[.//t = "XML" and f/@w > 300]`` pattern of Fig. 6.  All generators are
seeded and deterministic.
"""

from __future__ import annotations

import random

_WORDS = ("alpha bravo charlie delta echo foxtrot golf hotel india juliet "
          "kilo lima mike november oscar papa quebec romeo sierra tango "
          "uniform victor whiskey xray yankee zulu").split()


def _words(rng: random.Random, count: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def catalog_document(n_products: int, seed: int = 0,
                     description_words: int = 6) -> str:
    """A Table-2-shaped product catalog.

    Prices are uniform in [10, 500), discounts in [0, 0.5); each product has
    ``@id``, ``ProductName``, ``RegPrice``, ``Discount`` and a free-text
    ``Description``.
    """
    rng = random.Random(seed)
    parts = ["<Catalog><Categories>"]
    for i in range(n_products):
        price = round(rng.uniform(10, 500), 2)
        discount = round(rng.uniform(0, 0.5), 3)
        parts.append(
            f'<Product id="p{seed}-{i}">'
            f"<ProductName>{rng.choice(_WORDS).title()}{i}</ProductName>"
            f"<RegPrice>{price}</RegPrice>"
            f"<Discount>{discount}</Discount>"
            f"<Description>{_words(rng, description_words)}</Description>"
            f"</Product>")
    parts.append("</Categories></Catalog>")
    return "".join(parts)


def recursive_document(depth: int, leaf_text: str = "x",
                       name: str = "a") -> str:
    """``<a><a>...<a>x</a>...</a></a>`` — recursion degree = depth."""
    return (f"<{name}>" * depth) + leaf_text + (f"</{name}>" * depth)


def figure6_document(n_blocks: int, seed: int = 0,
                     xml_fraction: float = 0.5,
                     heavy_fraction: float = 0.5) -> str:
    """Documents matching the paper's Fig. 6 query shape.

    Each block is ``<b><s><t>...</t><f w='...'>...</f></s></b>``; a fraction
    of the ``t`` values is "XML" and a fraction of the ``w`` weights exceeds
    300, so ``//b/s[.//t = "XML" and f/@w > 300]`` selects a controllable
    subset.  Some blocks nest an extra ``b`` level to exercise recursion.
    """
    rng = random.Random(seed)
    parts = ["<r>"]
    for i in range(n_blocks):
        t_value = "XML" if rng.random() < xml_fraction else "SGML"
        weight = rng.randint(301, 900) if rng.random() < heavy_fraction \
            else rng.randint(1, 300)
        block = (f"<s><t>{t_value}</t>"
                 f'<f w="{weight}">{_words(rng, 3)}</f></s>')
        if rng.random() < 0.2:
            parts.append(f"<b><b>{block}</b></b>")
        else:
            parts.append(f"<b>{block}</b>")
    parts.append("</r>")
    return "".join(parts)


def random_tree(n_elements: int, seed: int = 0, max_children: int = 5,
                text_words: int = 3, tag_pool: tuple[str, ...] = (
                    "item", "entry", "node", "record", "group")) -> str:
    """A random element tree with ~``n_elements`` elements (E1-E3 fodder).

    Built breadth-biased with seeded randomness: every element gets a text
    child, interior elements fan out up to ``max_children``.
    """
    rng = random.Random(seed)
    budget = [n_elements - 1]

    def build(depth: int) -> str:
        tag = rng.choice(tag_pool)
        children = []
        if budget[0] > 0 and depth < 12:
            fanout = rng.randint(0, max_children)
            for _ in range(fanout):
                if budget[0] <= 0:
                    break
                budget[0] -= 1
                children.append(build(depth + 1))
        body = "".join(children) if children else _words(rng, text_words)
        return f"<{tag}>{body}</{tag}>"

    inner = []
    while budget[0] > 0:
        budget[0] -= 1
        inner.append(build(1))
    return "<root>" + "".join(inner) + "</root>"


def wide_document(n_children: int, payload_words: int = 4,
                  seed: int = 0) -> str:
    """One root with many flat children (packing-factor experiments)."""
    rng = random.Random(seed)
    parts = ["<root>"]
    for i in range(n_children):
        parts.append(f'<row n="{i}">{_words(rng, payload_words)}</row>')
    parts.append("</root>")
    return "".join(parts)


def employee_rows(n_rows: int, seed: int = 0) -> list[tuple]:
    """Relational rows for the Fig. 5 constructor workload:
    (id, name, hire date, department)."""
    rng = random.Random(seed)
    departments = ["Accting", "Eng", "Sales", "Legal", "Ops"]
    rows = []
    for i in range(n_rows):
        first = rng.choice(_WORDS).title()
        last = rng.choice(_WORDS).title()
        hire = f"19{rng.randint(70, 99)}-{rng.randint(1, 12):02d}-" \
               f"{rng.randint(1, 28):02d}"
        rows.append((1000 + i, f"{first} {last}", hire,
                     rng.choice(departments)))
    return rows
