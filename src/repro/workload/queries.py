"""Canned query/index workloads (Table 2 and Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table2Case:
    """One row of the paper's Table 2."""

    label: str
    access_method: str
    query: str
    index_paths: tuple[tuple[str, str, str], ...]  # (name, path, type)


TABLE2_CASES: tuple[Table2Case, ...] = (
    Table2Case(
        label="(1) DocID/NodeID list",
        access_method="list",
        query="/Catalog/Categories/Product[RegPrice > 100]",
        index_paths=(("ix_regprice",
                      "/Catalog/Categories/Product/RegPrice", "double"),),
    ),
    Table2Case(
        label="(2) DocID/NodeID filtering list",
        access_method="filtering",
        query="/Catalog/Categories/Product[Discount > 0.1]",
        index_paths=(("ix_discount", "//Discount", "double"),),
    ),
    Table2Case(
        label="(3) DocID/NodeID ANDing/ORing",
        access_method="anding",
        query=("/Catalog/Categories/Product[RegPrice > 100 and "
               "Discount > 0.1]"),
        index_paths=(("ix_regprice",
                      "/Catalog/Categories/Product/RegPrice", "double"),
                     ("ix_discount", "//Discount", "double")),
    ),
)

#: The Fig. 6 example path expression.
FIGURE6_QUERY = '//b/s[.//t = "XML" and f/@w > 300]'

#: The recursive pattern of the Fig. 7 active-state discussion.
RECURSIVE_QUERY = "//a//a//a"
