"""Background checkpointer and lazy writer (DB2's castout engines).

Synchronous checkpoints stall whichever thread crosses the
``checkpoint_interval`` commit threshold: that thread flushes *every*
dirty page under the engine latch while other sessions wait.  The
:class:`Checkpointer` moves that work to a background thread, two ways:

* **requested checkpoints** — ``TransactionManager.checkpoint_async`` is
  wired to :meth:`Checkpointer.request_checkpoint`, so the committing
  thread just sets an event and returns; the checkpointer thread takes
  the engine latch and runs the full flush + CHECKPOINT record itself;
* **trickle (lazy writing)** — between requests it writes back a few old
  dirty pages per cycle through ``flush_page``, choosing victims whose
  residency age has reached the ``buffer.eviction_residency`` histogram
  median: pages old enough that LRU eviction would soon write them
  *synchronously* on some request thread's miss path.  Trickled pages
  make later checkpoints (and evictions) nearly free.

The thread takes the engine latch for every cycle, so it interleaves
with request workers exactly like another session — including during
latch-yielding sleeps (lock-wait backoff, the group-commit window).
WAL discipline holds: the log is forced (``log.flush``) before any page
write-back, so no page can reach the device describing an update whose
log record is still volatile.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.analyze import sanitize as _sanitize
from repro.core.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ShardContext
    from repro.core.engine import Database


class Checkpointer:
    """Background checkpoint/lazy-writer thread over one ``Database``.

    Start with :meth:`start`, stop with :meth:`stop` (both idempotent).
    A fatal error in the background thread (including a simulated crash
    from a fault plan) is captured in :attr:`error` and ends the loop;
    the serving layer surfaces it at shutdown.

    Trickle writes run against an explicit :class:`ShardContext` — the
    lazy writer is the per-shard castout engine, so its pool and log come
    from the context (defaulting to the database's single shard), never
    from ambient ``db.*`` reach.  Full checkpoints stay an engine-level
    operation (``db.txns.checkpoint()``): the WAL checkpoint record spans
    the transaction manager's in-flight set, not one shard's pages.
    """

    #: Declared resource capture (SHARD003): the checkpointer charges its
    #: cycle metrics to its shard's stats sink for its whole life.
    _shard_scoped_ = ("stats",)

    def __init__(self, db: "Database", interval: float = 0.005,
                 trickle_pages: int = 8,
                 context: "ShardContext | None" = None) -> None:
        self.db = db
        self.context = context if context is not None else db.shard
        self.stats: StatsRegistry = self.context.stats
        #: Idle period between lazy-writer cycles.
        self.interval = interval
        #: Most dirty pages one trickle cycle writes back.
        self.trickle_pages = max(1, trickle_pages)
        self.error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._wake = threading.Event()
        #: An Event rather than a bare bool: set by any committing thread,
        #: consumed by the checkpointer thread — the flag itself must be a
        #: synchronized object, not an unlatched field.
        self._checkpoint_requested = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Checkpointer":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(target=self._loop,
                                            name="checkpointer",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """End the loop and join the thread (pending request still runs)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        self._wake.set()
        thread.join()
        self._thread = None
        if _sanitize.enabled():
            # Witness the owner's post-join read of the thread's error
            # slot: the join itself is the synchronization (Eraser keeps
            # the field in read-shared state — writer thread, then one
            # reader — so this never trips, by design).
            _sanitize.shared_access(self.stats, "Checkpointer", "error",
                                    write=False)

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- the request side (committing threads) -----------------------------

    def request_checkpoint(self) -> None:
        """Ask the background thread for a full checkpoint (non-blocking).

        This is what ``TransactionManager.checkpoint_async`` points at:
        the committing thread returns immediately instead of flushing the
        whole pool itself.  Requests coalesce — many commits crossing the
        threshold while one checkpoint is pending produce one checkpoint.
        """
        self.stats.add("ckpt.requests")
        self._checkpoint_requested.set()
        self._wake.set()

    # -- the background thread ---------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            try:
                self._cycle()
            except BaseException as error:  # noqa: B036 - thread boundary
                # Simulated crashes (BaseException) and real bugs both end
                # the loop; the owner (serving layer) re-raises at
                # shutdown.  Swallowing here would hide a dead lazy
                # writer behind slowly accreting dirty pages.
                if _sanitize.enabled():
                    _sanitize.shared_access(self.stats, "Checkpointer",
                                            "error", write=True)
                self.error = error
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    raise  # interpreter shutdown: do not sit on it
                return
        # One last drain so a checkpoint requested during shutdown is not
        # silently dropped.
        if self._checkpoint_requested.is_set() and self.error is None:
            try:
                self._cycle()
            except BaseException as error:  # noqa: B036 - thread boundary
                if _sanitize.enabled():
                    _sanitize.shared_access(self.stats, "Checkpointer",
                                            "error", write=True)
                self.error = error
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    raise

    def _cycle(self) -> None:
        """One unit of background work, under the engine latch.

        The latch acquisition is charged to the ``ckpt.interference`` wait
        class: time the background writer spent blocked behind foreground
        request workers (the reverse direction — workers blocked behind a
        checkpoint cycle — lands in their ``latch.wait``).  Charged from a
        timestamp taken before the ``with`` rather than a ``wait_timer``
        around an explicit ``acquire`` so the latch region stays a plain
        ``with`` block the static latch-inference checkers can see.
        """
        latch_wait_from = time.monotonic_ns()
        with self.db.latch:
            self.stats.charge_wait(
                "ckpt.interference",
                (time.monotonic_ns() - latch_wait_from) // 1000)
            self.stats.add("ckpt.cycles")
            if self._checkpoint_requested.is_set():
                self._checkpoint_requested.clear()
                self.db.txns.checkpoint()
                self.stats.add("ckpt.background_checkpoints")
            else:
                self._trickle()

    def _trickle(self) -> None:
        """Write back up to ``trickle_pages`` old dirty unpinned frames."""
        context = self.context
        pool = context.pool
        _sanitize.check_shard_mix(self.stats, "Checkpointer._trickle",
                                  pool, context.log, self.stats)
        candidates = pool.dirty_page_ages()
        if not candidates:
            return
        threshold = 0
        residency = self.stats.histogram("buffer.eviction_residency")
        if residency is not None and residency.count:
            threshold = residency.quantile(0.5)
        victims = [page_id for age, page_id in candidates
                   if age >= threshold][:self.trickle_pages]
        if not victims:
            return
        # WAL rule: force the log before pages describing logged updates
        # can reach the device.
        context.log.flush()
        for page_id in victims:
            pool.flush_page(page_id)
        self.stats.add("ckpt.trickle_pages", len(victims))
        self.stats.observe("ckpt.trickle_batch", len(victims))
