"""Request deadlines: a wall-clock budget threaded through the engine.

A :class:`Deadline` is created at the serving layer's front door (one per
request) and propagates through :meth:`Database.run_in_txn` into the
transaction layer, where the interactive lock-wait loop checks it between
backoff steps and the retry machinery caps its jittered sleeps against it.
Expiry raises :class:`~repro.errors.DeadlineExceededError` — a typed,
non-retryable outcome clients can distinguish from contention
(``LockTimeoutError``/``DeadlockError``, which *are* retryable).

Deadlines are wall-clock (``time.monotonic``) because the serving layer is
real threads: while one session waits on a lock the holder runs on another
thread, so time genuinely passes.  Single-threaded engine use is
unaffected — without a serving layer no real time elapses inside the
simulated wait loop, so only an already-expired deadline can fire there.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.stats import StatsRegistry


class Deadline:
    """An absolute point in monotonic time a request must finish by."""

    __slots__ = ("expires_at",)

    expires_at: float

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` of wall-clock time from now."""
        return cls(time.monotonic() + seconds)

    @classmethod
    def expired_deadline(cls) -> "Deadline":
        """An already-expired deadline (tests and shed paths)."""
        return cls(time.monotonic())

    def remaining(self) -> float:
        """Seconds left before expiry (0.0 once expired)."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def clamp(self, seconds: float) -> float:
        """``seconds`` capped to the remaining budget (never negative)."""
        return max(0.0, min(seconds, self.remaining()))

    def sleep(self, seconds: float, stats: "StatsRegistry") -> float:
        """Sleep ``seconds`` clamped to the remaining budget; return the
        duration actually slept.

        The suspension is charged to the ``deadline.sleep`` wait class —
        the registry is a required argument precisely so no caller can
        sleep against a deadline without accounting for it (the STAT004
        hygiene check enforces that discipline on every ``time.sleep``
        site in the tree).
        """
        duration = self.clamp(seconds)
        if duration <= 0:
            return 0.0
        with stats.wait_timer("deadline.sleep"):
            time.sleep(duration)
        return duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.4f}s)"
