"""The System R/X engine facade (Fig. 1 and Fig. 2 glued together).

A :class:`Database` owns the shared relational infrastructure (device,
buffer pool, catalog, log, locks) plus the XML services: base tables with XML
columns get an implicit ``DocID`` column, one internal XML table (an
:class:`~repro.xmlstore.store.XmlStore`) per XML column, a DocID index
mapping DocIDs back to base rows, and any number of XPath value indexes.

DDL and DML are logged; :meth:`Database.replay` performs archive recovery by
re-executing the committed log against a fresh database — record placement is
deterministic, so all physical IDs reproduce.
"""

from __future__ import annotations

import datetime as _dt
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass
from decimal import Decimal
from typing import Callable, TypeVar

from repro.analyze import sanitize as _sanitize
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.context import ShardContext
from repro.core.deadline import Deadline
from repro.core.stats import StatsRegistry
from repro.errors import (CatalogError, DeadlineExceededError, DeadlockError,
                          DocumentNotFoundError, LockTimeoutError, QueryError)
from repro.indexes.definition import XPathIndexDefinition
from repro.indexes.manager import XPathValueIndex
from repro.lang import ast
from repro.obs.explain import ExplainResult
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.tracer import Tracer
from repro.query.executor import Executor, QueryMatch
from repro.query.plan import AccessMethod, AccessPlan
from repro.query.planner import Planner
from repro.rdb import codec
from repro.rdb.btree import BTree
from repro.rdb.buffer import BufferPool
from repro.rdb.catalog import Catalog, ColumnDef, IndexDef, TableDef
from repro.rdb.storage import Disk
from repro.rdb.table import Table
from repro.rdb.tablespace import Rid
from repro.rdb.txn import IsolationLevel, TransactionManager, TxnState
from repro.rdb.values import SqlType
from repro.rdb.wal import (GroupCommitter, LogManager, LogOp,
                           replay as wal_replay)
from repro.xdm.serializer import serialize
from repro.xmlstore.store import XmlStore
from repro.xmlstore.update import XmlUpdater
from repro.xpath.cache import cached_parse


@dataclass(frozen=True)
class XPathResult:
    """One XPath query result row."""

    docid: int
    base_rid: Rid
    row: tuple
    match: QueryMatch

    @property
    def node_id(self) -> bytes | None:
        return self.match.item.node_id


_T = TypeVar("_T")


class Database:
    """One engine instance: relational services + XML services.

    Passing a :class:`~repro.fault.injector.FaultInjector` threads a fault
    plan through the whole storage stack: the device is wrapped in a
    :class:`~repro.fault.disk.FaultyDisk` and the log manager fires the
    injector's crash points, so any workload can run under injected
    failures without further plumbing.
    """

    #: Declared resource capture (SHARD003): the engine's stats sink may
    #: be supplied by the caller (experiments share one registry across
    #: engines); everything else the facade owns it constructs itself.
    _shard_scoped_ = ("stats",)

    def __init__(self, config: EngineConfig = DEFAULT_CONFIG,
                 stats: StatsRegistry | None = None,
                 injector: "object | None" = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.injector = injector
        #: Engine latch: the engine's internals are single-threaded, so a
        #: concurrent front end (``repro.serve``) serializes every engine
        #: entry behind this lock.  The latch is deliberately *yielded*
        #: while a transaction sleeps — inside the lock-wait backoff loop
        #: (``TransactionManager.lock_wait_yield``) and during victim-retry
        #: backoff (:attr:`backoff_sleep`) — which is exactly when another
        #: session's progress is what unblocks this one.  Wrapped in a
        #: :class:`~repro.analyze.sanitize.TrackedLock` so the lockset
        #: sanitizer can witness "held the engine latch" — the ambient
        #: guard the static race analysis cannot prove for structures like
        #: the group committer.
        self.latch = _sanitize.TrackedLock("db.latch", threading.RLock())
        #: Jitter source for victim-retry backoff (seeded for determinism).
        self._retry_rng = random.Random(config.txn_retry_jitter_seed)
        #: How ``run_in_txn`` sleeps between victim retries.  Defaults to
        #: ``time.sleep``; the serving layer installs a latch-releasing
        #: sleep so a backoff never stalls other sessions.
        self.backoff_sleep: Callable[[float], None] | None = None
        disk = Disk(config.page_size, stats=self.stats)
        if injector is not None:
            from repro.fault.disk import FaultyDisk
            disk = FaultyDisk(disk, injector)
        self.disk = disk
        self.pool = BufferPool(self.disk, capacity=config.buffer_pool_pages)
        self.catalog = Catalog()
        self.log = LogManager(stats=self.stats, injector=injector,
                              auto_flush=not config.txn_group_commit)
        self.txns = TransactionManager(
            log=self.log, stats=self.stats,
            lock_wait_budget=config.lock_wait_budget,
            lock_backoff_initial=config.lock_backoff_initial,
            lock_backoff_cap=config.lock_backoff_cap,
            checkpoint_every=config.checkpoint_interval,
            on_checkpoint=self.pool.flush_all,
            accounting_size=config.accounting_ring_size)
        self.txns.on_txn_end = self._sanitize_txn_end
        #: Group committer (``config.txn_group_commit``): commits are
        #: hardened by shared window forces; the serving layer installs
        #: its latch-yielding wait hook so a leader can actually collect
        #: companions.  ``None`` keeps the auto-flush-per-append path.
        self.group_commit: GroupCommitter | None = None
        if config.txn_group_commit:
            self.group_commit = GroupCommitter(
                self.log, self.stats,
                window=config.txn_group_commit_window,
                max_group=config.txn_group_commit_max)
            self.txns.group_commit = self.group_commit
        #: The engine's single shard (ROADMAP item 2): every storage
        #: component below the facade takes its singleton resources from
        #: this explicit capability bundle instead of ambient reach —
        #: today one context over the engine's own singletons, later N
        #: contexts over N pools/logs without touching the components.
        self.shard = ShardContext(
            shard_id=0, pool=self.pool, log=self.log,
            locks=self.txns.locks, catalog=self.catalog, stats=self.stats)
        #: Slow-query ring buffer (see ``EngineConfig.slow_query_*``).
        self.slow_queries = SlowQueryLog(config.slow_query_log_size)
        self._slow_thresholds = config.slow_query_thresholds()
        self.tables: dict[str, Table] = {}
        self.xml_stores: dict[tuple[str, str], XmlStore] = {}
        self.docid_indexes: dict[str, BTree] = {}
        self.value_indexes: dict[str, XPathValueIndex] = {}

    # -- DDL -----------------------------------------------------------------

    def create_table(self, name: str,
                     columns: list[tuple[str, str]]) -> TableDef:
        """Create a base table; ``columns`` are (name, SQL type) pairs."""
        definition = TableDef(name, [
            ColumnDef(col_name, SqlType.parse(col_type))
            for col_name, col_type in columns
        ])
        self._apply_create_table(definition)
        payload = bytearray()
        codec.write_str(payload, name)
        codec.write_uvarint(payload, len(columns))
        for col_name, col_type in columns:
            codec.write_str(payload, col_name)
            codec.write_str(payload, col_type)
        self.log.append(-1, LogOp.DDL, "create_table", bytes(payload))
        return definition

    def _apply_create_table(self, definition: TableDef) -> None:
        self.catalog.add_table(definition)
        table = Table(definition, self.pool, context=self.shard)
        self.tables[definition.name] = table
        if definition.has_xml:
            self.docid_indexes[definition.name] = BTree(
                self.pool, name=f"docix.{definition.name}", unique=True,
                context=self.shard)
            for column in definition.xml_columns:
                store = XmlStore(self.pool, self.catalog.names,
                                 record_limit=self.config.record_size_limit,
                                 name=f"{definition.name}.{column.name}",
                                 context=self.shard)
                self.xml_stores[(definition.name, column.name)] = store

    def create_xpath_index(self, name: str, table: str, column: str,
                           path: str, key_type: str,
                           namespaces: dict[str, str] | None = None
                           ) -> XPathValueIndex:
        """Create an XPath value index on an XML column (§3.3)."""
        store = self._store(table, column)
        definition = XPathIndexDefinition(name, path, key_type, namespaces)
        index = XPathValueIndex(definition, self.pool, self.catalog.names,
                                context=self.shard)
        index.attach(store)
        self.value_indexes[name] = index
        self.catalog.add_index(IndexDef(name, table, "xpath", {
            "column": column, **definition.spec()}))
        payload = bytearray()
        for text in (name, table, column, path, key_type):
            codec.write_str(payload, text)
        self.log.append(-1, LogOp.DDL, "create_xpath_index", bytes(payload))
        return index

    def register_schema(self, name: str, schema_text: str) -> None:
        """Compile and register an XML schema (Fig. 4)."""
        from repro.xschema.compiler import compile_schema
        compiled = compile_schema(schema_text)
        self.catalog.register_schema(name, compiled)
        payload = bytearray()
        codec.write_str(payload, name)
        codec.write_str(payload, schema_text)
        self.log.append(-1, LogOp.DDL, "register_schema", bytes(payload))

    # -- DML -----------------------------------------------------------------------

    def insert(self, table: str, row: tuple, txn_id: int = -1,
               validate_against: str | None = None) -> Rid:
        """Insert a row; XML column values are XML text strings.

        All XML columns of the row share one implicit DocID (§3.1).
        """
        with self.stats.trace("db.insert", table=table) as span, \
                self.txns.charging(txn_id):
            definition = self.catalog.table(table)
            if len(row) != len(definition.columns):
                raise QueryError(
                    f"row has {len(row)} values for "
                    f"{len(definition.columns)} columns of {table!r}")
            self.log.append(txn_id, LogOp.INSERT, table,
                            _encode_engine_row(row),
                            validate_against.encode()
                            if validate_against else b"")
            rid = self._apply_insert(definition, row, validate_against)
            txn = self.txns.active.get(txn_id)
            if txn is not None:
                txn.on_abort(lambda: self._apply_delete(table, rid))
            if span is not None:
                span.set("rid", str(rid))
            return rid

    def _apply_insert(self, definition: TableDef, row: tuple,
                      validate_against: str | None) -> Rid:
        storage_row = list(row)
        docid = None
        if definition.has_xml:
            docid = self.catalog.next_docid(definition.name)
            for position, column in enumerate(definition.columns):
                if column.sql_type is not SqlType.XML:
                    continue
                xml_text = row[position]
                if xml_text is None:
                    storage_row[position] = None
                    continue
                store = self.xml_stores[(definition.name, column.name)]
                if validate_against is not None and \
                        self.config.validate_on_insert:
                    from repro.xschema.validator import validate_text
                    stream = validate_text(
                        self.catalog.schema(validate_against), xml_text)
                    store.insert_document_events(docid, stream.events())
                else:
                    store.insert_document_text(docid, str(xml_text))
                storage_row[position] = docid
        rid = self.tables[definition.name].insert(tuple(storage_row))
        if docid is not None:
            self.docid_indexes[definition.name].insert(
                docid.to_bytes(8, "big"), rid.to_bytes())
        return rid

    def delete_row(self, table: str, rid: Rid, txn_id: int = -1) -> None:
        """Delete a base row and its XML documents.

        Inside a transaction the delete registers a logical-undo action
        (mirroring :meth:`insert`): abort re-inserts the row image —
        including its XML documents' text — so an aborted delete leaves
        the document queryable in the live engine, not just after replay.
        """
        with self.txns.charging(txn_id):
            txn = self.txns.active.get(txn_id)
            definition = self.catalog.table(table)
            restore_row = self._snapshot_row(definition, rid) \
                if txn is not None else None
            self.log.append(txn_id, LogOp.DELETE, table, rid.to_bytes())
            self._apply_delete(table, rid)
            if txn is not None:
                txn.on_abort(lambda: self._apply_insert(
                    definition, restore_row, None))

    def _snapshot_row(self, definition: TableDef, rid: Rid) -> tuple:
        """Engine-level row image at ``rid`` (XML columns as text).

        This is the pre-image a delete's logical undo re-inserts.  The
        restored documents get fresh DocIDs/RIDs — logical undo restores
        content, not physical placement, exactly like the archive-recovery
        path.
        """
        row = list(self.tables[definition.name].fetch(rid))
        for position, column in enumerate(definition.columns):
            if column.sql_type is SqlType.XML and row[position] is not None:
                row[position] = self.get_document(
                    definition.name, column.name, row[position])
        return tuple(row)

    def _apply_delete(self, table: str, rid: Rid) -> None:
        definition = self.catalog.table(table)
        row = self.tables[table].delete(rid)
        for position, column in enumerate(definition.columns):
            if column.sql_type is SqlType.XML and row[position] is not None:
                docid = row[position]
                self.xml_stores[(table, column.name)].delete_document(docid)
                self.docid_indexes[table].delete(docid.to_bytes(8, "big"))

    def updater(self, table: str, column: str) -> XmlUpdater:
        """Node-level updater for one XML column."""
        return XmlUpdater(self._store(table, column))

    # -- queries -----------------------------------------------------------------------

    def planner(self, table: str, column: str) -> Planner:
        store = self._store(table, column)
        indexes = [
            self.value_indexes[ix.name]
            for ix in self.catalog.indexes_on(table, kind="xpath")
            if ix.spec.get("column") == column
        ]
        return Planner(store, indexes)

    def plan_xpath(self, table: str, column: str, path_text: str,
                   namespaces: dict[str, str] | None = None,
                   method: AccessMethod | None = None) -> AccessPlan:
        path = cached_parse(path_text, namespaces, stats=self.stats)
        if not isinstance(path, ast.LocationPath):
            raise QueryError(f"{path_text!r} is not a location path")
        return self.planner(table, column).plan(path, force_method=method)

    def xpath(self, table: str, column: str, path_text: str,
              namespaces: dict[str, str] | None = None,
              method: AccessMethod | None = None) -> list[XPathResult]:
        """Evaluate an XPath query over one XML column.

        Returns one result per matched node, joined back to the base row
        through the DocID index (Fig. 2).

        With any ``EngineConfig.slow_query_*`` threshold set, the query
        runs under a private tracer and its counter deltas are checked on
        completion: offenders land in :attr:`slow_queries` with their plan
        and span tree (see :mod:`repro.obs.slowlog`).
        """
        if not self._slow_thresholds:
            return self._xpath(table, column, path_text, namespaces,
                               method)[1]
        tracer = Tracer(self.stats, name="slow_query")
        with tracer.install():
            with self.stats.delta() as deltas:
                plan, out = self._xpath(table, column, path_text,
                                        namespaces, method)
        exceeded = {
            name: (deltas.get(name, 0), limit)
            for name, limit in self._slow_thresholds.items()
            if deltas.get(name, 0) > limit
        }
        if exceeded:
            self.stats.add("obs.slow_queries")
            self.slow_queries.emit(SlowQueryRecord(
                table=table, column=column, path=path_text,
                method=plan.method.value, rows=len(out),
                counters=deltas, exceeded=exceeded,
                plan_text=plan.explain(), root=tracer.root))
        return out

    def _xpath(self, table: str, column: str, path_text: str,
               namespaces: dict[str, str] | None = None,
               method: AccessMethod | None = None
               ) -> tuple[AccessPlan, list[XPathResult]]:
        with self.stats.trace("db.xpath", table=table, column=column,
                              path=path_text) as span:
            plan = self.plan_xpath(table, column, path_text, namespaces,
                                   method)
            out = self.execute_plan(table, column, plan)
            if span is not None:
                span.set("method", plan.method.value)
                span.set("rows", len(out))
            return plan, out

    def execute_plan(self, table: str, column: str,
                     plan: AccessPlan) -> list[XPathResult]:
        """Execute a previously built :class:`AccessPlan` (skip planning).

        This is the prepared-statement entry point: the serving layer's
        per-session statement cache plans a path once and replays the plan
        per execution.  Note a cached plan reflects the indexes that
        existed when it was planned; DDL invalidates it (the session cache
        drops plans on DDL, ad-hoc callers should re-plan).
        """
        store = self._store(table, column)
        matches = Executor(store, stats=self.stats).execute(plan)
        with self.stats.trace("db.docid_join") as join_span:
            docid_index = self.docid_indexes[table]
            base_table = self.tables[table]
            out = []
            for match in matches:
                rid_bytes = docid_index.search_one(
                    match.docid.to_bytes(8, "big"))
                if rid_bytes is None:  # pragma: no cover - index skew
                    continue
                base_rid = Rid.from_bytes(rid_bytes)
                out.append(XPathResult(match.docid, base_rid,
                                       base_table.fetch(base_rid), match))
            if join_span is not None:
                join_span.set("rows", len(out))
        return out

    def explain_analyze(self, table: str, column: str, path_text: str,
                        namespaces: dict[str, str] | None = None,
                        method: AccessMethod | None = None) -> ExplainResult:
        """Run the query for real and explain what happened (EXPLAIN ANALYZE).

        Returns an :class:`~repro.obs.explain.ExplainResult` pairing the
        chosen :class:`AccessPlan` with the captured span tree: actual row
        counts, per-operator counter deltas (index entries scanned, page
        touches, physical reads) and the evaluated candidates — DB2-style
        EXPLAIN output for the planner of §5.

        A fresh tracer is installed on this database's stats registry for
        the duration of the call (nesting with an outer tracer is fine; the
        outer one is restored afterwards).
        """
        plan = self.plan_xpath(table, column, path_text, namespaces, method)
        store = self._store(table, column)
        tracer = Tracer(self.stats, name="explain_analyze")
        with tracer.install():
            with tracer.span("query", table=table, column=column,
                             path=path_text,
                             method=plan.method.value) as span:
                matches = Executor(store, stats=self.stats).execute(plan)
                span.set("rows", len(matches))
        return ExplainResult(plan, matches, tracer.root)

    def serialize_result(self, table: str, column: str,
                         result: XPathResult) -> str:
        """XML text of a matched node's subtree."""
        store = self._store(table, column)
        if result.node_id is None:
            raise QueryError("result carries no node identity")
        return serialize(store.document(result.docid)
                         .node_events(result.node_id))

    def get_document(self, table: str, column: str, docid: int) -> str:
        """Full serialized document for a DocID."""
        return serialize(self._store(table, column).document(docid).events())

    # -- transactions and fault tolerance ------------------------------------------------

    def _sanitize_txn_end(self, txn) -> None:
        """Armed-sanitizer hook: no frame may stay pinned past a txn."""
        if _sanitize.enabled():
            _sanitize.check_pool_quiesced(
                self.pool, self.stats,
                where=f"end of txn {txn.txn_id} ({txn.state.value})",
                scope="thread")

    def close(self) -> None:
        """Quiesce the engine: checkpoint, flush, and (when armed) assert
        the shutdown invariants.

        Closing is idempotent.  With sanitizers armed
        (``REPRO_SANITIZE=1``), close verifies that no transaction is still
        active, no buffer frame is pinned and no lock is held — the state a
        clean shutdown must reach before the device image could be detached.
        """
        if getattr(self, "_closed", False):
            return
        if _sanitize.enabled():
            active = sorted(self.txns.active)
            if active:
                _sanitize.trip(self.stats, "active_txns_at_close",
                               f"close() with transactions still active: "
                               f"{active}")
            _sanitize.check_pool_quiesced(self.pool, self.stats,
                                          where="Database.close")
        self.checkpoint()
        # Only now is the engine really closed: if the checkpoint raised
        # (e.g. under fault injection) a later close() must retry it, not
        # silently no-op with the shutdown half done.
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Close (and run shutdown sanitizers) only on clean exit: an
        # in-flight exception already owns the failure report.
        if exc_type is None:
            self.close()

    def checkpoint(self) -> None:
        """Flush dirty pages and write a WAL CHECKPOINT record.

        Recovery's analysis pass starts at the newest checkpoint, so regular
        checkpointing bounds how much log a restart has to analyse (§2's
        reused relational recovery machinery).
        """
        self.txns.checkpoint()

    def _retry_backoff_delay(self, retry_index: int) -> float:
        """Jittered exponential backoff before victim retry ``retry_index``.

        ``min(cap, base * 2**retry_index)`` scaled by a jitter factor in
        [0.5, 1.5) from the seeded per-engine RNG — deterministic for a
        given config seed, and 0.0 whenever backoff is disabled
        (``txn_retry_backoff_base`` <= 0).
        """
        base = self.config.txn_retry_backoff_base
        if base <= 0:
            return 0.0
        cap = max(base, self.config.txn_retry_backoff_cap)
        delay = min(cap, base * (2 ** retry_index))
        return delay * (0.5 + self._retry_rng.random())

    def run_in_txn(self, body: Callable[["Database", object], _T],
                   isolation: IsolationLevel | None = None,
                   retries: int | None = None,
                   deadline: Deadline | None = None) -> _T:
        """Run ``body(db, txn)`` in a transaction, retrying victims.

        Commits on success and returns ``body``'s result.  On any engine
        error the transaction is aborted (undoing its changes); if the
        error was a deadlock or lock timeout the transaction is retried
        from scratch, up to ``retries`` times (default
        ``config.txn_retry_limit``), before the last error propagates.

        Victim retries back off with seeded jitter (see
        ``EngineConfig.txn_retry_backoff_*``) instead of restarting
        immediately: an immediate restart re-collides with the very
        transactions that just won, turning contention into a retry hot
        loop.  The slept time is charged to the transaction's accounting
        record as ``txn.retry_backoff_us``.

        ``deadline`` propagates into the transaction (capping its
        lock-wait budget) and gates each retry: once expired the work
        fails with :class:`~repro.errors.DeadlineExceededError` —
        non-retryable by construction, so a client deadline cannot be
        burned by the retry machinery.

        The whole call runs under a wait clock
        (:meth:`~repro.core.stats.StatsRegistry.request_clock`): every
        suspension any attempt hits — lock waits, the group-commit
        window, buffer I/O, the retry backoff itself — decomposes the
        call's elapsed time into per-class waits, reconciled by the
        ``sanitize.waits.reconcile`` check when sanitizers are armed.
        """
        with self.stats.request_clock():
            return self._run_txn_attempts(body, isolation, retries, deadline)

    def _run_txn_attempts(self, body: Callable[["Database", object], _T],
                          isolation: IsolationLevel | None,
                          retries: int | None,
                          deadline: Deadline | None) -> _T:
        limit = self.config.txn_retry_limit if retries is None else retries
        attempt = 0
        carry: Counter | None = None
        victims: list[int] = []
        while True:
            if deadline is not None and deadline.expired():
                self.stats.add("txn.deadline_exceeded")
                raise DeadlineExceededError(
                    f"deadline expired before transaction attempt "
                    f"{attempt} could begin")
            txn = self.txns.begin(isolation or IsolationLevel.READ_COMMITTED)
            txn.deadline = deadline
            if carry is not None:
                # Fold the aborted victim attempts into this attempt's
                # accounting: their charged work, the retry count and their
                # txn ids all land on the one record the final attempt
                # emits (a retried transaction is one unit of work).
                txn.acct.update(carry)
                txn.retries = attempt
                txn.victim_attempts = tuple(victims)
            with self.stats.trace("db.txn", txn_id=txn.txn_id,
                                  attempt=attempt) as span:
                try:
                    with txn.charging():
                        result = body(self, txn)
                except (DeadlockError, LockTimeoutError):
                    if txn.state is TxnState.ACTIVE:
                        txn.abort()
                    if span is not None:
                        span.set("outcome", "victim")
                    if attempt >= limit:
                        raise
                    attempt += 1
                    self.txns.accounting.retract(txn.txn_id)
                    delay = self._retry_backoff_delay(attempt - 1)
                    if deadline is not None:
                        delay = deadline.clamp(delay)
                    with txn.charging():
                        self.stats.add("txn.retries")
                        if delay > 0:
                            self.stats.add("txn.retry_backoff_us",
                                           int(delay * 1_000_000))
                    victims.append(txn.txn_id)
                    if delay > 0:
                        sleep = self.backoff_sleep or time.sleep
                        # Charged to the aborted attempt's sink (its acct
                        # is carried below), so the folded record's
                        # txn.retry_backoff wait survives into the final
                        # attempt like every other victim cost.
                        with txn.charging():
                            with self.stats.wait_timer("txn.retry_backoff"):
                                sleep(delay)
                    carry = Counter(txn.acct)
                    continue
                except BaseException:
                    if txn.state is TxnState.ACTIVE:
                        txn.abort()
                    if span is not None:
                        span.set("outcome", "abort")
                    raise
                if txn.state is TxnState.ACTIVE:
                    txn.commit()
                if span is not None:
                    span.set("outcome", "commit")
                return result

    # -- recovery -----------------------------------------------------------------------

    @classmethod
    def replay(cls, log: LogManager,
               config: EngineConfig = DEFAULT_CONFIG) -> "Database":
        """Archive recovery: re-execute the committed log (§2 utilities)."""
        db = cls(config)

        def apply(record) -> None:
            if record.op is LogOp.DDL:
                db._apply_ddl(record.target, record.payload)
            elif record.op is LogOp.INSERT:
                row = _decode_engine_row(record.payload)
                definition = db.catalog.table(record.target)
                validate = record.extra.decode() if record.extra else None
                db._apply_insert(definition, row, validate)
            elif record.op is LogOp.DELETE:
                db._apply_delete(record.target, Rid.from_bytes(record.payload))

        wal_replay(log, apply, committed_only=True)
        return db

    def _apply_ddl(self, kind: str, payload: bytes) -> None:
        if kind == "create_table":
            name, pos = codec.read_str(payload, 0)
            n_cols, pos = codec.read_uvarint(payload, pos)
            columns = []
            for _ in range(n_cols):
                col_name, pos = codec.read_str(payload, pos)
                col_type, pos = codec.read_str(payload, pos)
                columns.append(ColumnDef(col_name, SqlType.parse(col_type)))
            self._apply_create_table(TableDef(name, columns))
        elif kind == "create_xpath_index":
            pos = 0
            fields = []
            for _ in range(5):
                text, pos = codec.read_str(payload, pos)
                fields.append(text)
            name, table, column, path, key_type = fields
            store = self._store(table, column)
            definition = XPathIndexDefinition(name, path, key_type)
            index = XPathValueIndex(definition, self.pool, self.catalog.names,
                                    context=self.shard)
            index.attach(store)
            self.value_indexes[name] = index
            self.catalog.add_index(IndexDef(name, table, "xpath", {
                "column": column, **definition.spec()}))
        elif kind == "register_schema":
            from repro.xschema.compiler import compile_schema
            name, pos = codec.read_str(payload, 0)
            text, pos = codec.read_str(payload, pos)
            self.catalog.register_schema(name, compile_schema(text))
        else:
            raise CatalogError(f"unknown DDL record {kind!r}")

    # -- helpers --------------------------------------------------------------------------

    def _store(self, table: str, column: str) -> XmlStore:
        store = self.xml_stores.get((table, column))
        if store is None:
            raise DocumentNotFoundError(
                f"{table}.{column} is not an XML column")
        return store


# -- engine-level row codec (python values incl. XML text) --------------------

_CELL_NONE = 0
_CELL_INT = 1
_CELL_FLOAT = 2
_CELL_STR = 3
_CELL_BYTES = 4
_CELL_DECIMAL = 5
_CELL_DATE = 6


def _encode_engine_row(row: tuple) -> bytes:
    out = bytearray()
    codec.write_uvarint(out, len(row))
    for value in row:
        if value is None:
            out.append(_CELL_NONE)
        elif isinstance(value, bool):
            raise QueryError("boolean cells are not supported")
        elif isinstance(value, int):
            out.append(_CELL_INT)
            codec.write_svarint(out, value)
        elif isinstance(value, float):
            out.append(_CELL_FLOAT)
            codec.write_str(out, repr(value))
        elif isinstance(value, str):
            out.append(_CELL_STR)
            codec.write_str(out, value)
        elif isinstance(value, (bytes, bytearray)):
            out.append(_CELL_BYTES)
            codec.write_bytes(out, bytes(value))
        elif isinstance(value, Decimal):
            out.append(_CELL_DECIMAL)
            codec.write_str(out, str(value))
        elif isinstance(value, _dt.date):
            out.append(_CELL_DATE)
            codec.write_str(out, value.isoformat())
        else:
            raise QueryError(f"cannot log cell of type {type(value)}")
    return bytes(out)


def _decode_engine_row(payload: bytes) -> tuple:
    count, pos = codec.read_uvarint(payload, 0)
    values = []
    for _ in range(count):
        tag = payload[pos]
        pos += 1
        if tag == _CELL_NONE:
            values.append(None)
        elif tag == _CELL_INT:
            value, pos = codec.read_svarint(payload, pos)
            values.append(value)
        elif tag == _CELL_FLOAT:
            text, pos = codec.read_str(payload, pos)
            values.append(float(text))
        elif tag == _CELL_STR:
            text, pos = codec.read_str(payload, pos)
            values.append(text)
        elif tag == _CELL_BYTES:
            data, pos = codec.read_bytes(payload, pos)
            values.append(data)
        elif tag == _CELL_DECIMAL:
            text, pos = codec.read_str(payload, pos)
            values.append(Decimal(text))
        elif tag == _CELL_DATE:
            text, pos = codec.read_str(payload, pos)
            values.append(_dt.date.fromisoformat(text))
        else:
            raise QueryError(f"corrupt logged row (tag {tag})")
    return tuple(values)
