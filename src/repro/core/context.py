"""Shard context: the explicit capability bundle engine components run in.

ROADMAP item 2 (partitioned tablespaces + scatter-gather) requires that
engine components take their singleton resources — buffer pool, WAL, lock
manager, catalog, stats sink — from an *explicit* context instead of
reaching for ambient globals or cross-component field chains.  This is how
DB2 for z/OS data sharing (the paper's substrate, §2) isolates members: each
member runs against its own buffer pools and log, and only deliberately
shared structures (the group buffer pool, the coupling facility lock
structure) cross the member boundary.

:class:`ShardContext` is that bundle.  Today there is exactly one shard:
``Database`` builds ``ShardContext(shard_id=0, ...)`` over its existing
singletons and threads it into the storage tranche (table spaces, B+trees,
XML stores, checkpointer trickle).  A sharding PR later constructs N
contexts over N pools/logs and the components do not change.

The static side of the contract lives in ``repro.analyze.resources``
(SHARD001–004: ambient reach, instance mixing, undeclared captures,
split-footprint durability).  The dynamic side lives in
``repro.analyze.sanitize``: every resource bundled into a context is
stamped with the context's ``shard_id`` at construction, components
constructed *with* a context inherit the stamp of the pool they are given,
and ``check_shard_mix`` trips ``sanitize.shard.mix`` the moment one
operation combines resources stamped for different shards.

Components receiving a context may capture it (``self.context = context``)
— capturing the *bundle* is the sanctioned pattern; capturing a loose
resource requires a ``_shard_scoped_`` declaration (see SHARD003).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analyze import sanitize as _sanitize

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.stats import StatsRegistry
    from repro.rdb.buffer import BufferPool
    from repro.rdb.catalog import Catalog, NameTable
    from repro.rdb.locks import LockManager
    from repro.rdb.tablespace import TableSpace
    from repro.rdb.wal import LogManager


@dataclass(frozen=True, eq=False)
class ShardContext:
    """Frozen capability bundle for one shard.

    ``tablespaces`` and ``indexes`` are the shard's component registries:
    storage components constructed with this context register themselves,
    giving the shard an auditable inventory of everything that holds its
    pages (the per-member "what do I own" view a data-sharing member needs
    for castout and recovery).  The registries are mutable dictionaries
    inside a frozen shell on purpose: the *capabilities* never change after
    construction, the *inventory* grows as DDL runs.
    """

    shard_id: int
    pool: BufferPool
    log: LogManager
    locks: LockManager
    catalog: Catalog
    stats: StatsRegistry
    tablespaces: dict[str, TableSpace] = field(default_factory=dict)
    indexes: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for resource in (self.pool, self.log, self.locks, self.catalog,
                         self.stats):
            _sanitize.stamp_shard(resource, self.shard_id)

    @property
    def names(self) -> NameTable:
        """The shard's element/attribute name table (lives in the catalog)."""
        return self.catalog.names

    def register_tablespace(self, space: TableSpace) -> None:
        """Record ``space`` in this shard's tablespace inventory."""
        self.tablespaces[space.name] = space

    def register_index(self, name: str, index: object) -> None:
        """Record an index manager in this shard's index inventory."""
        self.indexes[name] = index

    def __repr__(self) -> str:
        return (f"ShardContext(shard_id={self.shard_id}, "
                f"tablespaces={len(self.tablespaces)}, "
                f"indexes={len(self.indexes)})")
