"""Engine instrumentation counters.

The paper's infrastructure box (Fig. 1) includes "instrumentation"; in this
reproduction every layer reports into a shared :class:`StatsRegistry` so that
experiments can measure page I/O, index traffic, lock waits and logged bytes
instead of (noisy) wall-clock time.  All counters are plain integers and the
registry is cheap enough to leave enabled permanently.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Any, Iterator

from repro.analyze import sanitize as _sanitize


#: The metric registry: every counter and gauge name engine code reports.
#:
#: Counters are created on first use, so a typo'd name would silently split
#: a metric in two; this frozenset is the single registration point the
#: ``stats-hygiene`` checker of :mod:`repro.analyze` verifies every literal
#: ``add``/``set_high_water`` call site against.  Names follow the
#: ``component.metric`` convention (lowercase dotted, >= 2 segments).
METRICS: frozenset[str] = frozenset({
    # physical device
    "disk.page_reads", "disk.page_writes", "disk.checksum_failures",
    # buffer pool
    "buffer.hits", "buffer.misses", "buffer.evictions", "buffer.flushes",
    # B+tree index manager
    "btree.searches", "btree.inserts", "btree.deletes",
    "btree.entries_scanned",
    # table spaces
    "ts.records_read", "ts.records_inserted", "ts.records_updated",
    "ts.records_deleted", "ts.bytes_touched",
    # write-ahead log and recovery
    "wal.records", "wal.bytes", "wal.checkpoints",
    # group commit: log forces, groups formed, leader/follower split
    "wal.flushes", "wal.group_commits", "wal.group_leads",
    "wal.group_follows",
    "recovery.replayed", "recovery.torn_tail_dropped",
    "recovery.from_checkpoint",
    # background checkpointer / lazy writer
    "ckpt.cycles", "ckpt.trickle_pages", "ckpt.background_checkpoints",
    "ckpt.requests",
    # lock manager
    "lock.acquired", "lock.waits", "lock.wait_steps", "lock.deadlocks",
    # transactions
    "txn.begun", "txn.aborts", "txn.retries", "txn.deadlocks",
    "txn.deadlock_aborts", "txn.timeout_aborts", "txn.lock_timeouts",
    "txn.retry_backoff_us", "txn.deadline_exceeded",
    # fault injection
    "fault.injected", "fault.crashes",
    # query executor
    "exec.docs_evaluated", "exec.index_probes", "exec.candidates",
    "exec.anchors_verified", "exec.exactness_misses",
    # XPath evaluation engines
    "xscan.events", "xscan.matchings", "xscan.peak_units",
    "automaton.peak_instances",
    "domeval.node_visits", "domeval.tree_nodes",
    # XPath parse/compile caches
    "xpath.parse_hits", "xpath.parse_misses",
    "xpath.compile_hits", "xpath.compile_misses",
    # runtime invariant sanitizers (repro.analyze.sanitize)
    "sanitize.checks", "sanitize.double_unpin",
    "sanitize.pinned_at_txn_end", "sanitize.locks_at_txn_end",
    "sanitize.lock_order", "sanitize.lsn_regression",
    "sanitize.active_txns_at_close", "sanitize.accounting_overcharge",
    "sanitize.race.lockset", "sanitize.waits.reconcile",
    "sanitize.shard.mix",
    # wait-state accounting (DB2 class-3 suspension analogue): microseconds
    # suspended per wait class.  Derived from :data:`WAITS` via
    # :func:`wait_counter`; both sides are listed so the registries stay
    # greppable and the exporters see them like any other counter.
    "waits.admission_queue_us", "waits.lock_wait_us", "waits.latch_wait_us",
    "waits.wal_force_us", "waits.wal_group_commit_us",
    "waits.buffer_read_io_us", "waits.buffer_write_io_us",
    "waits.ckpt_interference_us", "waits.txn_retry_backoff_us",
    "waits.deadline_sleep_us",
    # instrumentation facility (repro.obs.monitor / slow-query log)
    "obs.slow_queries", "obs.accounting_records",
    # serving layer (repro.serve): admission, sessions, outcomes
    "serve.requests", "serve.admitted", "serve.completed", "serve.failed",
    "serve.shed_queue_full", "serve.shed_overload", "serve.shed_closed",
    "serve.deadline_expired", "serve.overload_checks",
    "serve.sessions_opened", "serve.sessions_closed",
    "serve.stmt_hits", "serve.stmt_misses",
    "serve.chaos_faults",
})


#: The histogram registry: every distribution metric engine code observes.
#:
#: Histograms are the ``stats.observe(name, value)`` side of the facility —
#: power-of-two bucketed distributions with count/sum/max, for the hot-path
#: quantities where a mean hides the tail (one query scanning 40k index
#: entries).  Like :data:`METRICS`, this is the single registration point;
#: the ``stats-hygiene`` checker (STAT003) verifies every literal
#: ``observe`` call site against it.
HISTOGRAMS: frozenset[str] = frozenset({
    # B+tree: index entries scanned per search/probe
    "btree.search_entries",
    # QuickXScan: events consumed and peak live matching units per document
    "xscan.doc_events", "xscan.doc_peak_units",
    # lock manager: simulated wait steps per interactive lock acquire
    "lock.acquire_wait_steps",
    # write-ahead log: encoded bytes per hardened record, and commits
    # hardened per group-commit force (p50 > 1 means batching is working)
    "wal.record_bytes", "wal.group_size",
    # background checkpointer: dirty pages trickled per lazy-writer cycle
    "ckpt.trickle_batch",
    # buffer pool: pool accesses a frame stayed resident before eviction
    "buffer.eviction_residency",
    # serving layer: admission-queue wait and end-to-end request latency
    # (microseconds; p50/p99 for the load-harness report come from here)
    "serve.queue_wait_us", "serve.request_us",
    # wait clock: total suspension time per request/txn (all classes);
    # the per-class split lives in the ``waits.*_us`` counters
    "waits.request_wait_us",
})


#: The wait-class registry: every named suspension class engine code may
#: charge time against — the reproduction's analogue of DB2 accounting
#: class-3 suspension categories (lock/latch wait, log write I/O, sync
#: database I/O, ...).  Each class ``c`` owns the counter
#: ``wait_counter(c)`` of microseconds suspended; the ``stats-hygiene``
#: checker (STAT004) verifies every literal ``wait_timer``/``charge_wait``
#: call site against this set and that every blocking sleep site charges
#: *some* registered class.
WAITS: frozenset[str] = frozenset({
    # serving layer: queued behind the admission queue before a worker
    # picked the request up
    "admission.queue",
    # lock manager: suspended in a lock-wait retry loop
    "lock.wait",
    # engine latch: blocked acquiring ``db.latch`` before running work
    "latch.wait",
    # WAL: forcing the log (durable-prefix advance)
    "wal.force",
    # WAL: parked in the group-commit window (leader) or waiting for the
    # leader's force to cover our commit (follower)
    "wal.group_commit",
    # buffer pool: reading a page from the device on miss
    "buffer.read_io",
    # buffer pool: writing a dirty page out (flush or eviction writeback)
    "buffer.write_io",
    # background checkpointer blocked on the engine latch by foreground work
    "ckpt.interference",
    # victim-retry backoff sleep between transaction attempts
    "txn.retry_backoff",
    # deadline-bounded timer sleeps (client retry backoff in the harness)
    "deadline.sleep",
})


def wait_counter(wait_class: str) -> str:
    """Counter name charged for ``wait_class`` (microseconds suspended)."""
    return "waits." + wait_class.replace(".", "_") + "_us"


class Histogram:
    """A power-of-two bucketed distribution with count/sum/max.

    Bucket ``i`` counts observations ``v`` with ``v <= 2**i`` and
    ``v > 2**(i-1)`` (bucket 0 holds everything ``<= 1``, including zero),
    so the full distribution costs one integer per occupied power of two —
    cheap enough to leave enabled on every hot path, yet enough to tell a
    query that scanned 40k index entries from the median that scanned 12.
    """

    __slots__ = ("count", "sum", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0
        self.max = 0
        self._buckets: Counter[int] = Counter()

    def observe(self, value: int) -> None:
        """Record one observation (values are clamped at zero)."""
        v = int(value)
        if v < 0:
            v = 0
        self.count += 1
        self.sum += v
        if v > self.max:
            self.max = v
        self._buckets[(v - 1).bit_length() if v > 0 else 0] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> list[tuple[int, int]]:
        """Sorted ``(upper_bound, count)`` pairs for occupied buckets."""
        return [(1 << index, self._buckets[index])
                for index in sorted(self._buckets)]

    def cumulative_buckets(self) -> list[tuple[int, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs."""
        out: list[tuple[int, int]] = []
        running = 0
        for bound, count in self.buckets():
            running += count
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket holding the ``q``-quantile (0 empty)."""
        if not self.count:
            return 0
        rank = q * self.count
        for bound, cumulative in self.cumulative_buckets():
            if cumulative >= rank:
                return bound
        return self.max  # pragma: no cover - cumulative covers count

    def as_dict(self) -> dict[str, object]:
        """JSON-safe rendering (exporters and artifacts)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "buckets": [[bound, count] for bound, count in self.buckets()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, sum={self.sum}, "
                f"max={self.max})")


class StatsRegistry:
    """A named bag of monotonically increasing counters.

    Counters are created on first use, so layers do not need to pre-declare
    what they report.  Well-known counter names used across the engine:

    ``disk.page_reads`` / ``disk.page_writes``
        physical page transfers on the simulated device
    ``buffer.hits`` / ``buffer.misses`` / ``buffer.evictions``
        buffer-pool behaviour
    ``btree.searches`` / ``btree.inserts`` / ``btree.deletes`` /
    ``btree.entries_scanned``
        index-manager traffic
    ``ts.records_read`` / ``ts.records_inserted`` / ``ts.bytes_touched``
        table-space record traffic
    ``wal.records`` / ``wal.bytes`` / ``wal.checkpoints``
        log volume and checkpoint activity
    ``lock.acquired`` / ``lock.waits`` / ``lock.wait_steps`` /
    ``lock.deadlocks``
        lock-manager behaviour
    ``txn.begun`` / ``txn.aborts`` / ``txn.retries`` /
    ``txn.deadlock_aborts`` / ``txn.timeout_aborts`` /
    ``txn.deadlocks`` / ``txn.lock_timeouts``
        transaction outcomes, including deadlock/timeout victims and the
        retry machinery
    ``fault.injected`` / ``fault.crashes`` / ``disk.checksum_failures``
        fault-injection activity and checksum verification failures
    ``recovery.replayed`` / ``recovery.torn_tail_dropped`` /
    ``recovery.from_checkpoint``
        restart-recovery behaviour (records redone, torn WAL tails
        dropped, analysis passes started from a checkpoint)
    ``xscan.events`` / ``xscan.matchings`` / ``xscan.peak_units``
        QuickXScan work
    ``xpath.parse_hits`` / ``xpath.parse_misses`` /
    ``xpath.compile_hits`` / ``xpath.compile_misses``
        XPath parse/compile cache behaviour (:mod:`repro.xpath.cache`)
    ``sanitize.checks`` / ``sanitize.*``
        runtime invariant sanitizer activity: checks performed and trips
        per invariant (:mod:`repro.analyze.sanitize`)

    The full machine-checked list lives in :data:`METRICS`; a new metric
    must be added there (the ``stats-hygiene`` checker enforces it).

    A registry can additionally carry a :class:`~repro.obs.tracer.Tracer`
    (``stats.tracer``); components open spans through :meth:`trace` /
    :meth:`trace_event`, which are reusable no-ops while no tracer is
    installed, so permanent instrumentation stays ~free.

    The registry is **thread-safe**: counter/gauge/histogram mutation is
    guarded by internal locks *striped by metric name* (a read-modify-write
    on a shared Counter is not atomic, but two threads bumping *different*
    metrics have no reason to serialize on one hot lock — the same IRLM
    hashing idea as the striped lock manager).  Whole-map reads
    (:meth:`snapshot`, :meth:`counters`, :meth:`delta`, :meth:`reset`)
    take every stripe in index order for a consistent copy.  The
    accounting sink of :meth:`charge` is *per-thread* — each serving-layer
    worker charges the transaction it is running, concurrently, without
    cross-attributing work.  This is what keeps the "per-txn deltas sum to
    global deltas" reconciliation invariant true under concurrent sessions.
    """

    _STRIPES = 8

    def __init__(self) -> None:
        self._counters: Counter[str] = Counter()
        self._gauges: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Installed tracer (see :class:`repro.obs.tracer.Tracer`), or None.
        #: Duck-typed (``Any``) so the substrate never imports ``repro.obs``.
        self.tracer: Any = None
        #: Installed structured event trace
        #: (see :class:`repro.obs.events.EventTrace`), or None.  Duck-typed
        #: like the tracer so the substrate never imports ``repro.obs``.
        self.events: Any = None
        #: Name-striped locks guarding the shared maps above.
        self._locks = [threading.Lock() for _ in range(self._STRIPES)]
        #: Per-thread innermost accounting sink — see :meth:`charge`.
        self._local = threading.local()

    def _lock_for(self, name: str) -> threading.Lock:
        return self._locks[hash(name) % self._STRIPES]

    @contextmanager
    def _all_locks(self) -> Iterator[None]:
        """Every stripe, in index order (whole-map consistency)."""
        for lock in self._locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._locks):
                lock.release()

    def add(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``.

        If the calling thread has an accounting sink installed (see
        :meth:`charge`), the increment is mirrored there, attributing the
        work to whichever transaction that thread is running.
        """
        sink = getattr(self._local, "sink", None)
        if sink is not None and name.startswith("sanitize."):
            # Sanitizer bookkeeping is observation, not transaction work:
            # charging it to the running txn's accounting record would make
            # sanitized and unsanitized runs report different per-txn
            # costs (and how many checks fire depends on thread timing,
            # breaking the deltas-sum-to-global reconciliation).
            sink = None
        with self._lock_for(name):
            self._counters[name] += amount
            if sink is not None:
                sink[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    def set_high_water(self, name: str, value: int) -> None:
        """Record ``value`` into gauge ``name`` if it exceeds the old mark."""
        with self._lock_for(name):
            if value > self._gauges.get(name, 0):
                self._gauges[name] = value

    def gauge(self, name: str) -> int:
        """Current high-water mark of gauge ``name`` (0 if never set)."""
        return self._gauges.get(name, 0)

    def gauges(self) -> dict[str, int]:
        """All gauges (high-water marks) as a plain dict."""
        with self._all_locks():
            return dict(self._gauges)

    def observe(self, name: str, value: int) -> None:
        """Record ``value`` into histogram ``name`` (created on first use).

        Histogram names must be registered in :data:`HISTOGRAMS` — the
        ``stats-hygiene`` checker (STAT003) enforces it, exactly as
        STAT002 does for counters.
        """
        with self._lock_for(name):
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        """Histogram ``name``, or None if never observed."""
        return self._histograms.get(name)

    def histograms(self) -> dict[str, Histogram]:
        """All histograms keyed by name."""
        with self._all_locks():
            return dict(self._histograms)

    def reset(self) -> None:
        """Zero every counter, gauge and histogram."""
        with self._all_locks():
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        self._witness_whole_map(write=True)

    def counters(self) -> dict[str, int]:
        """All counters (no gauges) as a plain dict."""
        with self._all_locks():
            copied = dict(self._counters)
        self._witness_whole_map(write=False)
        return copied

    def snapshot(self) -> dict[str, int]:
        """All counters and gauges as a plain dict.

        Gauges are namespaced under a ``gauge:`` key prefix so a gauge
        sharing a counter's name can never clobber the counter (they are
        different quantities: monotone totals vs high-water marks).
        """
        with self._all_locks():
            merged: dict[str, int] = dict(self._counters)
            for name, value in self._gauges.items():
                merged[f"gauge:{name}"] = value
        self._witness_whole_map(write=False)
        return merged

    def _witness_whole_map(self, write: bool) -> None:
        """Report a whole-map operation to the lockset sanitizer.

        Reported *after* the stripe region (reporting inside it would
        recurse into :meth:`add` against the non-reentrant stripes), with
        the stripe family attested via ``extra_held`` — every whole-map
        operation really does hold all stripes for its duration.
        """
        if _sanitize.enabled():
            _sanitize.shared_access(self, "StatsRegistry", "_counters",
                                    write, extra_held=("stats.stripe",))

    # -- tracing hooks ----------------------------------------------------

    def trace(self, name: str, **attrs: object) -> Any:
        """A span context manager if a tracer is installed, else a no-op.

        The block receives the open :class:`~repro.obs.tracer.Span` (or
        ``None`` when untraced)::

            with stats.trace("btree.search", index=self.name) as span:
                ...
                if span is not None:
                    span.set("hits", len(out))
        """
        tracer = self.tracer
        if tracer is None:
            return _NULL_TRACE
        return tracer.span(name, **attrs)

    def trace_event(self, name: str, **attrs: object) -> None:
        """Record a point event on the installed tracer, if any."""
        tracer = self.tracer
        if tracer is not None:
            tracer.event(name, **attrs)

    # -- wait-state accounting (DB2 class-3 suspension analogue) ----------

    def charge_wait(self, wait_class: str, micros: int) -> None:
        """Charge ``micros`` of suspension time to ``wait_class``.

        The charge lands in three places at once: the global
        ``waits.<class>_us`` counter (and, through the thread's accounting
        sink, the running transaction's per-txn breakdown — which is what
        makes wait fields fold across victim retries for free), every wait
        clock open on this thread (see :meth:`request_clock`), and — when a
        structured event trace is installed with the PERFORMANCE class
        enabled — a ``wait.<class>`` trace event.  Zero-microsecond waits
        are dropped: a suspension that never suspended is not a wait, and
        recording it would materialize noise counters in deterministic
        baselines.
        """
        if micros <= 0:
            return
        self.add(wait_counter(wait_class), int(micros))
        frames = getattr(self._local, "wait_frames", None)
        if frames:
            for frame in frames:
                frame[wait_class] = frame.get(wait_class, 0) + int(micros)
        events = self.events
        if events is not None:
            events.performance("wait." + wait_class, us=int(micros))

    @contextmanager
    def wait_timer(self, wait_class: str) -> Iterator[None]:
        """Charge the wall-clock duration of the block to ``wait_class``.

        Every blocking suspension point in the engine wraps its sleep/IO
        in one of these (the ``stats-hygiene`` STAT004 checker enforces
        it), so per-request elapsed time decomposes as
        ``elapsed = cpuish + Σ waits``.  Timed regions must not nest —
        each suspension belongs to exactly one class, otherwise the
        Σ waits ≤ elapsed reconciliation would double-count.
        """
        started = time.monotonic_ns()
        try:
            yield
        finally:
            self.charge_wait(
                wait_class, (time.monotonic_ns() - started) // 1000)

    @contextmanager
    def request_clock(self, started_ns: int | None = None
                      ) -> Iterator[dict[str, int]]:
        """Open a per-request/per-txn wait clock on the calling thread.

        Yields the breakdown dict (wait class -> microseconds) that every
        :meth:`charge_wait` on this thread fills while the block runs.
        Clocks stack: a transaction clock inside a serving-layer request
        clock sees only its own waits, while the outer request clock sees
        both.  On exit the total is observed into the
        ``waits.request_wait_us`` histogram and — when sanitizers are
        armed — reconciled against the clock's own elapsed time
        (``sanitize.waits.reconcile`` trips if Σ waits > elapsed, which
        can only mean a wait was double-charged or charged from the wrong
        thread).  ``started_ns`` backdates the clock (the serving layer
        passes the request's submit timestamp so the admission-queue wait
        is inside the clocked interval).
        """
        start = time.monotonic_ns() if started_ns is None else started_ns
        frame: dict[str, int] = {}
        frames = getattr(self._local, "wait_frames", None)
        if frames is None:
            frames = []
            self._local.wait_frames = frames
        frames.append(frame)
        try:
            yield frame
        finally:
            frames.pop()
            elapsed_us = (time.monotonic_ns() - start) // 1000
            total = sum(frame.values())
            if total > 0:
                self.observe("waits.request_wait_us", total)
            if _sanitize.enabled():
                _sanitize.check_wait_reconcile(self, total, elapsed_us)

    @contextmanager
    def charge(self, sink: "Counter[str] | None") -> Iterator[None]:
        """Attribute counter increments inside the block to ``sink``.

        The per-transaction accounting of :mod:`repro.rdb.txn` installs a
        transaction's private Counter here while that transaction's work
        runs; every :meth:`add` then mirrors into the sink as well as the
        global bag.  Sinks *replace* rather than stack: nesting a charge
        for the same transaction (e.g. ``commit()`` inside ``run_in_txn``'s
        charged body) cannot double-count, and work an inner transaction
        does under an outer one is attributed to the inner (innermost
        wins).  Passing ``None`` suspends attribution inside the block.

        The sink is **thread-local**: each serving-layer worker charges
        only the transaction it is running, so concurrent sessions cannot
        cross-attribute work (the PR 4 reconciliation invariant).
        """
        previous = getattr(self._local, "sink", None)
        self._local.sink = sink
        try:
            yield
        finally:
            self._local.sink = previous

    @contextmanager
    def delta(self) -> Iterator[dict[str, int]]:
        """Context manager yielding a dict filled with counter deltas.

        The yielded dict is empty during the block and is populated with the
        difference between exit and entry values when the block finishes::

            with stats.delta() as d:
                run_query()
            print(d.get("disk.page_reads", 0))
        """
        with self._all_locks():
            before = dict(self._counters)
        out: dict[str, int] = {}
        try:
            yield out
        finally:
            with self._all_locks():
                after = dict(self._counters)
            for name, value in after.items():
                diff = value - before.get(name, 0)
                if diff:
                    out[name] = diff

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatsRegistry({body})"


class _NullTrace:
    """Reusable, reentrant no-op span context (the untraced fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TRACE = _NullTrace()


#: Registry used by components that are not handed an explicit one.
GLOBAL_STATS = StatsRegistry()


def default_stats(stats: StatsRegistry | None = None) -> StatsRegistry:
    """Resolve an optional stats argument to a concrete registry.

    This is the **single sanctioned fallback** to :data:`GLOBAL_STATS`:
    constructors that accept ``stats=None`` call this instead of reading
    the module global themselves, so the resource-flow analysis
    (``repro.analyze.resources``, SHARD001) sees exactly one ambient reach
    to the process-wide registry — here, in its defining module — rather
    than one per component.  Components inside a shard should be handed
    ``ShardContext.stats`` explicitly; the global is for scaffolding,
    tests, and pre-context construction order.
    """
    return stats if stats is not None else GLOBAL_STATS
