"""Engine configuration.

One frozen dataclass carries every tunable the experiments sweep; components
take the values they need at construction time so a single engine instance is
internally consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EngineConfig:
    """Tunables for the storage engine and XML services.

    Attributes:
        page_size: Size in bytes of one storage page.  The paper's analysis
            notes the record size is bounded by the page size (§3.1).
        buffer_pool_pages: Number of frames in the buffer pool.
        record_size_limit: Tree-packing threshold (§3.1): a subtree (or run of
            sibling subtrees) is spilled into its own record once its encoded
            size exceeds this many bytes.  This is the packing-factor knob
            swept by experiments E1-E3.
        btree_order_bytes: Soft per-page payload budget before a B+tree node
            splits.
        lock_timeout_steps: Deterministic-scheduler steps a lock request may
            wait before timing out (concurrency experiments).
        lock_wait_budget: Simulated wait steps an *interactive*
            ``Transaction.lock`` call spends retrying a blocked request
            before raising ``LockTimeoutError``.
        lock_backoff_initial / lock_backoff_cap: Bounded exponential
            backoff between lock retries, in simulated steps: the wait
            starts at the initial value and doubles per retry up to the cap.
        txn_retry_limit: How many times the engine's ``run_in_txn`` retries
            a transaction aborted as a deadlock or timeout victim before
            giving up.
        txn_retry_backoff_base / txn_retry_backoff_cap: Jittered
            exponential backoff between ``run_in_txn`` victim retries, in
            seconds: attempt ``n`` sleeps ``min(cap, base * 2**n)`` scaled
            by a jitter factor in [0.5, 1.5) drawn from a seeded RNG.
            Without backoff, retrying victims restart immediately and
            contending transactions collide again in lockstep (a retry hot
            loop).  ``base`` 0 disables backoff entirely.
        txn_retry_jitter_seed: Seed for the per-engine backoff-jitter RNG,
            making retry delays reproducible in tests.
        txn_group_commit: Enable WAL group commit: COMMIT records from
            concurrent transactions are hardened by one shared log force
            per window (leader/follower protocol, DB2's log-latch
            batching) instead of one force per commit.  Off, every append
            auto-flushes — the classic single-threaded discipline.
        txn_group_commit_window: Seconds the group-commit leader waits
            (engine latch yielded) for companion committers before
            forcing the log.
        txn_group_commit_max: Commits that force the group early, before
            the window expires (bounds both latency and group size).
        checkpoint_interval: Commits between automatic WAL checkpoints
            (0 disables automatic checkpointing; ``Database.checkpoint``
            is always available).
        ckpt_background: Run a background checkpointer/lazy-writer thread
            under the serving layer: automatic checkpoints are *requested*
            from it (committing threads no longer stall on flush-all), and
            between checkpoints it trickles old dirty pages out (DB2's
            castout engines).
        ckpt_interval_seconds: Idle period between background lazy-writer
            cycles.
        ckpt_trickle_pages: Most dirty pages one lazy-writer cycle writes
            back.  Victims are dirty unpinned frames whose residency age
            has reached the ``buffer.eviction_residency`` histogram median
            — pages old enough that eviction would soon write them
            synchronously anyway.
        mvcc_retained_versions: How many committed document versions the
            versioned NodeID index keeps before garbage collection.
        validate_on_insert: Whether document inserts run schema validation
            when the column has a registered schema.
        accounting_ring_size: Capacity of the per-transaction accounting
            ring buffer (DB2 accounting-trace analogue); old records fall
            off the front once the buffer wraps.
        slow_query_log_size: Capacity of the slow-query ring buffer.
        slow_query_page_reads / slow_query_entries_scanned /
        slow_query_events: Per-query thresholds on ``disk.page_reads``,
            ``btree.entries_scanned`` and ``xscan.events`` counter deltas.
            A query exceeding any of them is captured — plan, span tree and
            counter deltas — in ``Database.slow_queries``.  0 disables a
            threshold; all-zero disables slow-query capture entirely (and
            its per-query tracer).
        serve_workers: Worker threads in the serving layer's pool — the
            admission controller's concurrency-token count (DB2 z/OS:
            CTHREAD, the active-thread ceiling).
        serve_queue_limit: Bounded admission wait queue: requests beyond
            the active set queue here; once the queue is full further
            requests are shed with ``ServerOverloadedError`` (DB2:
            queued-at-create-thread).
        serve_default_deadline: Default per-request deadline in seconds
            applied by the server when a request carries none (0 disables).
        serve_shed_lock_waiters: Overload signal: shed new work while more
            than this many transactions sit in the lock table's waits-for
            graph (0 disables the signal).
        serve_shed_min_hit_ratio: Overload signal: shed new work while the
            buffer-pool hit ratio sits below this fraction (after at least
            ``serve_shed_min_touches`` pool touches; 0.0 disables).
        serve_shed_min_touches: Minimum buffer-pool touches before the
            hit-ratio signal is trusted (a cold pool always misses).
        serve_shed_check_interval: Admissions between re-evaluations of
            the overload signals (the verdict is cached in between, so
            admission stays O(1) per request).
        serve_lock_yield: Seconds a server-mode lock wait sleeps per
            backoff step *with the engine latch released*, letting the
            lock holder's session run on another worker.
        serve_stmt_cache_size: Prepared statements cached per session
            (parsed path + access plan, over the global
            :mod:`repro.xpath.cache` LRUs).
    """

    page_size: int = 4096
    buffer_pool_pages: int = 256
    record_size_limit: int = 1024
    btree_order_bytes: int = 3500
    lock_timeout_steps: int = 10_000
    lock_wait_budget: int = 64
    lock_backoff_initial: int = 1
    lock_backoff_cap: int = 16
    txn_retry_limit: int = 5
    txn_retry_backoff_base: float = 0.001
    txn_retry_backoff_cap: float = 0.05
    txn_retry_jitter_seed: int = 0
    txn_group_commit: bool = False
    txn_group_commit_window: float = 0.002
    txn_group_commit_max: int = 64
    checkpoint_interval: int = 0
    ckpt_background: bool = False
    ckpt_interval_seconds: float = 0.005
    ckpt_trickle_pages: int = 8
    mvcc_retained_versions: int = 4
    validate_on_insert: bool = True
    accounting_ring_size: int = 256
    slow_query_log_size: int = 32
    slow_query_page_reads: int = 0
    slow_query_entries_scanned: int = 0
    slow_query_events: int = 0
    serve_workers: int = 4
    serve_queue_limit: int = 32
    serve_default_deadline: float = 0.0
    serve_shed_lock_waiters: int = 0
    serve_shed_min_hit_ratio: float = 0.0
    serve_shed_min_touches: int = 256
    serve_shed_check_interval: int = 16
    serve_lock_yield: float = 0.0005
    serve_stmt_cache_size: int = 64

    def slow_query_thresholds(self) -> dict[str, int]:
        """Enabled slow-query thresholds as ``{counter name: limit}``."""
        thresholds = {
            "disk.page_reads": self.slow_query_page_reads,
            "btree.entries_scanned": self.slow_query_entries_scanned,
            "xscan.events": self.slow_query_events,
        }
        return {name: limit for name, limit in thresholds.items() if limit > 0}

    def with_(self, **changes: object) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: Default configuration used when callers do not supply one.
DEFAULT_CONFIG = EngineConfig()
