"""E8 — virtual SAX runtime: shared routines, no unified tree (Fig. 8, §4.4).

Paper claims: "To avoid data copying and format conversion cost, we do not
construct a single unified in-memory tree representation for a task"; a
proper iterator adapts each data form (token stream, persistent records,
constructed data, in-memory sequence) to virtual SAX events, and the three
tasks (serialization, tree construction, XPath evaluation) share one code
path.  The bench runs the full matrix and compares pipelined serialization
against materialize-then-serialize.
"""

import time

from conftest import fresh_names, fresh_pool, print_table

from repro.query.constructors import Arg, XElem, compile_template
from repro.workload.generator import catalog_document
from repro.xdm.events import build_tree, events_from_tree
from repro.xdm.parser import parse
from repro.xdm.serializer import serialize
from repro.xmlstore.store import XmlStore
from repro.xpath.quickxscan import evaluate

DOC = catalog_document(n_products=80, seed=2)
QUERY = "//Product[RegPrice > 250]/ProductName"


def sources():
    """The four data forms of Fig. 8, each exposing an event iterator."""
    token_stream = parse(DOC)

    pool, _stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=512)
    store.insert_document_text(1, DOC)

    tree = build_tree(parse(DOC))

    template = compile_template(XElem("wrap", children=(Arg(0),)))
    constructed = template.instantiate((DOC.replace("<", "[")
                                        .replace(">", "]")[:200],))
    return {
        "token stream": lambda: token_stream.events(),
        "persistent records": lambda: store.document(1).events(),
        "in-memory tree": lambda: events_from_tree(tree),
        "constructed data": lambda: constructed.events(),
    }


def test_e8_task_matrix(benchmark):
    rows = []
    for label, make_events in sources().items():
        serialized = serialize(make_events())
        rebuilt = build_tree(make_events()) if label != "constructed data" \
            else build_tree(make_events())
        matches = evaluate(QUERY, make_events()) \
            if label != "constructed data" else []
        rows.append([label, len(serialized),
                     sum(1 for _ in rebuilt.descendants_or_self()),
                     len(matches)])
    print_table(
        "E8: every task over every data form (shared virtual-SAX routines)",
        ["data form", "serialize -> bytes", "tree-construct -> nodes",
         "xpath -> matches"],
        rows)
    # The engine paths agree regardless of the input form.
    forms = sources()
    assert serialize(forms["token stream"]()) == \
        serialize(forms["persistent records"]()) == \
        serialize(forms["in-memory tree"]())
    assert len(evaluate(QUERY, forms["token stream"]())) == \
        len(evaluate(QUERY, forms["persistent records"]()))

    store_events = forms["persistent records"]
    benchmark(lambda: serialize(store_events()))


def timed(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e8_pipelining_vs_materialization(benchmark):
    """Serialize straight off the storage iterator vs building a unified
    tree first — the conversion cost the paper's design avoids."""
    pool, _stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=512)
    store.insert_document_text(1, DOC)

    pipelined = timed(lambda: serialize(store.document(1).events()))
    materialized = timed(
        lambda: serialize(events_from_tree(
            build_tree(store.document(1).events()))))
    print_table(
        "E8: pipelined vs materialize-then-serialize (persistent source)",
        ["path", "ms"],
        [["pipelined (iterator -> serializer)", f"{pipelined * 1e3:.2f}"],
         ["materialized (iterator -> tree -> serializer)",
          f"{materialized * 1e3:.2f}"]])
    assert pipelined < materialized
    benchmark(lambda: serialize(store.document(1).events()))
