"""E5c — Table 1: propagation of sequence-valued attributes.

The four matching shapes of Table 1 (child/descendant axis × flat/nested
outer step) are generated at scale; the experiment verifies the propagated
sequences are complete and duplicate-free (counts match the DOM evaluator)
and times the propagation-heavy recursive case.
"""

from conftest import print_table

from repro.lang.parser import parse_xpath
from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.domeval import evaluate_dom
from repro.xpath.qtree import compile_query
from repro.xpath.quickxscan import QuickXScan, evaluate


def _case1(n):  # a/b, flat
    return "<a>" + "<b>x</b>" * n + "</a>", "/a/b"


def _case2(n):  # a/b with nested a's
    doc = "<a><b>t</b>" * n + "</a>" * n
    return doc, "//a/b"


def _case3(n):  # a//b with nested b's
    return "<a>" + "<b>" * n + "x" + "</b>" * n + "</a>", "/a//b"


def _case4(n):  # a//b, both nested
    doc = ("<a>" * n) + ("<b>" * n) + "x" + ("</b>" * n) + ("</a>" * n)
    return doc, "//a//b"


CASES = [("1: a/b", _case1), ("2: nested-a a/b", _case2),
         ("3: a//b nested-b", _case3), ("4: nested both a//b", _case4)]


def test_e5c_table1_propagation(benchmark):
    n = 24
    rows = []
    for label, make in CASES:
        doc, query = make(n)
        events = list(assign_node_ids(parse(doc).events()))
        stream = evaluate(query, iter(events))
        dom = evaluate_dom(query, iter(events))
        ids = [i.node_id for i in stream]
        assert ids == [i.node_id for i in dom], label
        assert len(set(ids)) == len(ids), f"duplicates in {label}"
        rows.append([label, query, len(stream),
                     "duplicate-free" if len(set(ids)) == len(ids)
                     else "DUPLICATES"])
    print_table("E5c: Table 1 propagation scenarios (n = 24)",
                ["case", "path", "sequence length", "check"], rows)

    doc, query = _case4(n)
    events = list(assign_node_ids(parse(doc).events()))
    compiled = compile_query(parse_xpath(query),
                             collect_result_values=False)
    benchmark(lambda: QuickXScan(compiled).run(iter(events)))
