"""E1 — storage size and NodeID-index entries vs packing factor (§3.1).

Paper claim: for a k-node tree with average node body n and per-record
overhead b, packing p nodes per record needs ≈ k(n + b/p) storage versus
k(n + b) for one-node-per-row, and "the packed nodes scheme only requires
about 2k/p entries or less" in the NodeID index versus k.  This bench sweeps
the record-size limit (the packing knob) over one synthetic document and
reports measured nodes/record (p), bytes/node, and index entries against the
2k/p bound, with the shredded one-node-per-row store as the baseline.
"""

from conftest import fresh_names, fresh_pool, print_table

from repro.xdm.parser import parse
from repro.xmlstore.shred import ShreddedStore
from repro.xmlstore.store import XmlStore
from repro.workload.generator import wide_document

DOC = wide_document(n_children=500, payload_words=4, seed=7)
LIMITS = [96, 256, 1024, 4000]


def packed_footprint(limit):
    pool, _stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=limit)
    info = store.insert_document_text(1, DOC)
    return info, store.storage_footprint()


def test_e1_storage_and_index_entries(benchmark):
    # Baseline: one node per row.
    pool, _stats = fresh_pool()
    shred = ShreddedStore(pool, fresh_names())
    shred_rows = shred.insert_document_events(1, parse(DOC).events())
    shred_fp = shred.storage_footprint()

    rows = []
    for limit in LIMITS:
        info, footprint = packed_footprint(limit)
        k = info.node_count
        p = k / footprint["record_count"]
        bound = 2 * k / p
        rows.append([
            limit,
            footprint["record_count"],
            f"{p:.1f}",
            footprint["data_bytes"],
            f"{footprint['data_bytes'] / k:.1f}",
            footprint["nodeid_index_entries"],
            f"{bound:.0f}",
            "yes" if footprint["nodeid_index_entries"] <= bound + 1 else "NO",
        ])
    print_table(
        "E1: packed storage vs packing factor (k = "
        f"{shred_rows} nodes; shred baseline: {shred_fp['record_count']} "
        f"rows, {shred_fp['data_bytes']} B, "
        f"{shred_fp['nodeid_index_entries']} index entries)",
        ["limit", "records", "p=nodes/rec", "bytes", "bytes/node",
         "ix entries", "2k/p bound", "within bound"],
        rows)

    # Shape assertions: the paper's trends must hold.
    entries = [packed_footprint(limit)[1]["nodeid_index_entries"]
               for limit in LIMITS]
    assert entries[0] > entries[-1]                      # entries fall with p
    assert entries[-1] < shred_fp["nodeid_index_entries"]  # ≪ k
    benchmark(lambda: packed_footprint(1024))
