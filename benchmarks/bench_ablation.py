"""Ablations for the design choices DESIGN.md calls out (§3.1, §3.3).

* **Interval-endpoint NodeID keys** vs. one entry per node: index size and
  probe cost of the paper's scheme against the naive alternative.
* **Logical links through the NodeID index** (no physical pointers): a
  relocation storm moves records around; traversal cost must not degrade.
* **Record-size limit as the only packing knob** ("simple size-based
  grouping"): end-to-end query cost across the sweep, exposing the
  read-vs-update tradeoff E1-E3 quantify per layer.
"""

from conftest import fresh_names, fresh_pool, print_table

from repro.rdb.btree import BTree
from repro.workload.generator import wide_document
from repro.xdm.events import EventKind
from repro.xmlstore import format as fmt
from repro.xmlstore.node_index import index_key
from repro.xmlstore.store import XmlStore
from repro.xmlstore.update import XmlUpdater
from repro.xpath.quickxscan import evaluate

DOC = wide_document(n_children=300, payload_words=4, seed=21)


def test_ablation_interval_vs_per_node_index(benchmark):
    """The paper's upper-endpoint interval entries vs. one entry per node."""
    pool, stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=512)
    store.insert_document_text(1, DOC)

    # Build the naive variant: one (DocID, NodeID) -> RID entry per node.
    per_node = BTree(pool, name="pernode", unique=True)
    node_ids = []
    for rid in store.node_index.record_rids(1):
        record = store.read_record(rid)
        for entry, abs_id, _depth in fmt.record_node_stream(record):
            if entry.kind != fmt.EntryKind.PROXY:
                per_node.insert(index_key(1, abs_id), rid.to_bytes())
                node_ids.append(abs_id)

    with stats.delta() as interval_probe:
        for abs_id in node_ids:
            assert store.node_index.probe(1, abs_id) is not None
    with stats.delta() as pernode_probe:
        for abs_id in node_ids:
            assert per_node.search_one(index_key(1, abs_id)) is not None

    rows = [
        ["interval endpoints (paper)", store.node_index.entry_count,
         store.node_index.tree.page_count,
         interval_probe.get("buffer.hits", 0)
         + interval_probe.get("buffer.misses", 0)],
        ["one entry per node", per_node.entry_count, per_node.page_count,
         pernode_probe.get("buffer.hits", 0)
         + pernode_probe.get("buffer.misses", 0)],
    ]
    print_table(
        f"ablation: NodeID index schemes ({len(node_ids)} nodes)",
        ["scheme", "entries", "index pages", "page touches / full probe set"],
        rows)
    # Same probe capability, far smaller index.
    assert store.node_index.entry_count * 5 < per_node.entry_count
    assert store.node_index.tree.page_count <= per_node.page_count

    benchmark(lambda: [store.node_index.probe(1, abs_id)
                       for abs_id in node_ids[:50]])


def test_ablation_logical_links_survive_relocation(benchmark):
    """Free record placement: traversal cost before and after a relocation
    storm (records moved by growth updates) stays flat because links are
    logical (DocID, NodeID) pairs, not physical pointers."""
    pool, stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=128)
    store.insert_document_text(1, DOC)

    def traversal_fetches():
        with stats.delta() as delta:
            sum(1 for _ in store.document(1).events())
        return delta.get("ts.records_read", 0)

    before = traversal_fetches()
    updater = XmlUpdater(store)
    texts = [e.node_id for e in store.document(1).events()
             if e.kind is EventKind.TEXT][:80]
    for i, node_id in enumerate(texts):
        updater.replace_text(1, node_id, f"grown-{i}-" + "z" * 100)
    after = traversal_fetches()
    print_table(
        "ablation: traversal record fetches before/after relocation storm",
        ["phase", "record fetches"],
        [["before (clustered)", before],
         ["after 80 growth updates", after]])
    # Records grew (more of them), but cost stays proportional to the
    # record count — no broken chains, no extra indirection.
    assert after <= before * 3
    result = evaluate("//row", store.document(1).events())
    assert len(result) == 300

    benchmark(lambda: sum(1 for _ in store.document(1).events()))


def test_ablation_record_limit_query_cost(benchmark):
    """End-to-end query page touches across the packing sweep."""
    rows = []
    for limit in (64, 256, 1024, 4000):
        pool, stats = fresh_pool(capacity=64)
        store = XmlStore(pool, fresh_names(), record_limit=limit)
        store.insert_document_text(1, DOC)
        pool.evict_all()
        with stats.delta() as delta:
            matches = evaluate("//row[@n = '250']",
                               store.document(1).events())
        assert len(matches) == 1
        rows.append([limit, store.space.record_count,
                     delta.get("buffer.misses", 0),
                     delta.get("ts.records_read", 0)])
    print_table(
        "ablation: scan-query cost vs record-size limit (cold pool)",
        ["limit", "records", "page misses", "record fetches"],
        rows)

    pool, _stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=1024)
    store.insert_document_text(1, DOC)
    benchmark(lambda: evaluate("//row[@n = '250']",
                               store.document(1).events()))
