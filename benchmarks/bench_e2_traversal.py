"""E2 — full-document traversal cost vs packing factor (§3.1).

Paper claim: traversing a k-node tree costs (k-1)·t with one row per node
(one "join" — index probe + record fetch — per node) but only ≈ k·t/p with p
nodes per record; "the ratio is approximately 1/p".  Record fetches stand in
for t; the bench sweeps p and reports the measured fetch ratio against 1/p.
"""

from conftest import fresh_names, fresh_pool, print_table

from repro.workload.generator import wide_document
from repro.xdm.parser import parse
from repro.xmlstore.shred import ShreddedStore
from repro.xmlstore.store import XmlStore

DOC = wide_document(n_children=400, payload_words=4, seed=11)
LIMITS = [96, 256, 1024, 4000]


def build_packed(limit):
    pool, stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=limit)
    info = store.insert_document_text(1, DOC)
    return store, stats, info


def traverse(store):
    return sum(1 for _ in store.document(1).events())


def test_e2_traversal_ratio(benchmark):
    pool, shred_stats = fresh_pool()
    shred = ShreddedStore(pool, fresh_names())
    k = shred.insert_document_events(1, parse(DOC).events())
    with shred_stats.delta() as shred_delta:
        sum(1 for _ in shred.document_events(1))
    shred_fetches = shred_delta.get("ts.records_read", 0)

    rows = []
    for limit in LIMITS:
        store, stats, info = build_packed(limit)
        p = info.node_count / info.record_count
        with stats.delta() as delta:
            traverse(store)
        fetches = delta.get("ts.records_read", 0)
        ratio = fetches / shred_fetches
        rows.append([limit, f"{p:.1f}", fetches, shred_fetches,
                     f"{ratio:.4f}", f"{1 / p:.4f}"])
    print_table(
        f"E2: traversal record fetches, packed vs one-node-per-row (k={k})",
        ["limit", "p", "packed fetches", "shred fetches",
         "measured ratio", "paper 1/p"],
        rows)

    # Shape: ratio tracks 1/p within a factor of ~2 (proxy re-probes).
    for limit in LIMITS:
        store, stats, info = build_packed(limit)
        p = info.node_count / info.record_count
        with stats.delta() as delta:
            traverse(store)
        ratio = delta.get("ts.records_read", 0) / shred_fetches
        assert ratio <= 2.5 / p

    store, _stats, _info = build_packed(1024)
    benchmark(lambda: traverse(store))
