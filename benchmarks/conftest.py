"""Shared fixtures and reporting helpers for the experiment benchmarks.

Every ``bench_e*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index.  Benchmarks print paper-style result tables (visible
with ``pytest benchmarks/ --benchmark-only -s``) in addition to
pytest-benchmark's timing output; EXPERIMENTS.md records a reference run.
"""

import os

import pytest

from repro.core.stats import StatsRegistry
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.xdm.names import NameTable


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one experiment table."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths, strict=True)))


#: Where benchmark trace artifacts land (gitignored).
ARTIFACTS_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def export_trace(name: str, trace) -> str:
    """Write a JSON trace artifact to ``benchmarks/artifacts/<name>.json``.

    Accepts a :class:`~repro.obs.Span`, a :class:`~repro.obs.Tracer`, or an
    :class:`~repro.obs.ExplainResult`; returns the path written.
    """
    from repro.obs import write_trace
    from repro.obs.explain import ExplainResult

    path = os.path.join(ARTIFACTS_DIR, f"{name}.json")
    if isinstance(trace, ExplainResult):
        os.makedirs(ARTIFACTS_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(trace.to_json())
            fh.write("\n")
    else:
        write_trace(path, trace)
    print(f"[trace] wrote {path}")
    return path


@pytest.fixture
def stats():
    return StatsRegistry()


@pytest.fixture
def pool(stats):
    return BufferPool(Disk(page_size=4096, stats=stats), capacity=512)


@pytest.fixture
def names():
    return NameTable()


def fresh_pool(page_size=4096, capacity=512):
    stats = StatsRegistry()
    return BufferPool(Disk(page_size=page_size, stats=stats),
                      capacity=capacity), stats


def fresh_names():
    return NameTable()
