"""E4 — insertion pipeline: token stream vs SAX callbacks vs DOM (§3.2).

Paper claims: application interfaces "such as SAX or DOM ... suffer from
significant overhead of excessive procedure calls for event handling or
in-memory construction of intermediate data structures"; the buffered token
stream amortizes that, and schema validation runs as a table-driven VM over
the compiled (binary) schema.  The bench times four insertion front ends
over the same document and reports relative cost.
"""

import time

from conftest import fresh_names, fresh_pool, print_table

from repro.workload.generator import catalog_document
from repro.xdm.events import build_tree, events_from_tree
from repro.xdm.parser import parse, parse_sax
from repro.xmlstore.store import XmlStore
from repro.xschema.compiler import compile_schema
from repro.xschema.validator import ValidationVM

DOC = catalog_document(n_products=150, seed=5)

CATALOG_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Catalog" type="CatalogT"/>
  <xs:complexType name="CatalogT"><xs:sequence>
    <xs:element name="Categories" type="CategoriesT"/>
  </xs:sequence></xs:complexType>
  <xs:complexType name="CategoriesT"><xs:sequence>
    <xs:element name="Product" type="ProductT" maxOccurs="unbounded"/>
  </xs:sequence></xs:complexType>
  <xs:complexType name="ProductT">
    <xs:sequence>
      <xs:element name="ProductName" type="xs:string"/>
      <xs:element name="RegPrice" type="xs:double"/>
      <xs:element name="Discount" type="xs:double"/>
      <xs:element name="Description" type="xs:string"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:string" use="required"/>
  </xs:complexType>
  <xs:element name="Categories" type="CategoriesT"/>
  <xs:element name="Product" type="ProductT"/>
  <xs:element name="ProductName" type="xs:string"/>
  <xs:element name="RegPrice" type="xs:double"/>
  <xs:element name="Discount" type="xs:double"/>
  <xs:element name="Description" type="xs:string"/>
</xs:schema>
"""


def insert_via_token_stream(docid, store):
    stream = parse(DOC)  # buffered binary token stream (the engine path)
    store.insert_document_events(docid, stream.events())


class _SaxHandler:
    """A classic SAX content handler: one method call per event kind,
    building an intermediate event list for the construction phase — the
    "excessive procedure calls" baseline."""

    def __init__(self):
        self.events = []
        from repro.xdm.events import EventKind
        self._dispatch = {
            EventKind.DOC_START: self.start_document,
            EventKind.DOC_END: self.end_document,
            EventKind.ELEM_START: self.start_element,
            EventKind.ELEM_END: self.end_element,
            EventKind.ATTR: self.attribute,
            EventKind.TEXT: self.characters,
            EventKind.NS: self.namespace,
            EventKind.COMMENT: self.comment,
            EventKind.PI: self.processing_instruction,
        }

    def handle(self, event):
        self._dispatch[event.kind](event)

    def start_document(self, event):
        self.events.append(event)

    def end_document(self, event):
        self.events.append(event)

    def start_element(self, event):
        self.events.append(event)

    def end_element(self, event):
        self.events.append(event)

    def attribute(self, event):
        self.events.append(event)

    def characters(self, event):
        self.events.append(event)

    def namespace(self, event):
        self.events.append(event)

    def comment(self, event):
        self.events.append(event)

    def processing_instruction(self, event):
        self.events.append(event)


def insert_via_sax(docid, store):
    handler = _SaxHandler()
    parse_sax(DOC, handler.handle)
    store.insert_document_events(docid, iter(handler.events))


def insert_via_dom(docid, store):
    tree = build_tree(parse(DOC))  # intermediate in-memory tree
    store.insert_document_events(docid, events_from_tree(tree))


def make_validating_inserter():
    vm = ValidationVM(compile_schema(CATALOG_XSD))

    def insert(docid, store):
        typed = vm.validate_events(parse(DOC, strip_whitespace=True).events())
        store.insert_document_events(docid, typed.events())
    return insert


def timed(fn, repeats=5):
    pool, _ = fresh_pool(capacity=2048)
    store = XmlStore(pool, fresh_names(), record_limit=1024)
    start = time.perf_counter()
    for docid in range(1, repeats + 1):
        fn(docid, store)
    return (time.perf_counter() - start) / repeats


def _intermediate_bytes():
    """Memory of the intermediate parse representation per front end."""
    import sys
    stream = parse(DOC)
    token_bytes = stream.byte_size
    handler = _SaxHandler()
    parse_sax(DOC, handler.handle)
    event_bytes = sum(
        sys.getsizeof(e) + sys.getsizeof(e.local) + sys.getsizeof(e.value)
        for e in handler.events)
    tree = build_tree(parse(DOC))
    dom_bytes = sum(
        sys.getsizeof(node) + sum(sys.getsizeof(v) for v in
                                  (getattr(node, "local", ""),
                                   getattr(node, "value", "")))
        for node in tree.descendants_or_self())
    return token_bytes, event_bytes, dom_bytes


def test_e4_insertion_frontends(benchmark):
    token_time = timed(insert_via_token_stream)
    sax_time = timed(insert_via_sax)
    dom_time = timed(insert_via_dom)
    validating_time = timed(make_validating_inserter())
    token_bytes, event_bytes, dom_bytes = _intermediate_bytes()

    rows = [
        ["buffered token stream", f"{token_time * 1e3:.2f}", "1.00x",
         token_bytes],
        ["per-event SAX callbacks", f"{sax_time * 1e3:.2f}",
         f"{sax_time / token_time:.2f}x", event_bytes],
        ["DOM construction first", f"{dom_time * 1e3:.2f}",
         f"{dom_time / token_time:.2f}x", dom_bytes],
        ["validating (schema VM)", f"{validating_time * 1e3:.2f}",
         f"{validating_time / token_time:.2f}x", token_bytes],
    ]
    print_table("E4: insertion front ends (ms per document, "
                f"{len(DOC)} B input)",
                ["front end", "ms/doc", "vs token stream",
                 "intermediate B"], rows)

    # Shape: the buffered token stream's intermediate form is an order of
    # magnitude smaller than per-event objects or the DOM tree (the paper's
    # "no intermediate data structures" point).  Time ordering is reported
    # but not asserted: in CPython the binary encode cost and the
    # procedure-call cost are the same order of magnitude, unlike the
    # compiled engines the paper measured (see EXPERIMENTS.md).
    assert token_bytes * 5 < event_bytes
    assert token_bytes * 5 < dom_bytes

    pool, _ = fresh_pool(capacity=2048)
    store = XmlStore(pool, fresh_names(), record_limit=1024)
    counter = iter(range(1, 10_000))
    benchmark(lambda: insert_via_token_stream(next(counter), store))
