"""Serving-layer load benchmark: concurrent-client latency under the pool.

Drives the :mod:`repro.serve` thread-pool server with hundreds of client
threads issuing the mixed load-harness workload (auto-commit inserts,
explicit hot-row update transactions, cached XPath queries) and reports
p50/p99 request and queue-wait latency from the engine's histograms.  A
second scenario deliberately undersizes the pool and admission queue to
measure behaviour at the shed point.  Each run re-verifies the zero
lost/duplicated-commit invariant against the accounting log, so the
numbers are only reported for correct runs.

The JSON latency report lands in ``benchmarks/artifacts/`` — the same
artifact the CI concurrency job uploads.
"""

import json
import os

from conftest import ARTIFACTS_DIR, print_table

from repro.serve.loadgen import run_load

SCENARIOS = [
    # (name, clients, ops, workers, queue_limit)
    ("light", 32, 4, 4, 64),
    ("standard", 128, 5, 8, 128),
    ("overloaded", 128, 4, 2, 8),
]


def export_report(name: str, report) -> str:
    os.makedirs(ARTIFACTS_DIR, exist_ok=True)
    path = os.path.join(ARTIFACTS_DIR, f"serve_load_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[report] wrote {path}")
    return path


def test_serve_load_latency():
    rows = []
    for name, clients, ops, workers, queue_limit in SCENARIOS:
        report = run_load(clients=clients, ops_per_client=ops, seed=17,
                          workers=workers, queue_limit=queue_limit)
        assert report.verified, report.verify_errors
        export_report(name, report)
        total = clients * ops
        rows.append([
            name, f"{clients}x{ops}", workers, queue_limit,
            report.committed_inserts + report.hot_commits + report.queries,
            report.shed, report.timed_out,
            report.p50_request_us, report.p99_request_us,
            report.p50_queue_wait_us, report.p99_queue_wait_us,
            f"{total / report.wall_seconds:,.0f}",
        ])
    print_table(
        "Serving layer under concurrent clients "
        "(latencies in microseconds)",
        ["scenario", "load", "workers", "queue", "ok-ops", "shed",
         "timed-out", "req p50", "req p99", "wait p50", "wait p99",
         "ops/s offered"],
        rows)


def test_serve_shed_point():
    """Overload sheds with the typed error instead of queueing unboundedly."""
    report = run_load(clients=96, ops_per_client=4, seed=23,
                      workers=1, queue_limit=2)
    assert report.verified, report.verify_errors
    assert report.shed > 0, "undersized queue never shed"
    rows = [[report.shed, report.counters.get("serve.shed_queue_full", 0),
             report.counters.get("serve.shed_overload", 0),
             report.p99_queue_wait_us]]
    print_table("Shed point (1 worker, queue limit 2, 96 clients)",
                ["shed total", "queue full", "overload guard", "wait p99"],
                rows)
