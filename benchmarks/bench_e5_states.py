"""E5a — active matching state vs recursion depth (Fig. 7, §4.2).

Paper claim: checking only stack tops "reduces the number of active states
... from potentially exponential (when a path expression like //a//a//a
matches with a document with recursively nested a elements) to the number of
query nodes at maximum" per nesting level; QuickXScan needs O(|Q|·r)
matching units, the naive per-instance automaton explodes polynomially in
the query length (and loses only because it never merges states).
"""

from conftest import print_table

from repro.core.stats import StatsRegistry
from repro.lang.parser import parse_xpath
from repro.workload.generator import recursive_document
from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.automaton import NaiveStreamEvaluator
from repro.xpath.qtree import compile_query
from repro.xpath.quickxscan import QuickXScan

QUERY = "//a//a//a"
DEPTHS = [8, 16, 32, 64]


def measure(depth):
    events = list(assign_node_ids(
        parse(recursive_document(depth)).events()))
    naive = NaiveStreamEvaluator(QUERY)
    naive_result = naive.run(iter(events))
    stats = StatsRegistry()
    query = compile_query(parse_xpath(QUERY))
    qx_result = QuickXScan(query, stats=stats).run(iter(events))
    assert {i.node_id for i in naive_result} == \
        {i.node_id for i in qx_result}
    return (naive.peak_instances, stats.gauge("xscan.peak_units"),
            query.size, len(qx_result))


def test_e5a_active_states(benchmark):
    rows = []
    for depth in DEPTHS:
        naive_peak, qx_peak, q_size, matches = measure(depth)
        rows.append([depth, matches, naive_peak, qx_peak,
                     q_size * depth + 1,
                     f"{naive_peak / qx_peak:.1f}x"])
    print_table(
        f"E5a: peak matching units for {QUERY} over nested <a> documents",
        ["recursion r", "results", "naive automaton", "QuickXScan",
         "|Q|*r bound", "naive/QuickXScan"],
        rows)

    # Shape: QuickXScan stays within O(|Q|·r); the naive evaluator's state
    # count grows superlinearly, so the gap widens with depth.
    ratios = []
    for depth in DEPTHS:
        naive_peak, qx_peak, q_size, _ = measure(depth)
        assert qx_peak <= q_size * depth + 2
        ratios.append(naive_peak / qx_peak)
    assert ratios[-1] > 2 * ratios[0]

    events = list(assign_node_ids(
        parse(recursive_document(DEPTHS[-1])).events()))
    query = compile_query(parse_xpath(QUERY))
    benchmark(lambda: QuickXScan(query).run(iter(events)))
