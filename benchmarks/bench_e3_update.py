"""E3 — single-node update cost vs packing factor (§3.1).

Paper claim: "To update one single node, under the one row per node scheme,
we only need to touch storage of one record, with size of n, while in the
packed tree scheme, we will touch storage of p·n" — plus correspondingly
larger log volume.  The bench updates one text node and reports bytes
touched and WAL bytes under both schemes, sweeping the packing factor.
"""

from conftest import fresh_names, fresh_pool, print_table

from repro.rdb.wal import LogManager, LogOp
from repro.workload.generator import wide_document
from repro.xdm.events import EventKind
from repro.xdm.parser import parse
from repro.xmlstore.shred import ShreddedStore
from repro.xmlstore.store import XmlStore
from repro.xmlstore.update import XmlUpdater

DOC = wide_document(n_children=300, payload_words=4, seed=3)
LIMITS = [96, 256, 1024, 4000]


def target_text_id(events):
    events = list(events)
    for i, event in enumerate(events):
        if event.kind is EventKind.ELEM_START and event.local == "row":
            return events[i + 1].node_id
    raise AssertionError


def packed_update_cost(limit):
    pool, stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=limit)
    info = store.insert_document_text(1, DOC)
    target = target_text_id(store.document(1).events())
    updater = XmlUpdater(store)
    log = LogManager(stats)
    with stats.delta() as delta:
        updater.replace_text(1, target, "updated text value")
        # Log what a real engine would harden: the new record image.
        record, _entry, _parent = store.document(1).find_node(target)
        log.append(1, LogOp.UPDATE, "xmlts", bytes(record))
    p = info.node_count / info.record_count
    return p, delta.get("ts.bytes_touched", 0), log.bytes_written


def test_e3_update_bytes(benchmark):
    pool, stats = fresh_pool()
    shred = ShreddedStore(pool, fresh_names())
    shred.insert_document_events(1, parse(DOC).events())
    target = target_text_id(shred.document_events(1))
    log = LogManager(stats)
    with stats.delta() as shred_delta:
        shred.replace_text(1, target, "updated text value")
        log.append(1, LogOp.UPDATE, "shredts", b"x" * 40)  # one small row
    shred_bytes = shred_delta.get("ts.bytes_touched", 0)

    rows = []
    for limit in LIMITS:
        p, touched, wal = packed_update_cost(limit)
        rows.append([limit, f"{p:.1f}", touched, wal, shred_bytes,
                     f"{touched / max(shred_bytes, 1):.1f}x"])
    print_table(
        "E3: bytes touched by one single-node update",
        ["limit", "p", "packed bytes", "packed WAL B",
         "shred bytes", "packed/shred"],
        rows)

    # Shape: packed touch cost grows with the record limit (∝ p·n) and
    # always exceeds the per-node baseline.
    touched = [packed_update_cost(limit)[1] for limit in LIMITS]
    assert touched[0] < touched[-1]
    assert all(t > shred_bytes for t in touched)

    pool2, _ = fresh_pool()
    store = XmlStore(pool2, fresh_names(), record_limit=1024)
    store.insert_document_text(1, DOC)
    updater = XmlUpdater(store)
    target2 = target_text_id(store.document(1).events())
    benchmark(lambda: updater.replace_text(1, target2, "bench value"))
