"""E6 — Table 2: index-based access methods (§4.3).

Reproduces the paper's three access-method cases over two corpora:

* **small-many** — many small documents, where "using indexes to identify
  qualifying documents would be efficient" (DocID-list access);
* **large-few** — few large documents, where "the DocID list access is no
  longer efficient.  Instead, the NodeID list access applies".

For each Table-2 case the bench runs full scan, DocID list and NodeID list,
reporting documents evaluated, logical page touches, and B+tree traffic —
and checks the paper's shape: indexes beat scans everywhere, and the
DocID/NodeID preference flips with document size.
"""

from conftest import export_trace, print_table

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.query.plan import AccessMethod
from repro.workload.generator import catalog_document
from repro.workload.queries import Table2Case

# Selective variants of the Table 2 cases (~10% selectivity), per the
# paper's "use indexes to quickly identify a small subset of candidates".
TABLE2_CASES = (
    Table2Case("(1) DocID/NodeID list", "list",
               "/Catalog/Categories/Product[RegPrice > 490]",
               (("ix_regprice",
                 "/Catalog/Categories/Product/RegPrice", "double"),)),
    Table2Case("(2) DocID/NodeID filtering list", "filtering",
               "/Catalog/Categories/Product[Discount > 0.48]",
               (("ix_discount", "//Discount", "double"),)),
    Table2Case("(3) DocID/NodeID ANDing/ORing", "anding",
               "/Catalog/Categories/Product[RegPrice > 400 and "
               "Discount > 0.4]",
               (("ix_regprice",
                 "/Catalog/Categories/Product/RegPrice", "double"),
                ("ix_discount", "//Discount", "double"))),
)


def build_db(n_docs, products_per_doc, with_indexes=True):
    db = Database(DEFAULT_CONFIG.with_(record_size_limit=512,
                                       buffer_pool_pages=4096))
    db.create_table("catalog", [("id", "bigint"), ("doc", "xml")])
    for i in range(n_docs):
        db.insert("catalog",
                  (i, catalog_document(products_per_doc, seed=i)))
    if with_indexes:
        created = set()
        for case in TABLE2_CASES:
            for name, path, key_type in case.index_paths:
                if name not in created:
                    db.create_xpath_index(name, "catalog", "doc",
                                          path, key_type)
                    created.add(name)
    return db


def run_case(db, query, method):
    stats = db.stats
    db.pool.evict_all()
    with stats.delta() as delta:
        rows = db.xpath("catalog", "doc", query, method=method)
    return len(rows), delta


def corpus_rows(db, corpus_label):
    out = []
    for case in TABLE2_CASES:
        reference = None
        for method in (AccessMethod.FULL_SCAN, AccessMethod.DOCID_LIST,
                       AccessMethod.NODEID_LIST):
            count, delta = run_case(db, case.query, method)
            if reference is None:
                reference = count
            assert count == reference, (case.label, method)
            out.append([
                corpus_label, case.label, method.value, count,
                delta.get("exec.docs_evaluated", 0),
                delta.get("exec.anchors_verified", 0),
                delta.get("buffer.hits", 0) + delta.get("buffer.misses", 0),
                delta.get("btree.entries_scanned", 0),
            ])
    return out


def test_e6_access_methods(benchmark):
    small_many = build_db(n_docs=60, products_per_doc=3)
    large_few = build_db(n_docs=4, products_per_doc=150)

    rows = corpus_rows(small_many, "small-many") + \
        corpus_rows(large_few, "large-few")
    print_table(
        "E6: Table 2 access methods "
        "(small-many: 60 docs x 3 products; large-few: 4 docs x 150)",
        ["corpus", "case", "method", "results", "docs eval",
         "anchors", "page touches", "ix entries"],
        rows)

    def pages(db, query, method):
        _count, delta = run_case(db, query, method)
        return delta.get("buffer.hits", 0) + delta.get("buffer.misses", 0)

    query1 = TABLE2_CASES[0].query
    # Index access beats the scan on both corpora.
    assert pages(small_many, query1, AccessMethod.DOCID_LIST) < \
        pages(small_many, query1, AccessMethod.FULL_SCAN)
    assert pages(large_few, query1, AccessMethod.NODEID_LIST) < \
        pages(large_few, query1, AccessMethod.FULL_SCAN)
    # The paper's crossover: NodeID lists win on large documents.
    assert pages(large_few, query1, AccessMethod.NODEID_LIST) < \
        pages(large_few, query1, AccessMethod.DOCID_LIST)
    # The planner's own heuristic picks accordingly.
    assert small_many.plan_xpath("catalog", "doc", query1).method \
        is AccessMethod.DOCID_LIST
    assert large_few.plan_xpath("catalog", "doc", query1).method \
        is AccessMethod.NODEID_LIST

    # Attach an EXPLAIN ANALYZE trace artifact per access method so the
    # per-operator counter deltas behind the table are inspectable.
    for method in (AccessMethod.FULL_SCAN, AccessMethod.DOCID_LIST,
                   AccessMethod.NODEID_LIST):
        analyzed = large_few.explain_analyze("catalog", "doc", query1,
                                             method=method)
        export_trace(f"e6_{method.value.replace('-', '_')}", analyzed)

    benchmark(lambda: large_few.xpath("catalog", "doc", query1,
                                      method=AccessMethod.NODEID_LIST))


def test_e6_exact_vs_filtering(benchmark):
    """Case 1 (exact) vs case 2 (containment/filtering): the filtering list
    admits candidates the re-evaluation must discard."""
    db = build_db(n_docs=40, products_per_doc=3)
    exact_plan = db.plan_xpath("catalog", "doc", TABLE2_CASES[0].query)
    filtering_plan = db.plan_xpath("catalog", "doc", TABLE2_CASES[1].query)
    assert exact_plan.exact
    assert not filtering_plan.exact
    rows = [
        [TABLE2_CASES[0].label, "exact" if exact_plan.exact else "filtering"],
        [TABLE2_CASES[1].label,
         "exact" if filtering_plan.exact else "filtering"],
    ]
    print_table("E6: list exactness per Table 2 case",
                ["case", "list kind"], rows)
    benchmark(lambda: db.xpath("catalog", "doc", TABLE2_CASES[1].query,
                               method=AccessMethod.DOCID_LIST))
