"""Export the counter-based perf baseline (``BENCH_baseline.json``).

Runs a deterministic miniature of the E-series workloads — bulk insert
with tree packing (E1/E4), navigational and scan queries (E2/E5), value
index probes (E6), node-level updates (E3), and a transactional mix with
an aborted delete — on a fixed configuration, then writes the engine's
full metrics artifact (counters, gauges, histograms, accounting records,
slow queries, monitor snapshot) through :mod:`repro.obs.exporters`.

The engine is deterministic, so the counter values are stable across runs
and machines; the committed ``BENCH_baseline.json`` is the reference a
perf-affecting change diffs against (``python -m repro.obs.report
BENCH_baseline.json`` renders it)::

    PYTHONPATH=src python benchmarks/export_baseline.py [output.json]
"""

import sys

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.obs.exporters import engine_metrics, write_metrics_json

#: Fixed workload shape — change deliberately; the baseline diffs on it.
DOCS = 96
BASELINE_CONFIG = EngineConfig(
    buffer_pool_pages=8,
    record_size_limit=512,
    slow_query_events=64,
    slow_query_entries_scanned=256,
)


def _document(i: int) -> str:
    items = "".join(
        f"<item n='{j}'><name>part-{i}-{j}</name>"
        f"<price>{(i * 7 + j) % 90 + 10}</price></item>"
        for j in range(1 + i % 8))
    return f"<order id='{i}'><customer>c{i % 6}</customer>{items}</order>"


def run_workload(db: Database) -> None:
    db.create_table("orders", [("id", "bigint"), ("doc", "xml")])
    db.create_xpath_index("price_ix", "orders", "doc",
                          "/order/item/price", "double")

    # E1/E4: bulk load under transactions (accounting + WAL + packing).
    rids = []
    for i in range(DOCS):
        rids.append(db.run_in_txn(
            lambda eng, txn, i=i: eng.insert(
                "orders", (i, _document(i)), txn_id=txn.txn_id)))

    # E2/E5: navigation and scans (QuickXScan histograms, slow queries).
    db.xpath("orders", "doc", "/order/customer")
    db.xpath("orders", "doc", "/order/item/name")
    db.xpath("orders", "doc", "/order/item[price > 50]")

    # E6: value-index probes against the same predicate.
    from repro.query.plan import AccessMethod
    db.xpath("orders", "doc", "/order/item[price > 50]",
             method=AccessMethod.DOCID_LIST)

    # E3: node-level update on one document — replace the text child of
    # the first matched <customer> element.
    results = db.xpath("orders", "doc", "/order/customer")
    updater = db.updater("orders", "doc")
    target = results[0]
    assert target.node_id is not None
    text_id = updater.child_ids(target.docid, target.node_id)[0]
    updater.replace_text(target.docid, text_id, "c-updated")

    # Transactional mix: an aborted delete exercises logical undo.
    txn = db.txns.begin()
    db.delete_row("orders", rids[-1], txn_id=txn.txn_id)
    txn.abort()
    db.run_in_txn(lambda eng, t: eng.delete_row(
        "orders", rids[0], txn_id=t.txn_id))

    db.checkpoint()


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    out = argv[0] if argv else "BENCH_baseline.json"
    db = Database(BASELINE_CONFIG)
    run_workload(db)
    artifact = engine_metrics(db)
    artifact["workload"] = {
        "name": "bench-baseline",
        "docs": DOCS,
        "config": {
            "buffer_pool_pages": BASELINE_CONFIG.buffer_pool_pages,
            "record_size_limit": BASELINE_CONFIG.record_size_limit,
        },
    }
    write_metrics_json(artifact, out)
    counters = artifact["counters"]
    print(f"wrote {out}: {len(counters)} counters, "
          f"{len(artifact['histograms'])} histograms, "
          f"{len(artifact['accounting'])} accounting records, "
          f"{len(artifact['slow_queries'])} slow queries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
