"""Export the counter-based perf baseline (``BENCH_baseline.json``).

Runs a deterministic miniature of the E-series workloads — bulk insert
with tree packing (E1/E4), navigational and scan queries (E2/E5), value
index probes (E6), node-level updates (E3), and a transactional mix with
an aborted delete — on a fixed configuration, then writes the engine's
full metrics artifact (counters, gauges, histograms, accounting records,
slow queries, monitor snapshot) through :mod:`repro.obs.exporters`.

The engine is deterministic, so the counter values are stable across runs
and machines; the committed ``BENCH_baseline.json`` is the reference a
perf-affecting change diffs against (``python -m repro.obs.report
BENCH_baseline.json`` renders it)::

    PYTHONPATH=src python benchmarks/export_baseline.py [output.json]

Besides the deterministic artifact, the export runs timed *scenarios* on
separate engine instances — ``commits_per_sec`` (the same insert stream
committed with per-commit forcing vs. group commit),
``wal_bytes_per_commit``, and ``tracing_overhead`` (the same commit loop
with no event trace, with a trace installed but every class disabled, and
with all classes enabled; best-of-3 interleaved runs) — recorded under the
artifact's ``scenarios`` key.  Wall-clock numbers vary by machine, so the
CI drift gate compares only ``counters``/``gauges``/``histograms`` and
ignores ``scenarios``; the same exemption covers ``waits_profile``, where
this exporter moves the wall-clock-derived ``waits.*`` counters and the
``waits.request_wait_us`` histogram so the deterministic keys stay
deterministic.  The CI observability job separately gates
``tracing_overhead``: the installed-but-disabled mode must stay within 5%
of the no-trace reference.
"""

import sys
import time
from dataclasses import replace

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.obs.events import ALL_CLASSES, EventTrace
from repro.obs.exporters import engine_metrics, write_metrics_json

#: Fixed workload shape — change deliberately; the baseline diffs on it.
DOCS = 96
BASELINE_CONFIG = EngineConfig(
    buffer_pool_pages=8,
    record_size_limit=512,
    slow_query_events=64,
    slow_query_entries_scanned=256,
)


def _document(i: int) -> str:
    items = "".join(
        f"<item n='{j}'><name>part-{i}-{j}</name>"
        f"<price>{(i * 7 + j) % 90 + 10}</price></item>"
        for j in range(1 + i % 8))
    return f"<order id='{i}'><customer>c{i % 6}</customer>{items}</order>"


def run_workload(db: Database) -> None:
    db.create_table("orders", [("id", "bigint"), ("doc", "xml")])
    db.create_xpath_index("price_ix", "orders", "doc",
                          "/order/item/price", "double")

    # E1/E4: bulk load under transactions (accounting + WAL + packing).
    rids = []
    for i in range(DOCS):
        rids.append(db.run_in_txn(
            lambda eng, txn, i=i: eng.insert(
                "orders", (i, _document(i)), txn_id=txn.txn_id)))

    # E2/E5: navigation and scans (QuickXScan histograms, slow queries).
    db.xpath("orders", "doc", "/order/customer")
    db.xpath("orders", "doc", "/order/item/name")
    db.xpath("orders", "doc", "/order/item[price > 50]")

    # E6: value-index probes against the same predicate.
    from repro.query.plan import AccessMethod
    db.xpath("orders", "doc", "/order/item[price > 50]",
             method=AccessMethod.DOCID_LIST)

    # E3: node-level update on one document — replace the text child of
    # the first matched <customer> element.
    results = db.xpath("orders", "doc", "/order/customer")
    updater = db.updater("orders", "doc")
    target = results[0]
    assert target.node_id is not None
    text_id = updater.child_ids(target.docid, target.node_id)[0]
    updater.replace_text(target.docid, text_id, "c-updated")

    # Transactional mix: an aborted delete exercises logical undo.
    txn = db.txns.begin()
    db.delete_row("orders", rids[-1], txn_id=txn.txn_id)
    txn.abort()
    db.run_in_txn(lambda eng, t: eng.delete_row(
        "orders", rids[0], txn_id=t.txn_id))

    db.checkpoint()


#: Commits per timed commit-path scenario run.
SCENARIO_COMMITS = 64


def _commit_scenario(group_commit: bool) -> dict:
    """Time ``SCENARIO_COMMITS`` single-insert commits on a fresh engine.

    Runs on its own :class:`Database` (own stats) so scenario counters
    never leak into the deterministic baseline artifact.
    """
    config = replace(BASELINE_CONFIG, txn_group_commit=group_commit)
    db = Database(config)
    db.create_table("bench", [("id", "bigint"), ("doc", "xml")])
    started = time.perf_counter()
    for i in range(SCENARIO_COMMITS):
        db.run_in_txn(lambda eng, txn, i=i: eng.insert(
            "bench", (i, _document(i)), txn_id=txn.txn_id))
    elapsed = time.perf_counter() - started
    counters = db.stats.counters()
    db.close()
    return {
        "commits": SCENARIO_COMMITS,
        "wall_seconds": round(elapsed, 6),
        "commits_per_sec": round(SCENARIO_COMMITS / elapsed, 1)
        if elapsed > 0 else 0.0,
        "wal_bytes": counters.get("wal.bytes", 0),
        "wal_forces": counters.get("wal.flushes", 0),
        "group_commits": counters.get("wal.group_commits", 0),
    }


#: Trace modes the overhead scenario times, in run order.
_TRACE_MODES = ("reference", "events_off", "events_on")

#: Commits per overhead-scenario run: longer than the commit-path
#: scenarios so scheduler jitter amortizes below the 5% CI gate.
OVERHEAD_COMMITS = 192


def _traced_commit_run(mode: str) -> float:
    """One timed commit loop under the given trace mode; returns seconds.

    ``reference`` runs with no trace installed (the emit sites pay one
    ``stats.events is None`` test), ``events_off`` with a trace installed
    but every class disabled (one frozenset membership test per emit),
    ``events_on`` with all classes recording.
    """
    db = Database(BASELINE_CONFIG)
    db.create_table("bench", [("id", "bigint"), ("doc", "xml")])
    if mode == "events_off":
        EventTrace(classes=()).install(db.stats)
    elif mode == "events_on":
        EventTrace(classes=ALL_CLASSES).install(db.stats)
    started = time.perf_counter()
    for i in range(OVERHEAD_COMMITS):
        db.run_in_txn(lambda eng, txn, i=i: eng.insert(
            "bench", (i, _document(i)), txn_id=txn.txn_id))
    elapsed = time.perf_counter() - started
    db.close()
    return elapsed


def run_tracing_overhead(repeats: int = 5) -> dict:
    """Best-of-N commit-loop timing per trace mode (modes interleaved).

    Interleaving the modes round-robin decorrelates machine noise (a
    background hiccup hits one *repeat*, not one *mode*), and one
    discarded warmup round per mode pays the import/allocator cold-start
    before anything is timed.  The ``overhead_ratio`` of each traced mode
    is its best time over the reference's best time — the number the CI
    observability job gates (``events_off`` <= 1.05).
    """
    for mode in _TRACE_MODES:  # warmup, discarded
        _traced_commit_run(mode)
    times: dict[str, list[float]] = {mode: [] for mode in _TRACE_MODES}
    for _ in range(repeats):
        for mode in _TRACE_MODES:
            times[mode].append(_traced_commit_run(mode))
    reference = min(times["reference"])
    out: dict = {}
    for mode in _TRACE_MODES:
        best = min(times[mode])
        entry = {
            "commits": OVERHEAD_COMMITS,
            "best_seconds": round(best, 6),
            "runs_seconds": [round(t, 6) for t in times[mode]],
        }
        if mode != "reference":
            entry["overhead_ratio"] = round(best / reference, 4) \
                if reference > 0 else 0.0
        out[mode] = entry
    return out


def run_scenarios() -> dict:
    """Timed scenarios (wall-clock; excluded from the CI drift gate)."""
    single = _commit_scenario(group_commit=False)
    grouped = _commit_scenario(group_commit=True)
    return {
        "commits_per_sec": {
            "single_commit": single,
            "group_commit": grouped,
        },
        "wal_bytes_per_commit": {
            "single_commit": round(
                single["wal_bytes"] / single["commits"], 1),
            "group_commit": round(
                grouped["wal_bytes"] / grouped["commits"], 1),
        },
        "tracing_overhead": run_tracing_overhead(),
    }


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    out = argv[0] if argv else "BENCH_baseline.json"
    db = Database(BASELINE_CONFIG)
    run_workload(db)
    artifact = engine_metrics(db)
    # The wait clock measures real time, so its metrics are the one part
    # of the artifact that is *not* deterministic across machines.  Move
    # them out of the drift-gated counters/histograms keys into the
    # exempt waits_profile section (same treatment as scenarios).
    artifact["waits_profile"] = {
        "counters": {name: artifact["counters"].pop(name)
                     for name in sorted(artifact["counters"])
                     if name.startswith("waits.")},
        "request_wait_us": artifact["histograms"].pop(
            "waits.request_wait_us", None),
        "profile": artifact.pop("waits", {}),
    }
    artifact["workload"] = {
        "name": "bench-baseline",
        "docs": DOCS,
        "config": {
            "buffer_pool_pages": BASELINE_CONFIG.buffer_pool_pages,
            "record_size_limit": BASELINE_CONFIG.record_size_limit,
        },
    }
    artifact["scenarios"] = run_scenarios()
    write_metrics_json(artifact, out)
    counters = artifact["counters"]
    rate = artifact["scenarios"]["commits_per_sec"]
    print(f"wrote {out}: {len(counters)} counters, "
          f"{len(artifact['histograms'])} histograms, "
          f"{len(artifact['accounting'])} accounting records, "
          f"{len(artifact['slow_queries'])} slow queries")
    print(f"commits/sec: single "
          f"{rate['single_commit']['commits_per_sec']}, group "
          f"{rate['group_commit']['commits_per_sec']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
