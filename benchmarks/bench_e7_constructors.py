"""E7 — constructor-function optimization and XMLAGG sort paths (§4.1).

Paper claims: flattening nested constructors into one tagging template avoids
"either small data items linked by pointers or multiple copies of the same
data items" and "is very effective for generating XML for large number of
repeated rows or the aggregate function XMLAGG"; and XMLAGG ORDER BY via
"in-memory quicksort to the linked list representation" beats the "typical
external SORT".
"""

import time

from conftest import fresh_pool, print_table

from repro.query.constructors import (Arg, XAttr, XElem, XForest,
                                      XmlAggregator, compile_template,
                                      naive_construct)
from repro.rdb.tablespace import TableSpace
from repro.workload.generator import employee_rows
from repro.xdm.serializer import serialize

SPEC = XElem("Emp",
             attrs=(XAttr("id", Arg(0)), XAttr("name", Arg(1))),
             children=(XForest((("HIRE", Arg(2)),
                                ("department", Arg(3)))),))

ROW_COUNTS = [200, 1000, 5000]


def timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e7_template_vs_naive(benchmark):
    template = compile_template(SPEC)
    rows = []
    for n_rows in ROW_COUNTS:
        data = employee_rows(n_rows, seed=n_rows)

        def run_template():
            return [template.instantiate(args).serialize() for args in data]

        def run_naive():
            return [serialize(naive_construct(SPEC, args)[0])
                    for args in data]

        assert run_template() == run_naive()
        template_time = timed(run_template)
        naive_time = timed(run_naive)
        rows.append([n_rows, f"{template_time * 1e3:.1f}",
                     f"{naive_time * 1e3:.1f}",
                     f"{naive_time / template_time:.2f}x"])
    print_table(
        "E7: Fig. 5 constructor — tagging template vs per-row construction",
        ["rows", "template ms", "naive ms", "naive/template"],
        rows)
    # Shape: the template path wins, and the gap holds at scale.
    data = employee_rows(ROW_COUNTS[-1], seed=1)
    template_time = timed(
        lambda: [template.instantiate(a).serialize() for a in data])
    naive_time = timed(
        lambda: [serialize(naive_construct(SPEC, a)[0]) for a in data])
    assert template_time < naive_time

    benchmark(lambda: [template.instantiate(a).serialize()
                       for a in employee_rows(500, seed=2)])


def test_e7_xmlagg_sort_paths(benchmark):
    template = compile_template(SPEC)
    rows = []
    for n_rows in ROW_COUNTS:
        data = employee_rows(n_rows, seed=n_rows + 1)

        def make_agg():
            agg = XmlAggregator()
            for args in data:
                agg.add(template.instantiate(args), sort_key=args[1])
            return agg

        quick_time = timed(lambda: make_agg().serialize(
            order_by=True, sort_path="quicksort"))

        pool, stats = fresh_pool(capacity=8)

        def run_external():
            space = TableSpace(pool)
            return make_agg().serialize(order_by=True, sort_path="external",
                                        work_space=space)

        with stats.delta() as delta:
            external_out = run_external()
        external_time = timed(run_external)
        assert external_out == make_agg().serialize(order_by=True)
        rows.append([n_rows, f"{quick_time * 1e3:.1f}",
                     f"{external_time * 1e3:.1f}",
                     f"{external_time / quick_time:.2f}x",
                     delta.get("disk.page_writes", 0)])
    print_table(
        "E7: XMLAGG ORDER BY — linked-list quicksort vs external sort",
        ["rows", "quicksort ms", "external ms", "ext/quick",
         "work-file page writes"],
        rows)

    data = employee_rows(ROW_COUNTS[-1], seed=9)
    agg = XmlAggregator()
    for args in data:
        agg.add(template.instantiate(args), sort_key=args[1])
    pool, _stats = fresh_pool(capacity=64)
    space = TableSpace(pool)
    quick_time = timed(lambda: agg.serialize(order_by=True))
    external_time = timed(lambda: agg.serialize(
        order_by=True, sort_path="external", work_space=space))
    # Shape: the in-memory path wins and spills nothing.
    assert quick_time < external_time

    benchmark(lambda: agg.serialize(order_by=True))
