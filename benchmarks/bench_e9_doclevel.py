"""E9a — document-level locking vs multiversioning (§5.1).

Paper claims: under lock-based document-level concurrency writers block
readers (and DocID locks are required for direct index access); with
multiversioning readers never block — "more efficient for mostly read
workload" — and a reader's deferred access resolves against its snapshot.
The bench runs the same read-mostly workload under both protocols through
the deterministic scheduler and compares wait steps and makespan.
"""

from conftest import fresh_names, fresh_pool, print_table

from repro.cc.mvcc import VersionedXmlStore
from repro.cc.scheduler import Do, Lock, Scheduler
from repro.core.stats import StatsRegistry
from repro.rdb.locks import LockManager, LockMode
from repro.workload.generator import catalog_document

N_READERS = 12
N_WRITES = 4
DOC = catalog_document(6, seed=4)


def locking_workload():
    """Readers take DocID S locks; one writer repeatedly takes X locks."""
    locks = LockManager(StatsRegistry())
    reads_done = []

    def reader(txn_id):
        yield Lock(("doc", "doc", 1), LockMode.S)
        yield Do(lambda: reads_done.append(txn_id))
        yield Do(lambda: None)  # read work

    def writer(txn_id):
        for _ in range(N_WRITES):
            yield Lock(("doc", "doc", 1), LockMode.X)
            yield Do(lambda: None)  # update work
        # locks held to commit (strict 2PL)

    programs = [(f"r{i}", reader) for i in range(N_READERS)]
    programs.insert(0, ("w", writer))
    result = Scheduler(locks, seed=42).run(programs)
    return result, len(reads_done)


def mvcc_workload():
    """Readers read their snapshot without any locks; the writer installs
    new versions."""
    pool, _stats = fresh_pool()
    store = VersionedXmlStore(pool, fresh_names(), record_limit=512,
                              retained_versions=N_WRITES + 2)
    store.commit_version_text(1, DOC)
    locks = LockManager(StatsRegistry())  # unused by readers
    reads_done = []

    def reader(txn_id):
        snapshot = store.latest_version

        def read():
            count = sum(1 for _ in store.document_at(1, snapshot).events())
            reads_done.append(count)
        yield Do(read)
        yield Do(lambda: None)

    def writer(txn_id):
        for n in range(N_WRITES):
            yield Do(lambda n=n: store.commit_version_text(
                1, DOC.replace("</Catalog>",
                               f"<rev>{n}</rev></Catalog>")))

    programs = [(f"r{i}", reader) for i in range(N_READERS)]
    programs.insert(0, ("w", writer))
    result = Scheduler(locks, seed=42).run(programs)
    return result, len(reads_done)


def test_e9a_locking_vs_mvcc(benchmark):
    lock_result, lock_reads = locking_workload()
    mvcc_result, mvcc_reads = mvcc_workload()
    assert lock_reads == mvcc_reads == N_READERS

    rows = [
        ["document locks", lock_result.committed, lock_result.wait_steps,
         lock_result.makespan],
        ["multiversioning", mvcc_result.committed, mvcc_result.wait_steps,
         mvcc_result.makespan],
    ]
    print_table(
        f"E9a: read-mostly workload ({N_READERS} readers, 1 writer x "
        f"{N_WRITES} updates)",
        ["protocol", "committed", "reader wait steps", "makespan"],
        rows)

    # Shape: readers never block under MVCC; they do under locking.
    assert mvcc_result.wait_steps == 0
    assert lock_result.wait_steps > 0
    assert mvcc_result.makespan <= lock_result.makespan

    benchmark(lambda: mvcc_workload())
