"""E9b — subdocument multiple-granularity locking (§5.2).

Paper claims: multiple-granularity locking on prefix-encoded node IDs lets
transactions update disjoint subtrees of one document concurrently (ancestry
= prefix test), where document-level locking serializes them.  The bench
runs disjoint-subtree writer fleets under both granularities and one
conflicting (ancestor-writer) mix, comparing wait steps and makespan.
"""

from conftest import fresh_names, fresh_pool, print_table

from repro.cc.scheduler import Do, Lock, Scheduler
from repro.cc.subdocument import DocumentGranularityAdapter, PrefixLockTable
from repro.core.stats import StatsRegistry
from repro.rdb.locks import LockMode
from repro.workload.generator import wide_document
from repro.xdm.events import EventKind
from repro.xmlstore.store import XmlStore
from repro.xmlstore.update import XmlUpdater

N_WRITERS = 8
WORK_STEPS = 3


def build_store():
    pool, _stats = fresh_pool()
    store = XmlStore(pool, fresh_names(), record_limit=256)
    store.insert_document_text(1, wide_document(N_WRITERS * 4, seed=8))
    return store


def subtree_targets(store):
    """One <row> subtree (and its text child) per writer."""
    events = list(store.document(1).events())
    rows = [e.node_id for e in events
            if e.kind is EventKind.ELEM_START and e.local == "row"]
    texts = {}
    for i, event in enumerate(events):
        if event.kind is EventKind.ELEM_START and event.local == "row":
            texts[event.node_id] = events[i + 2].node_id  # after @n attr
    step = max(1, len(rows) // N_WRITERS)
    chosen = rows[::step][:N_WRITERS]
    return [(node, texts[node]) for node in chosen]


def run(granularity: str, conflicting: bool = False):
    store = build_store()
    updater = XmlUpdater(store)
    targets = subtree_targets(store)
    table = PrefixLockTable(StatsRegistry())
    backend = table if granularity == "subdocument" \
        else DocumentGranularityAdapter(table)

    def writer(subtree, text_id):
        def body(txn_id):
            yield Lock((1, subtree), LockMode.X)
            for k in range(WORK_STEPS):
                yield Do(lambda k=k: updater.replace_text(
                    1, text_id, f"updated by step {k}"))
        return body

    programs = [(f"w{i}", writer(subtree, text))
                for i, (subtree, text) in enumerate(targets)]
    if conflicting:
        root = b"\x02"  # whole-document writer forces serialization anyway

        def root_writer(txn_id):
            yield Lock((1, root), LockMode.X)
            yield Do(lambda: None)
        programs.append(("root", root_writer))
    result = Scheduler(backend, seed=17).run(programs)
    return result, table.prefix_tests


def test_e9b_granularity(benchmark):
    fine, fine_tests = run("subdocument")
    coarse, _ = run("document")
    fine_conflict, _ = run("subdocument", conflicting=True)

    rows = [
        ["subdocument (node-ID MGL)", fine.committed, fine.wait_steps,
         fine.makespan, fine_tests],
        ["document-level", coarse.committed, coarse.wait_steps,
         coarse.makespan, "-"],
        ["subdocument + root writer", fine_conflict.committed,
         fine_conflict.wait_steps, fine_conflict.makespan, "-"],
    ]
    print_table(
        f"E9b: {N_WRITERS} disjoint-subtree writers on one document",
        ["granularity", "committed", "wait steps", "makespan",
         "prefix tests"],
        rows)

    # Shape: disjoint writers do not wait at subdocument granularity but
    # serialize at document granularity; a root-subtree writer conflicts
    # with everyone even at fine granularity (ancestry = prefix test).
    assert fine.wait_steps == 0
    assert coarse.wait_steps > 0
    assert fine.committed == coarse.committed == N_WRITERS
    assert fine_conflict.wait_steps > 0

    benchmark(lambda: run("subdocument"))
