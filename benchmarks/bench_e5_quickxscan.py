"""E5b — QuickXScan vs streaming baseline vs DOM: time, memory, linearity.

Paper claims (§4.2): QuickXScan "outperforms the existing state-of-the-art
streaming XPath algorithms in both elapsed time and memory consumption, and
is orders of magnitude better than some DOM-based algorithm", and it
"achieved our design goal of linear performance with regard to the document
size" (small r in practice).  The workload is the paper's own Fig. 6 query
over generated documents of increasing size.
"""

import time

from conftest import print_table

from repro.core.stats import StatsRegistry
from repro.lang.parser import parse_xpath
from repro.workload.generator import figure6_document
from repro.workload.queries import FIGURE6_QUERY
from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.automaton import NaiveStreamEvaluator
from repro.xpath.domeval import DomEvaluator
from repro.xpath.qtree import compile_query
from repro.xpath.quickxscan import QuickXScan

SIZES = [100, 200, 400, 800]


def build_events(n_blocks):
    return list(assign_node_ids(
        parse(figure6_document(n_blocks, seed=1)).events()))


def timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e5b_figure6_query(benchmark):
    query = compile_query(parse_xpath(FIGURE6_QUERY))
    rows = []
    qx_times = {}
    for n_blocks in SIZES:
        events = build_events(n_blocks)
        stats = StatsRegistry()
        qx_result = QuickXScan(query, stats=stats).run(iter(events))
        qx_time = timed(
            lambda query=query, events=events: QuickXScan(query)
            .run(iter(events)))
        qx_times[n_blocks] = qx_time
        dom = DomEvaluator(stats=stats)
        dom_result = dom.evaluate(FIGURE6_QUERY, iter(events))
        dom_time = timed(lambda: DomEvaluator().evaluate(
            FIGURE6_QUERY, iter(events)))
        assert [i.node_id for i in qx_result] == \
            [i.node_id for i in dom_result]
        rows.append([
            n_blocks, len(events), len(qx_result),
            f"{qx_time * 1e3:.2f}", f"{dom_time * 1e3:.2f}",
            f"{dom_time / qx_time:.2f}x",
            stats.gauge("xscan.peak_units"),
            stats.gauge("domeval.tree_nodes"),
        ])
    print_table(
        f"E5b: {FIGURE6_QUERY} — QuickXScan vs DOM",
        ["blocks", "events", "results", "QX ms", "DOM ms", "DOM/QX",
         "QX peak units", "DOM tree nodes"],
        rows)

    # Memory: QuickXScan's live state is orders of magnitude below the
    # materialized tree.
    events = build_events(SIZES[-1])
    stats = StatsRegistry()
    QuickXScan(query, stats=stats).run(iter(events))
    DomEvaluator(stats=stats).evaluate(FIGURE6_QUERY, iter(events))
    assert stats.gauge("xscan.peak_units") * 50 < \
        stats.gauge("domeval.tree_nodes")

    # Linearity: time grows ~proportionally with document size.
    growth = qx_times[SIZES[-1]] / qx_times[SIZES[0]]
    size_ratio = SIZES[-1] / SIZES[0]
    assert growth < size_ratio * 2.0

    events = build_events(400)
    benchmark(lambda: QuickXScan(query).run(iter(events)))


def test_e5b_streaming_baseline_comparison(benchmark):
    """QuickXScan vs the naive streaming automaton.

    On flat data the two are comparable (few live states either way); on
    recursive data the automaton's unmerged instances dominate its per-event
    work and QuickXScan pulls ahead — the gap grows with recursion depth,
    which is the paper's claim in measurable form.
    """
    from repro.workload.generator import recursive_document

    rows = []
    ratios = []
    cases = [("flat //b/s", "//b/s", build_events(400))]
    for depth in (48, 96, 144):
        events = list(assign_node_ids(
            parse(recursive_document(depth)).events()))
        cases.append((f"recursive r={depth} //a//a//a", "//a//a//a", events))
    for label, path, events in cases:
        query = compile_query(parse_xpath(path),
                              collect_result_values=False)
        qx_time = timed(
            lambda query=query, events=events: QuickXScan(query)
            .run(iter(events)))
        naive = NaiveStreamEvaluator(path)
        naive_time = timed(
            lambda naive=naive, events=events: naive.run(iter(events)))
        qx_ids = {i.node_id for i in QuickXScan(query).run(iter(events))}
        naive_ids = {i.node_id for i in naive.run(iter(events))}
        assert qx_ids == naive_ids
        ratio = naive_time / qx_time
        ratios.append(ratio)
        rows.append([label, len(qx_ids), f"{qx_time * 1e3:.2f}",
                     f"{naive_time * 1e3:.2f}", f"{ratio:.2f}x"])
    print_table("E5b: QuickXScan vs naive streaming automaton",
                ["workload", "results", "QX ms", "naive ms", "naive/QX"],
                rows)
    # Shape: the advantage grows with recursion depth.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.5

    events = build_events(400)
    query = compile_query(parse_xpath("//b/s"),
                          collect_result_values=False)
    benchmark(lambda: QuickXScan(query).run(iter(events)))
