"""Tests for schema parsing, compilation (DFAs), and the validation VM."""

import pytest

from repro.errors import SchemaError, XmlValidationError
from repro.xschema.compiler import (compile_parsed, compile_schema,
                                    deserialize_compiled,
                                    serialize_compiled)
from repro.xschema.model import parse_schema
from repro.xschema.validator import ValidationVM, check_lexical, validate_text

ORDER_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order" type="OrderType"/>
  <xs:complexType name="OrderType">
    <xs:sequence>
      <xs:element name="customer" type="xs:string"/>
      <xs:element name="item" type="ItemType" minOccurs="1"
                  maxOccurs="unbounded"/>
      <xs:element name="note" type="xs:string" minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:integer" use="required"/>
    <xs:attribute name="date" type="xs:date"/>
  </xs:complexType>
  <xs:complexType name="ItemType">
    <xs:sequence>
      <xs:element name="sku" type="xs:string"/>
      <xs:element name="qty" type="xs:integer"/>
      <xs:element name="price" type="xs:double"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="customer" type="xs:string"/>
  <xs:element name="item" type="ItemType"/>
  <xs:element name="note" type="xs:string"/>
  <xs:element name="sku" type="xs:string"/>
  <xs:element name="qty" type="xs:integer"/>
  <xs:element name="price" type="xs:double"/>
</xs:schema>
"""

VALID_ORDER = """
<order id="42" date="2005-06-16">
  <customer>ACME</customer>
  <item><sku>A-1</sku><qty>2</qty><price>9.99</price></item>
  <item><sku>B-2</sku><qty>1</qty><price>100</price></item>
  <note>rush</note>
</order>
"""


class TestSchemaModel:
    def test_parses(self):
        schema = parse_schema(ORDER_XSD)
        assert "order" in schema.elements
        assert "OrderType" in schema.types
        order_type = schema.types["OrderType"]
        assert len(order_type.attributes) == 2
        assert order_type.attributes[0].required

    def test_unknown_type_rejected(self):
        bad = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                 <xs:element name="a" type="Missing"/></xs:schema>"""
        with pytest.raises(SchemaError):
            parse_schema(bad)

    def test_bad_root(self):
        with pytest.raises(SchemaError):
            parse_schema("<notschema/>")

    def test_occurs_validation(self):
        bad = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                 <xs:complexType name="T"><xs:sequence>
                 <xs:element name="a" minOccurs="3" maxOccurs="2"/>
                 </xs:sequence></xs:complexType></xs:schema>"""
        with pytest.raises(SchemaError):
            parse_schema(bad)

    def test_inline_complex_type(self):
        text = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="root"><xs:complexType><xs:sequence>
            <xs:element name="leaf" type="xs:string"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"""
        schema = parse_schema(text)
        assert schema.elements["root"].type_name.startswith("#anon")
        assert "leaf" in schema.elements


class TestCompiler:
    def test_binary_roundtrip(self):
        compiled = compile_parsed(parse_schema(ORDER_XSD))
        blob = serialize_compiled(compiled)
        reloaded = deserialize_compiled(blob)
        assert reloaded.elements == compiled.elements
        order = reloaded.types["OrderType"]
        assert order.dfa is not None
        assert [a[0] for a in order.attributes] == ["id", "date"]

    def test_blob_magic_checked(self):
        with pytest.raises(SchemaError):
            deserialize_compiled(b"garbage")

    def test_dfa_semantics(self):
        compiled = compile_parsed(parse_schema(ORDER_XSD))
        dfa = compiled.types["OrderType"].dfa
        state = dfa.start
        assert not dfa.accepts_empty_tail(state)
        state = dfa.step(state, "customer")
        state = dfa.step(state, "item")
        assert dfa.accepts_empty_tail(state)      # one item suffices
        state = dfa.step(state, "item")
        assert dfa.accepts_empty_tail(state)      # unbounded
        state = dfa.step(state, "note")
        assert dfa.accepts_empty_tail(state)
        assert dfa.step(state, "note") is None    # note only once

    def test_choice_dfa(self):
        text = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="pay" type="PayType"/>
          <xs:complexType name="PayType"><xs:choice>
            <xs:element name="cash" type="xs:string"/>
            <xs:element name="card" type="xs:string"/>
          </xs:choice></xs:complexType>
          <xs:element name="cash" type="xs:string"/>
          <xs:element name="card" type="xs:string"/>
        </xs:schema>"""
        compiled = compile_parsed(parse_schema(text))
        dfa = compiled.types["PayType"].dfa
        for symbol in ("cash", "card"):
            state = dfa.step(dfa.start, symbol)
            assert state is not None and dfa.accepts_empty_tail(state)


class TestValidator:
    @pytest.fixture
    def blob(self):
        return compile_schema(ORDER_XSD)

    def test_valid_document(self, blob):
        stream = validate_text(blob, VALID_ORDER)
        annotated = dict()
        for event, annotation in stream.annotated_events():
            if annotation and event.local:
                annotated.setdefault(event.local, annotation)
        assert annotated["order"] == "OrderType"
        assert annotated["item"] == "ItemType"
        assert annotated["qty"] == "integer"
        assert annotated["id"] == "integer"

    @pytest.mark.parametrize("mutate,message", [
        (lambda t: t.replace('id="42" ', ""), "required attribute"),
        (lambda t: t.replace('id="42"', 'id="abc"'), "not a valid integer"),
        (lambda t: t.replace('date="2005-06-16"', 'date="June"'),
         "not a valid date"),
        (lambda t: t.replace("<customer>ACME</customer>", ""),
         "unexpected <item>"),
        (lambda t: t.replace("<note>rush</note>",
                             "<note>a</note><note>b</note>"),
         "unexpected <note>"),
        (lambda t: t.replace("<qty>2</qty>", "<qty>two</qty>"),
         "not a valid integer"),
        (lambda t: t.replace("<sku>A-1</sku>", "<mystery/>"),
         "unexpected <mystery>"),
        (lambda t: t.replace("<order", "<bogus").replace("</order>",
                                                         "</bogus>"),
         "not declared"),
    ])
    def test_rejections(self, blob, mutate, message):
        with pytest.raises(XmlValidationError) as err:
            validate_text(blob, mutate(VALID_ORDER))
        assert message in str(err.value)

    def test_incomplete_content(self, blob):
        truncated = ('<order id="1"><customer>X</customer></order>')
        with pytest.raises(XmlValidationError) as err:
            validate_text(blob, truncated)
        assert "before its content model" in str(err.value)

    def test_text_in_element_only_content(self, blob):
        bad = VALID_ORDER.replace(
            "<customer>ACME</customer>",
            "loose text<customer>ACME</customer>")
        with pytest.raises(XmlValidationError):
            validate_text(blob, bad)

    def test_vm_accepts_blob_or_object(self, blob):
        compiled = deserialize_compiled(blob)
        for vm in (ValidationVM(blob), ValidationVM(compiled)):
            vm.validate_events(
                __import__("repro.xdm.parser", fromlist=["parse"])
                .parse(VALID_ORDER, strip_whitespace=True).events())

    def test_check_lexical(self):
        assert check_lexical("integer", " 42 ")
        assert not check_lexical("integer", "4.2")
        assert check_lexical("double", "1e3")
        assert check_lexical("decimal", "1.50")
        assert not check_lexical("decimal", "x")
        assert check_lexical("date", "2005-06-16")
        assert check_lexical("boolean", "true")
        assert not check_lexical("boolean", "yes")
        assert check_lexical("string", "anything")


class TestEngineIntegration:
    def test_validated_insert(self):
        from repro.core.engine import Database
        db = Database()
        db.create_table("orders", [("doc", "xml")])
        db.register_schema("order.xsd", ORDER_XSD)
        db.insert("orders", (VALID_ORDER,), validate_against="order.xsd")
        assert db.get_document("orders", "doc", 1).count("<item>") == 2

    def test_invalid_insert_rejected(self):
        from repro.core.engine import Database
        db = Database()
        db.create_table("orders", [("doc", "xml")])
        db.register_schema("order.xsd", ORDER_XSD)
        with pytest.raises(XmlValidationError):
            db.insert("orders", ("<order id='1'/>",),
                      validate_against="order.xsd")

    def test_schema_survives_recovery(self):
        from repro.core.engine import Database
        db = Database()
        db.create_table("orders", [("doc", "xml")])
        db.register_schema("order.xsd", ORDER_XSD)
        db.insert("orders", (VALID_ORDER,), validate_against="order.xsd")
        replayed = Database.replay(db.log)
        assert replayed.catalog.schema("order.xsd") == \
            db.catalog.schema("order.xsd")
        assert replayed.get_document("orders", "doc", 1) == \
            db.get_document("orders", "doc", 1)
