"""Lock-timeout, deadlock-distinction, and retry-convergence tests."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.core.stats import StatsRegistry
from repro.cc.scheduler import Do, Lock, Scheduler
from repro.errors import DeadlockError, LockTimeoutError
from repro.rdb.locks import LockManager, LockMode
from repro.rdb.txn import TransactionManager


@pytest.fixture
def stats():
    return StatsRegistry()


def manager(stats, budget=8, cap=4):
    return TransactionManager(stats=stats, lock_wait_budget=budget,
                              lock_backoff_initial=1, lock_backoff_cap=cap)


class TestInteractiveLockTimeout:
    def test_timeout_within_budget(self, stats):
        mgr = manager(stats, budget=8)
        holder = mgr.begin()
        assert holder.try_lock("r", LockMode.X)
        blocked = mgr.begin()
        with pytest.raises(LockTimeoutError):
            blocked.lock("r", LockMode.X)
        assert stats.get("txn.lock_timeouts") == 1
        # Backoff steps 1+2+4+... are charged against the budget; the loop
        # must give up the first time the accrued wait reaches it.
        assert stats.get("lock.wait_steps") >= 8
        assert stats.get("lock.wait_steps") <= 8 + 4  # budget + one backoff

    def test_timeout_clears_wait_edges(self, stats):
        mgr = manager(stats)
        holder = mgr.begin()
        assert holder.try_lock("r", LockMode.X)
        blocked = mgr.begin()
        with pytest.raises(LockTimeoutError):
            blocked.lock("r", LockMode.X)
        # The stale waits-for edge must not poison later cycle detection.
        assert mgr.locks.find_deadlock() is None
        blocked.abort()
        holder.commit()
        fresh = mgr.begin()
        fresh.lock("r", LockMode.X)  # immediate grant, no backoff
        assert stats.get("txn.lock_timeouts") == 1

    def test_blocked_lock_eventually_granted(self, stats):
        """Contention under the budget is waited out, not raised."""
        mgr = manager(stats, budget=1000)
        holder = mgr.begin()
        assert holder.try_lock("r", LockMode.S)
        waiter = mgr.begin()
        waiter.lock("r", LockMode.S)  # S + S is compatible: granted at once
        assert stats.get("txn.lock_timeouts") == 0

    def test_deadlock_reported_as_deadlock_not_timeout(self, stats):
        mgr = manager(stats, budget=1000)
        a, b = mgr.begin(), mgr.begin()
        assert a.try_lock("r1", LockMode.X)
        assert b.try_lock("r2", LockMode.X)
        assert not a.try_lock("r2", LockMode.X)  # a now waits for b
        with pytest.raises(DeadlockError):
            b.lock("r1", LockMode.X)             # closes the cycle
        assert stats.get("txn.deadlocks") == 1
        assert stats.get("txn.lock_timeouts") == 0


class TestEngineRetry:
    def config(self, **kw):
        defaults = dict(page_size=1024, buffer_pool_pages=64,
                        lock_wait_budget=8, txn_retry_limit=3)
        defaults.update(kw)
        return EngineConfig(**defaults)

    def test_retry_converges_once_lock_frees(self):
        db = Database(self.config())
        holder = db.txns.begin()
        assert holder.try_lock("hot-row", LockMode.X)
        attempts = []

        def body(db_, txn):
            attempts.append(txn.txn_id)
            if len(attempts) == 2 and holder.state.value == "active":
                holder.commit()  # contention resolves before attempt 2 locks
            txn.lock("hot-row", LockMode.X)
            return "done"

        assert db.run_in_txn(body) == "done"
        assert len(attempts) == 2
        assert db.stats.get("txn.retries") == 1
        assert db.stats.get("txn.lock_timeouts") == 1

    def test_retry_exhaustion_raises_last_error(self):
        db = Database(self.config(txn_retry_limit=2))
        holder = db.txns.begin()
        assert holder.try_lock("hot-row", LockMode.X)
        attempts = []

        def body(db_, txn):
            attempts.append(txn.txn_id)
            txn.lock("hot-row", LockMode.X)

        with pytest.raises(LockTimeoutError):
            db.run_in_txn(body)
        assert len(attempts) == 3  # first try + 2 retries
        assert db.stats.get("txn.retries") == 2
        # Every attempt's txn was aborted, none leaked into the active set.
        assert list(db.txns.active) == [holder.txn_id]

    def test_non_victim_errors_abort_without_retry(self):
        db = Database(self.config())
        attempts = []

        def body(db_, txn):
            attempts.append(txn.txn_id)
            raise RuntimeError("logic bug, not contention")

        with pytest.raises(RuntimeError):
            db.run_in_txn(body)
        assert len(attempts) == 1
        assert db.stats.get("txn.retries") == 0
        assert not db.txns.active

    def test_deadlock_victim_retries_and_commits(self):
        db = Database(self.config(lock_wait_budget=1000))
        a = db.txns.begin()
        assert a.try_lock("r1", LockMode.X)
        assert a.try_lock("r2", LockMode.X) is True
        a.commit()

        b = db.txns.begin()
        assert b.try_lock("r2", LockMode.X)

        def body(db_, txn):
            txn.lock("r1", LockMode.X)
            if not txn.try_lock("r2", LockMode.X):
                # b waits for us; closing the cycle makes us the victim.
                db_.txns.locks.try_acquire(b.txn_id, "r1", LockMode.X)
                txn.lock("r2", LockMode.X)
            return "ok"

        # Manufacture the cycle on attempt 1 only: release b's lock after.
        attempts = []
        original_body = body

        def wrapper(db_, txn):
            attempts.append(txn.txn_id)
            if len(attempts) == 2:
                if b.state.value == "active":
                    b.abort()
                txn.lock("r1", LockMode.X)
                txn.lock("r2", LockMode.X)
                return "ok"
            return original_body(db_, txn)

        assert db.run_in_txn(wrapper) == "ok"
        assert len(attempts) == 2
        assert db.stats.get("txn.deadlocks") == 1
        assert db.stats.get("txn.retries") == 1


class TestSchedulerTimeouts:
    def test_wait_budget_aborts_blocked_program(self, stats):
        lm = LockManager(stats)
        order = []

        def hog(txn_id):
            yield Lock("r", LockMode.X)
            for _ in range(40):  # hold the lock for a long time
                yield Do(lambda: None)
            order.append("hog")

        def impatient(txn_id):
            yield Lock("r", LockMode.X)
            order.append("impatient")

        sched = Scheduler(lm, seed=7, wait_budget=6, backoff_cap=4,
                          max_restarts=None, stats=stats)
        result = sched.run([("hog", hog), ("impatient", impatient)],
                           round_robin=True)
        assert result.committed == 2  # timeout victim restarts and commits
        assert result.timeout_aborts >= 1
        assert result.restarts >= 1
        assert stats.get("txn.timeout_aborts") >= 1
        assert order == ["hog", "impatient"]

    def test_restart_budget_exhaustion_fails_program(self, stats):
        lm = LockManager(stats)

        def hog(txn_id):
            yield Lock("r", LockMode.X)
            for _ in range(200):
                yield Do(lambda: None)

        def starved(txn_id):
            yield Lock("r", LockMode.X)

        sched = Scheduler(lm, seed=7, wait_budget=4, backoff_cap=2,
                          max_restarts=1, stats=stats)
        result = sched.run([("hog", hog), ("starved", starved)],
                           round_robin=True)
        assert result.committed == 1
        assert result.failed == ["starved"]
        assert result.timeout_aborts == 2  # initial try + one restart
        assert result.restarts == 1

    def test_backoff_is_bounded(self, stats):
        lm = LockManager(stats)

        def hog(txn_id):
            yield Lock("r", LockMode.X)
            for _ in range(10):
                yield Do(lambda: None)

        def waiter(txn_id):
            yield Lock("r", LockMode.X)

        sched = Scheduler(lm, seed=1, wait_budget=10_000, backoff_initial=1,
                          backoff_cap=8, stats=stats)
        result = sched.run([("hog", hog), ("waiter", waiter)],
                          round_robin=True)
        assert result.committed == 2
        assert result.timeout_aborts == 0

    def test_default_scheduler_has_no_timeouts(self, stats):
        """wait_budget=None preserves the seed behaviour: block forever."""
        lm = LockManager(stats)

        def hog(txn_id):
            yield Lock("r", LockMode.X)
            for _ in range(25):
                yield Do(lambda: None)

        def waiter(txn_id):
            yield Lock("r", LockMode.X)

        result = Scheduler(lm, seed=2).run([("hog", hog), ("w", waiter)])
        assert result.committed == 2
        assert result.timeout_aborts == 0
        assert result.aborted == 0
