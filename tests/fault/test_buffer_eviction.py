"""Regression tests for buffer-pool eviction accounting and allocation.

PR 2's satellite fixes: eviction writebacks must go through ``flush_page``
(so ``buffer.flushes`` counts them and the clean-only-after-write guarantee
is shared, not duplicated), and ``new_page`` must not leak a freshly
allocated disk page when every frame is pinned.
"""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import BufferPoolError, FaultInjectionError
from repro.fault.disk import FaultyDisk
from repro.fault.injector import FaultInjector, FaultPlan
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk


def make_pool(capacity, plan=()):
    stats = StatsRegistry()
    disk = Disk(page_size=256, stats=stats)
    if plan:
        disk = FaultyDisk(disk, FaultInjector(plan, stats=stats))
    return BufferPool(disk, capacity=capacity), stats


class TestEvictionWriteback:
    def test_eviction_counts_as_flush(self):
        pool, stats = make_pool(capacity=1)
        page_id, data = pool.new_page()
        data[0] = 0xAB
        pool.unpin(page_id, dirty=True)
        assert stats.get("buffer.flushes") == 0
        # Allocating a second page evicts the first (dirty) one.
        other, _ = pool.new_page()
        pool.unpin(other, dirty=False)
        assert stats.get("buffer.evictions") == 1
        assert stats.get("buffer.flushes") == 1     # the regression
        assert stats.get("disk.page_writes") == 1
        assert not pool.resident(page_id)
        # The written-back image is the modified one.
        assert pool.fetch(page_id)[0] == 0xAB
        pool.unpin(page_id)

    def test_clean_eviction_does_not_flush(self):
        pool, stats = make_pool(capacity=1)
        page_id, _ = pool.new_page()
        pool.unpin(page_id, dirty=True)
        pool.flush_page(page_id)
        flushes = stats.get("buffer.flushes")
        other, _ = pool.new_page()          # evicts the now-clean page
        pool.unpin(other)
        assert stats.get("buffer.evictions") == 1
        assert stats.get("buffer.flushes") == flushes   # no extra write
        assert stats.get("disk.page_writes") == 1

    def test_failed_eviction_writeback_keeps_page_dirty_and_resident(self):
        # The shared clean-only-after-write guarantee: an injected write
        # failure during eviction must leave the dirty page in the pool so
        # a later flush retries it — no lost update, no false flush count.
        pool, stats = make_pool(capacity=1,
                                plan=[FaultPlan.fail_nth_write(1)])
        page_id, data = pool.new_page()
        data[0] = 0xCD
        pool.unpin(page_id, dirty=True)
        with pytest.raises(FaultInjectionError):
            pool.new_page()                 # eviction writeback fails
        assert pool.resident(page_id)
        assert pool.dirty_count() == 1
        assert stats.get("buffer.flushes") == 0
        # The injector only fails the first write: the retry succeeds.
        pool.flush_all()
        assert stats.get("buffer.flushes") == 1
        assert pool.dirty_count() == 0


class TestNewPageLeak:
    @pytest.mark.pinned_ok  # the pinned-full pool is the scenario under test
    def test_new_page_with_all_frames_pinned_leaks_no_disk_page(self):
        pool, _ = make_pool(capacity=1)
        pool.new_page()                     # stays pinned
        before = pool.disk.page_count
        with pytest.raises(BufferPoolError):
            pool.new_page()                 # no room: must not allocate
        assert pool.disk.page_count == before   # the regression

    def test_new_page_succeeds_after_unpin(self):
        pool, _ = make_pool(capacity=1)
        first, _ = pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.new_page()
        pool.unpin(first, dirty=True)
        second, _ = pool.new_page()
        assert second != first
        assert pool.disk.page_count == 2
        pool.unpin(second, dirty=True)
