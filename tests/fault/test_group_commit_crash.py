"""Crash matrix for the group-commit force path.

``wal.group.pre_flush`` fires with a window's COMMIT records appended but
none durable — every commit in that group must vanish on restart, and
none of them was acknowledged.  ``wal.group.post_flush`` fires right
after the force — every commit in the group must survive, even though no
acknowledgement ever reached a client.  Single-threaded runs make the
matrix deterministic (each commit leads its own group of one); the
threaded server test then proves the acknowledgement-side invariant under
real concurrency: **acknowledged ⊆ recovered ⊆ submitted**.
"""

import threading
from dataclasses import replace

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.errors import ReproError
from repro.fault import (CrashHarness, FaultPlan, database_digest,
                         recovered_commit_txns, verify_value_indexes)
from repro.fault.injector import FaultInjector, SimulatedCrash
from repro.rdb.wal import LogManager, LogOp
from repro.serve import DatabaseServer

CONFIG = EngineConfig(page_size=1024, buffer_pool_pages=64,
                      txn_group_commit=True, checkpoint_interval=0)

DOCS = [f"<a><b>{i}</b><c>text {i}</c></a>" for i in range(5)]


def setup_schema(db):
    db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
    db.create_xpath_index("ix_b", "t", "doc", "/a/b", "double")


class AckTracker:
    """Transaction ids whose ``commit()`` returned to the caller."""

    def __init__(self):
        self.acked = []
        self.submitted = []


def workload(tracker):
    def load(db):
        setup_schema(db)
        db.log.flush()  # harden the DDL; commits are what we crash around
        for i in range(len(DOCS)):
            txn = db.txns.begin()
            tracker.submitted.append(txn.txn_id)
            db.insert("t", (i, DOCS[i]), txn_id=txn.txn_id)
            txn.commit()
            tracker.acked.append(txn.txn_id)
    return load


def reference_database(n_docs):
    db = Database(CONFIG)
    setup_schema(db)
    db.log.flush()
    for i in range(n_docs):
        txn = db.txns.begin()
        db.insert("t", (i, DOCS[i]), txn_id=txn.txn_id)
        txn.commit()
    return db


# (crash point, hit, docs recovered). Single-threaded: force k belongs to
# txn k's commit, so pre_flush at hit k loses txn k's group (k-1 docs
# survive) while post_flush at hit k keeps it (k docs survive).
MATRIX = [
    ("wal.group.pre_flush", 1, 0),
    ("wal.group.pre_flush", 3, 2),
    ("wal.group.pre_flush", 5, 4),
    ("wal.group.post_flush", 1, 1),
    ("wal.group.post_flush", 3, 3),
    ("wal.group.post_flush", 5, 5),
]


class TestGroupCommitCrashMatrix:
    @pytest.mark.parametrize("point,hit,expected_docs", MATRIX,
                             ids=[f"{m[0]}-hit{m[1]}" for m in MATRIX])
    def test_recovers_exactly_the_acknowledged_prefix(self, tmp_path, point,
                                                      hit, expected_docs):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        tracker = AckTracker()
        outcome = harness.run(workload(tracker),
                              plan=[FaultPlan.crash_at(point, hit=hit)])
        assert outcome.crashed and outcome.point == point
        # The crashing commit never returned: post_flush recovers one more
        # doc (durable-but-unacknowledged) than any client saw acked.
        expected_acked = expected_docs - \
            (1 if point.endswith("post_flush") else 0)
        assert len(tracker.acked) == expected_acked
        recovered = harness.restart()
        reference = reference_database(expected_docs)
        assert database_digest(recovered) == database_digest(reference)
        verify_value_indexes(recovered)

    @pytest.mark.parametrize("point,hit,expected_docs", MATRIX,
                             ids=[f"{m[0]}-hit{m[1]}" for m in MATRIX])
    def test_acknowledged_subset_of_recovered(self, tmp_path, point, hit,
                                              expected_docs):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        tracker = AckTracker()
        harness.run(workload(tracker),
                    plan=[FaultPlan.crash_at(point, hit=hit)])
        recovered = recovered_commit_txns(harness.load_log())
        acked = set(tracker.acked)
        # No acknowledged commit is ever lost...
        assert acked <= recovered
        # ...and nothing outside the submitted set is ever manufactured.
        # pre_flush: the dying group was volatile, so recovery holds
        # exactly the acknowledged set; post_flush: the dying group
        # hardened without acks, so extras are submitted-but-unacked.
        assert recovered <= set(tracker.submitted)
        if point.endswith("pre_flush"):
            assert recovered == acked
        else:
            assert len(recovered) == len(acked) + 1

    def test_survivors_cannot_append_after_the_crash(self, tmp_path):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        tracker = AckTracker()
        outcome = harness.run(
            workload(tracker),
            plan=[FaultPlan.crash_at("wal.group.pre_flush", hit=3)])
        assert outcome.crashed
        # The crash halted the log: a surviving thread's append must
        # re-raise, not harden post-mortem state the crash already lost.
        with pytest.raises(SimulatedCrash):
            outcome.db.log.append(99, LogOp.BEGIN)


DOC = "<Product><Name>item {i}</Name><Price>{i}</Price></Product>"


class TestServerGroupCommitCrash:
    """Mid-group-commit crash under a live multi-session server."""

    def _run(self, point, tmp_path, clients=8):
        config = replace(CONFIG, serve_workers=4, serve_queue_limit=256,
                         txn_group_commit_window=0.02)
        injector = FaultInjector([FaultPlan.crash_at(point, hit=2)])
        db = Database(config, injector=injector)
        db.create_table("docs", [("key", "varchar"), ("doc", "xml")])
        acked, submitted = [], []
        lock = threading.Lock()
        server = DatabaseServer(db).start()

        def client(index):
            key = f"c{index}"
            with lock:
                submitted.append(key)
            try:
                with server.session() as session:
                    session.insert("docs", (key, DOC.format(i=index)))
                with lock:
                    acked.append(key)
            except (SimulatedCrash, ReproError):
                pass  # killed by the crash, shed, or server draining

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with pytest.raises(SimulatedCrash):
            server.shutdown(drain=True)
        # Harden what a real crash left: the durable log prefix.
        injector.disarm()
        wal_path = str(tmp_path / "server-crash.wal")
        db.log.save(wal_path)
        recovered_db = Database.replay(LogManager.load(wal_path), config)
        stored = {row[0] for _, row in
                  recovered_db.tables["docs"].scan_rids()} \
            if "docs" in recovered_db.tables else set()
        return set(acked), set(submitted), stored

    def test_pre_flush_crash_loses_only_unacknowledged(self, tmp_path):
        acked, submitted, stored = self._run("wal.group.pre_flush", tmp_path)
        assert acked <= stored  # no acknowledged commit lost
        assert stored <= submitted  # no phantom commit manufactured

    def test_post_flush_crash_keeps_the_hardened_group(self, tmp_path):
        acked, submitted, stored = self._run("wal.group.post_flush",
                                             tmp_path)
        assert acked <= stored
        assert stored <= submitted
        # The dying group hardened: at least one commit survived that no
        # client ever saw acknowledged (durable-but-unacked, the classic
        # group-commit outcome).
        assert stored
