"""Unit tests for fault plans, the injector, and the faulty disk wrapper."""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import ChecksumError, FaultInjectionError, StorageError
from repro.fault import FaultInjector, FaultPlan, FaultSpec, FaultyDisk
from repro.fault.injector import SimulatedCrash
from repro.rdb.buffer import BufferPool
from repro.rdb.pages import SlottedPage
from repro.rdb.storage import Disk

PAGE = 256


@pytest.fixture
def stats():
    return StatsRegistry()


def faulty(plan, stats, seed=0):
    injector = FaultInjector(plan, seed=seed, stats=stats)
    return FaultyDisk(Disk(page_size=PAGE, stats=stats), injector), injector


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor_strike", 1)

    def test_zero_occurrence_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.fail_nth_write(0)

    def test_crash_needs_point(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", 1)


class TestFailNthWrite:
    def test_exactly_nth_write_fails(self, stats):
        disk, injector = faulty([FaultPlan.fail_nth_write(2)], stats)
        a, b = disk.allocate_page(), disk.allocate_page()
        disk.write_page(a, b"a" * PAGE)  # write 1 fine
        with pytest.raises(FaultInjectionError):
            disk.write_page(b, b"b" * PAGE)  # write 2 injected
        disk.write_page(b, b"c" * PAGE)  # write 3 fine again
        assert disk.read_page(b) == b"c" * PAGE
        assert injector.injected == [("fail_write", "page 1")]
        assert stats.get("fault.injected") == 1

    def test_failed_write_leaves_page_intact(self, stats):
        disk, _ = faulty([FaultPlan.fail_nth_write(2)], stats)
        pid = disk.allocate_page()
        disk.write_page(pid, b"x" * PAGE)
        with pytest.raises(FaultInjectionError):
            disk.write_page(pid, b"y" * PAGE)
        assert disk.read_page(pid) == b"x" * PAGE  # old image, valid checksum


class TestTornWrite:
    def test_next_read_raises_checksum_error(self, stats):
        disk, _ = faulty([FaultPlan.torn_nth_write(2, keep_bytes=10)], stats)
        pid = disk.allocate_page()
        disk.write_page(pid, b"x" * PAGE)
        disk.write_page(pid, b"y" * PAGE)  # torn: only 10 bytes land
        with pytest.raises(ChecksumError):
            disk.read_page(pid)
        assert stats.get("disk.checksum_failures") == 1

    def test_torn_image_mixes_old_and_new(self, stats):
        disk, _ = faulty([FaultPlan.torn_nth_write(2, keep_bytes=10)], stats)
        pid = disk.allocate_page()
        disk.write_page(pid, b"x" * PAGE)
        disk.write_page(pid, b"y" * PAGE)
        raw = disk.raw_page(pid)
        assert raw[:10] == b"y" * 10 and raw[10:] == b"x" * (PAGE - 10)


class TestBitFlipRead:
    def test_flip_detected_not_silent(self, stats):
        disk, _ = faulty([FaultPlan.flip_bit_on_read(1)], stats, seed=5)
        pid = disk.allocate_page()
        disk.write_page(pid, b"q" * PAGE)
        with pytest.raises(ChecksumError):
            disk.read_page(pid)

    def test_deterministic_under_seed(self, stats):
        journals = []
        for _ in range(2):
            disk, injector = faulty([FaultPlan.flip_bit_on_read(1)],
                                    StatsRegistry(), seed=42)
            pid = disk.allocate_page()
            disk.write_page(pid, b"q" * PAGE)
            with pytest.raises(ChecksumError):
                disk.read_page(pid)
            journals.append(list(injector.injected))
        assert journals[0] == journals[1]

    def test_explicit_bit(self, stats):
        disk, injector = faulty([FaultPlan.flip_bit_on_read(1, bit=7)], stats)
        pid = disk.allocate_page()
        disk.write_page(pid, bytes(PAGE))
        with pytest.raises(ChecksumError):
            disk.read_page(pid)
        assert disk.raw_page(pid)[0] == 0x80


class TestCrashPoints:
    def test_crash_on_nth_hit(self, stats):
        injector = FaultInjector([FaultPlan.crash_at("engine.step", hit=3)],
                                 stats=stats)
        injector.hit("engine.step")
        injector.hit("engine.step")
        with pytest.raises(SimulatedCrash) as exc:
            injector.hit("engine.step")
        assert exc.value.point == "engine.step"
        assert stats.get("fault.crashes") == 1

    def test_mid_write_crash_tears_page(self, stats):
        disk, _ = faulty([FaultPlan.crash_at("disk.write.mid", hit=2)], stats)
        pid = disk.allocate_page()
        disk.write_page(pid, b"x" * PAGE)
        with pytest.raises(SimulatedCrash):
            disk.write_page(pid, b"y" * PAGE)
        with pytest.raises(ChecksumError):
            disk.read_page(pid)  # half old, half new, checksum of intended

    def test_disarm_stops_injection(self, stats):
        injector = FaultInjector([FaultPlan.crash_at("p", hit=1)],
                                 stats=stats)
        injector.disarm()
        injector.hit("p")  # no crash
        injector.arm()
        with pytest.raises(SimulatedCrash):
            injector.hit("p")

    def test_simulated_crash_escapes_except_exception(self, stats):
        injector = FaultInjector([FaultPlan.crash_at("p", hit=1)],
                                 stats=stats)
        with pytest.raises(SimulatedCrash):
            try:
                injector.hit("p")
            except Exception:  # engine-style blanket handler
                pytest.fail("SimulatedCrash must not be a plain Exception")


class TestFaultyDiskInterface:
    def test_buffer_pool_runs_unmodified_on_faulty_disk(self, stats):
        disk, _ = faulty([], stats)
        pool = BufferPool(disk, capacity=2)
        pid, data = pool.new_page()
        data[0] = 99
        pool.unpin(pid, dirty=True)
        pool.flush_all()
        assert disk.read_page(pid)[0] == 99

    def test_save_delegates(self, stats, tmp_path):
        disk, _ = faulty([], stats)
        pid = disk.allocate_page()
        disk.write_page(pid, b"z" * PAGE)
        path = str(tmp_path / "img")
        disk.save(path)
        reloaded = Disk.load(path)
        assert reloaded.read_page(pid) == b"z" * PAGE


class TestDiskChecksums:
    def test_corrupt_page_detected_on_load(self, stats, tmp_path):
        disk = Disk(page_size=PAGE, stats=stats)
        pid = disk.allocate_page()
        disk.write_page(pid, b"v" * PAGE)
        disk.corrupt_page(pid, b"w" * PAGE)
        path = str(tmp_path / "img")
        disk.save(path)
        with pytest.raises(ChecksumError):
            Disk.load(path)
        # Deferred verification still catches it on first read.
        lazy = Disk.load(path, verify=False)
        with pytest.raises(ChecksumError):
            lazy.read_page(pid)

    def test_clean_roundtrip_verifies(self, stats, tmp_path):
        disk = Disk(page_size=PAGE, stats=stats)
        pid = disk.allocate_page()
        disk.write_page(pid, bytes([3]) * PAGE)
        path = str(tmp_path / "img")
        disk.save(path)
        assert Disk.load(path).read_page(pid) == bytes([3]) * PAGE


class TestSlottedPageValidate:
    def test_clean_page_validates(self):
        page = SlottedPage.format(bytearray(PAGE))
        page.insert(b"hello")
        page.validate()

    def test_corrupt_free_end_detected(self):
        page = SlottedPage.format(bytearray(PAGE))
        page.insert(b"hello")
        page.data[2:4] = (PAGE + 100).to_bytes(2, "little")  # free_end wild
        with pytest.raises(StorageError):
            page.validate()

    def test_corrupt_slot_offset_detected(self):
        page = SlottedPage.format(bytearray(PAGE))
        slot = page.insert(b"hello")
        page._set_slot(slot, PAGE - 2, 10)  # runs off the page
        with pytest.raises(StorageError):
            page.validate()
