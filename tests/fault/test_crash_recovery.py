"""Crash-point matrix, torn-tail WAL, and checksum-detection tests.

The matrix runs one insert workload to a crash at six distinct points of
the commit path — around WAL appends, mid page write, around the COMMIT
record, and after a checkpoint — and asserts restart recovery restores
*exactly* the committed prefix, with value and DocID indexes consistent.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.core.stats import StatsRegistry
from repro.errors import RecoveryError
from repro.fault import (CrashHarness, FaultPlan, database_digest,
                         verify_value_indexes)
from repro.rdb.wal import LogManager, LogOp

CONFIG = EngineConfig(page_size=1024, buffer_pool_pages=64)

DOCS = [f"<a><b>{i}</b><c>text {i}</c></a>" for i in range(5)]


def setup_schema(db):
    db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
    db.create_xpath_index("ix_b", "t", "doc", "/a/b", "double")


def insert_one(db, i):
    txn = db.txns.begin()
    db.insert("t", (i, DOCS[i]), txn_id=txn.txn_id)
    txn.commit()


def workload(db):
    """DDL + five single-insert transactions (3 WAL appends each)."""
    setup_schema(db)
    for i in range(len(DOCS)):
        insert_one(db, i)


def workload_with_manual_checkpoint(db):
    """Three commits, a checkpoint (flushes pages!), two more commits."""
    setup_schema(db)
    for i in range(3):
        insert_one(db, i)
    db.checkpoint()
    for i in range(3, len(DOCS)):
        insert_one(db, i)


def reference_database(n_docs):
    """What a database holding exactly the first ``n_docs`` looks like."""
    db = Database(CONFIG)
    setup_schema(db)
    for i in range(n_docs):
        insert_one(db, i)
    return db


# (crash point, hit number, docs expected after recovery, workload).
# WAL appends: 2 DDL records, then BEGIN/INSERT/COMMIT per transaction,
# so transaction i (1-based) appends records 3i, 3i+1, 3i+2.
MATRIX = [
    ("wal.append.pre", 9, 2, workload),    # txn 3's BEGIN never hardened
    ("wal.append.post", 10, 2, workload),  # txn 3 began, INSERT hardened,
                                           # no COMMIT -> loser
    ("disk.write.mid", 1, 3, workload_with_manual_checkpoint),
                                           # torn page mid checkpoint flush
    ("wal.commit.pre", 3, 2, workload),    # 3rd COMMIT never hardened
    ("wal.commit.post", 3, 3, workload),   # 3rd COMMIT hardened: durable
                                           # even though commit() never
                                           # returned to the caller
    ("wal.checkpoint.post", 1, 3, workload_with_manual_checkpoint),
]


class TestCrashPointMatrix:
    @pytest.mark.parametrize("point,hit,expected_docs,load",
                             MATRIX, ids=[m[0] for m in MATRIX])
    def test_recovery_restores_committed_prefix(self, tmp_path, point, hit,
                                                expected_docs, load):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        outcome = harness.run(load, plan=[FaultPlan.crash_at(point, hit)])
        assert outcome.crashed and outcome.point == point
        recovered = harness.restart()
        assert database_digest(recovered) == \
            database_digest(reference_database(expected_docs))
        verify_value_indexes(recovered)
        hits = recovered.xpath("t", "doc", "/a/b")
        assert len(hits) == expected_docs

    def test_no_crash_when_plan_unused(self, tmp_path):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        outcome = harness.run(workload,
                              plan=[FaultPlan.crash_at("never.fires", 1)])
        assert not outcome.crashed
        recovered = harness.restart()
        assert database_digest(recovered) == \
            database_digest(reference_database(len(DOCS)))

    def test_mid_write_crash_tears_device_image(self, tmp_path):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        outcome = harness.run(workload_with_manual_checkpoint,
                              plan=[FaultPlan.crash_at("disk.write.mid", 1)])
        assert outcome.crashed
        # The torn page is caught by checksum verification on image load...
        from repro.errors import ChecksumError
        with pytest.raises(ChecksumError):
            harness.load_image(verify=True)
        # ...and recovery (WAL replay) is unaffected by the damaged image.
        recovered = harness.restart()
        verify_value_indexes(recovered)


class TestCheckpointRecovery:
    def test_analysis_starts_from_last_checkpoint(self, tmp_path):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        outcome = harness.run(workload_with_manual_checkpoint,
                              plan=[FaultPlan.crash_at("wal.commit.pre", 5)])
        assert outcome.crashed
        stats = StatsRegistry()
        log = LogManager.load(harness.wal_path, stats=stats)
        assert log.last_checkpoint_lsn() is not None
        recovered = Database.replay(log, CONFIG)
        assert stats.get("recovery.from_checkpoint") == 1
        # Commits 1-3 predate the checkpoint, commit 4 follows it.
        assert database_digest(recovered) == \
            database_digest(reference_database(4))

    def test_automatic_checkpoints_by_commit_count(self, tmp_path):
        config = CONFIG.with_(checkpoint_interval=2)
        harness = CrashHarness(str(tmp_path), config=config)
        outcome = harness.run(workload, plan=())
        assert not outcome.crashed
        checkpoints = [r for r in outcome.db.log.records()
                       if r.op is LogOp.CHECKPOINT]
        assert len(checkpoints) == 2  # after commits 2 and 4
        assert outcome.db.stats.get("wal.checkpoints") == 2

    def test_in_flight_txn_at_checkpoint_is_loser(self, tmp_path):
        """A txn active at checkpoint time that never commits must not
        resurface just because the analysis pass starts at the checkpoint."""
        def load(db):
            setup_schema(db)
            insert_one(db, 0)
            straggler = db.txns.begin()
            db.insert("t", (99, DOCS[1]), txn_id=straggler.txn_id)
            db.checkpoint()          # straggler is in the loser set
            insert_one(db, 2)
            # straggler never commits: crash before it can.

        harness = CrashHarness(str(tmp_path), config=CONFIG)
        harness.run(load, plan=())
        recovered = harness.restart()
        rows = sorted(row[0] for _, row in recovered.tables["t"].scan_rids())
        assert rows == [0, 2]
        verify_value_indexes(recovered)


class TestTornTailWal:
    def run_and_save(self, tmp_path):
        harness = CrashHarness(str(tmp_path), config=CONFIG)
        harness.run(workload, plan=())
        return harness

    def test_torn_tail_dropped_not_fatal(self, tmp_path):
        harness = self.run_and_save(tmp_path)
        full = harness.load_log()
        n_records = len(list(full.records()))
        harness.tear_log_tail(3)  # cut into the last record's body
        stats = StatsRegistry()
        torn = LogManager.load(harness.wal_path, stats=stats)
        assert len(list(torn.records())) == n_records - 1
        assert stats.get("recovery.torn_tail_dropped") == 1

    def test_torn_commit_record_loses_its_txn(self, tmp_path):
        harness = self.run_and_save(tmp_path)
        harness.tear_log_tail(3)  # final record is txn 5's COMMIT
        recovered = harness.restart()
        assert database_digest(recovered) == \
            database_digest(reference_database(4))
        verify_value_indexes(recovered)

    def test_torn_frame_header_dropped(self, tmp_path):
        harness = self.run_and_save(tmp_path)
        full_size = len(open(harness.wal_path, "rb").read())
        last_len = None
        # Cut so only part of the last record's 8-byte frame header remains.
        log = harness.load_log()
        last = list(log.records())[-1]
        last_len = len(last.encode())
        harness.tear_log_tail(last_len + 3)
        stats = StatsRegistry()
        torn = LogManager.load(harness.wal_path, stats=stats)
        assert stats.get("recovery.torn_tail_dropped") == 1
        assert len(list(torn.records())) == \
            len(list(log.records())) - 1
        assert full_size > last_len

    def test_loaded_log_reports_volume(self, tmp_path):
        """Satellite: a reloaded log must report its volume (E3 counters)."""
        harness = self.run_and_save(tmp_path)
        stats = StatsRegistry()
        loaded = LogManager.load(harness.wal_path, stats=stats)
        n_records = len(list(loaded.records()))
        assert n_records > 0
        assert stats.get("wal.records") == n_records
        assert stats.get("wal.bytes") == loaded.bytes_written > 0

    def test_mid_log_corruption_is_fatal(self, tmp_path):
        harness = self.run_and_save(tmp_path)
        with open(harness.wal_path, "r+b") as fh:
            fh.seek(10)  # inside the first record's body
            byte = fh.read(1)
            fh.seek(10)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(RecoveryError):
            LogManager.load(harness.wal_path)

    def test_aborted_txns_tracked_through_reload(self, tmp_path):
        def load(db):
            setup_schema(db)
            insert_one(db, 0)
            txn = db.txns.begin()
            db.insert("t", (9, DOCS[1]), txn_id=txn.txn_id)
            txn.abort()
            insert_one(db, 2)

        harness = CrashHarness(str(tmp_path), config=CONFIG)
        harness.run(load, plan=())
        reloaded = harness.load_log()
        assert len(reloaded.aborted_txns) == 1
        recovered = Database.replay(reloaded, CONFIG)
        rows = sorted(row[0] for _, row in recovered.tables["t"].scan_rids())
        assert rows == [0, 2]
