"""``Database.close()`` must retry a failed shutdown checkpoint.

A fault injected into the checkpoint's page flush makes the first
``close()`` raise — and because the engine only marks itself closed
*after* the checkpoint succeeds, a later ``close()`` must retry the
whole quiesce (flush the still-dirty pages, write the CHECKPOINT
record) rather than no-op with the shutdown half done.
"""

from dataclasses import replace

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.errors import FaultInjectionError
from repro.fault.injector import FaultInjector, FaultPlan

DOC = "<Product><Name>item {i}</Name><Price>{i}</Price></Product>"


def make_db(plan=(), **overrides):
    config = replace(DEFAULT_CONFIG, checkpoint_interval=0, **overrides)
    db = Database(config, injector=FaultInjector(plan) if plan else None)
    db.create_table("docs", [("key", "varchar"), ("doc", "xml")])
    return db


def seed_rows(db, count=3):
    def body(database, txn):
        for i in range(count):
            database.insert("docs", (f"k{i}", DOC.format(i=i)),
                            txn_id=txn.txn_id)

    db.run_in_txn(body)


class TestCloseRetry:
    def test_close_retries_checkpoint_after_injected_flush_failure(self):
        # Nothing has been evicted before close (tiny workload, ample
        # pool), so the first physical page write is the shutdown
        # checkpoint's flush — which the plan fails exactly once.
        db = make_db(plan=[FaultPlan.fail_nth_write(1)])
        seed_rows(db)
        dirty_before = db.pool.dirty_count()
        assert dirty_before > 0
        with pytest.raises(FaultInjectionError):
            db.close()
        # The failed close is not sticky: pages are still dirty, no
        # CHECKPOINT record was logged, and the engine is not closed.
        assert db.pool.dirty_count() == dirty_before
        assert db.stats.get("wal.checkpoints") == 0
        assert not getattr(db, "_closed", False)
        # The spec was one-shot, so the retry completes the shutdown.
        db.close()
        assert db.pool.dirty_count() == 0
        assert db.stats.get("wal.checkpoints") == 1
        assert getattr(db, "_closed", False)
        db.close()  # and stays idempotent afterwards
        assert db.stats.get("wal.checkpoints") == 1

    def test_no_flushes_lost_after_retried_close(self):
        db = make_db(plan=[FaultPlan.fail_nth_write(1)])
        seed_rows(db)
        with pytest.raises(FaultInjectionError):
            db.close()
        db.close()
        # Every page the engine dirtied reached the disk on the retry:
        # a cold read-back (straight from the disk image, no pool) of
        # every table page matches the in-pool contents.
        for page_id in range(db.disk.page_count):
            assert bytes(db.disk.read_page(page_id)) == \
                bytes(db.pool.fetch(page_id)), f"page {page_id} stale"
            db.pool.unpin(page_id)

    def test_context_manager_exit_propagates_checkpoint_failure(self):
        with pytest.raises(FaultInjectionError):
            with make_db(plan=[FaultPlan.fail_nth_write(1)]) as db:
                seed_rows(db)
        # __exit__ called close(), the fault fired, and the engine is
        # still open — the caller decides whether to retry.
        assert not getattr(db, "_closed", False)
        db.close()
        assert db.stats.get("wal.checkpoints") == 1
