"""Smoke tests for the example scripts and the workload generators."""

import pathlib
import runpy

import pytest

from repro.workload.generator import (catalog_document, employee_rows,
                                      figure6_document, random_tree,
                                      recursive_document, wide_document)
from repro.xdm.events import build_tree
from repro.xdm.parser import parse

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


class TestExamples:
    def test_examples_present(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
    def test_example_runs(self, script, capsys):
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{script.name} printed nothing"


class TestGenerators:
    def test_catalog_document_well_formed(self):
        doc = catalog_document(10, seed=1)
        tree = build_tree(parse(doc))
        products = tree.document_element().elements("Categories")[0] \
            .elements("Product")
        assert len(products) == 10
        for product in products:
            float(product.elements("RegPrice")[0].string_value())
            float(product.elements("Discount")[0].string_value())

    def test_catalog_deterministic(self):
        assert catalog_document(5, seed=7) == catalog_document(5, seed=7)
        assert catalog_document(5, seed=7) != catalog_document(5, seed=8)

    def test_recursive_document(self):
        doc = recursive_document(10)
        assert doc.count("<a>") == 10
        build_tree(parse(doc))

    def test_figure6_document_selectivity(self):
        from repro.workload.queries import FIGURE6_QUERY
        from repro.xpath.quickxscan import evaluate
        doc = figure6_document(100, seed=2, xml_fraction=1.0,
                               heavy_fraction=1.0)
        matches = evaluate(FIGURE6_QUERY, parse(doc).events())
        assert len(matches) == 100  # all blocks qualify
        doc = figure6_document(100, seed=2, xml_fraction=0.0)
        assert evaluate(FIGURE6_QUERY, parse(doc).events()) == []

    def test_random_tree_size(self):
        doc = random_tree(200, seed=3)
        tree = build_tree(parse(doc))
        n_elements = sum(1 for n in tree.descendants_or_self()
                         if n.kind.value == "element")
        assert abs(n_elements - 201) <= 1

    def test_wide_document(self):
        doc = wide_document(50)
        tree = build_tree(parse(doc))
        assert len(tree.document_element().elements("row")) == 50

    def test_employee_rows(self):
        rows = employee_rows(20, seed=4)
        assert len(rows) == 20
        assert all(len(row) == 4 for row in rows)
        assert rows == employee_rows(20, seed=4)
