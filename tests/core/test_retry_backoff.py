"""Victim-retry backoff: jittered, deterministic, charged, deadline-capped."""

import time
from dataclasses import replace

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.deadline import Deadline
from repro.core.engine import Database
from repro.errors import DeadlineExceededError, DeadlockError


def make_db(**overrides):
    settings = {"checkpoint_interval": 0, "txn_retry_backoff_base": 0.004,
                "txn_retry_backoff_cap": 0.016}
    settings.update(overrides)
    config = replace(DEFAULT_CONFIG, **settings)
    return Database(config)


def failing_body(times):
    """A txn body that loses a deadlock ``times`` times, then succeeds."""
    remaining = [times]

    def body(db, txn):
        if remaining[0] > 0:
            remaining[0] -= 1
            raise DeadlockError("synthetic victim")
        return "done"

    return body


def capture_sleeps(db):
    slept = []
    db.backoff_sleep = slept.append
    return slept


class TestJitteredBackoff:
    def test_delays_follow_jittered_exponential_schedule(self):
        db = make_db()
        slept = capture_sleeps(db)
        assert db.run_in_txn(failing_body(3), retries=5) == "done"
        assert len(slept) == 3
        base, cap = 0.004, 0.016
        for index, delay in enumerate(slept):
            envelope = min(cap, base * (2 ** index))
            assert envelope * 0.5 <= delay < envelope * 1.5

    def test_same_seed_same_delays(self):
        runs = []
        for _ in range(2):
            db = make_db(txn_retry_jitter_seed=42)
            slept = capture_sleeps(db)
            db.run_in_txn(failing_body(4), retries=5)
            runs.append(slept)
        assert runs[0] == runs[1]
        other = make_db(txn_retry_jitter_seed=43)
        slept = capture_sleeps(other)
        other.run_in_txn(failing_body(4), retries=5)
        assert slept != runs[0]

    def test_backoff_disabled_when_base_is_zero(self):
        db = make_db(txn_retry_backoff_base=0.0)
        slept = capture_sleeps(db)
        db.run_in_txn(failing_body(2), retries=5)
        assert slept == []
        assert db.stats.get("txn.retries") == 2

    def test_backoff_charged_to_accounting_record(self):
        db = make_db(txn_retry_jitter_seed=7)
        slept = capture_sleeps(db)
        db.run_in_txn(failing_body(2), retries=5)
        record = db.txns.accounting.records()[-1]
        assert record.outcome == "committed"
        assert record.retries == 2
        assert len(record.victim_attempts) == 2
        charged = record.counters["txn.retry_backoff_us"]
        assert charged == sum(int(delay * 1_000_000) for delay in slept)
        assert record.counters["txn.retries"] == 2
        # The global counter reconciles with the per-txn charge.
        assert db.stats.get("txn.retry_backoff_us") == charged

    def test_deadline_caps_backoff_delay(self):
        db = make_db()
        slept = []
        # A sleeping stub: real time must pass for the deadline to bite.
        db.backoff_sleep = lambda delay: (slept.append(delay),
                                          time.sleep(delay)) and None
        # Plenty of deadline to start, but far less than the ~2-6ms first
        # backoff: the clamped sleep must fit the remaining budget, and
        # once the budget is spent the retry loop stops with the typed
        # deadline error rather than burning the remaining attempts.
        deadline = Deadline.after(0.001)
        with pytest.raises(DeadlineExceededError):
            db.run_in_txn(failing_body(10), retries=10, deadline=deadline)
        assert slept, "expected at least one capped backoff sleep"
        assert all(delay <= 0.001 for delay in slept)

    def test_expired_deadline_beats_retry(self):
        """Once the deadline expires, retrying stops even with budget left."""
        db = make_db()
        db.backoff_sleep = lambda delay: None
        deadline = Deadline.expired_deadline()
        with pytest.raises(DeadlineExceededError):
            db.run_in_txn(failing_body(10), retries=10, deadline=deadline)
        # The deadline was checked before any attempt began.
        assert db.stats.get("txn.begun") == 0
