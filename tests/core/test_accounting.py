"""Histograms, per-transaction accounting, and the shutdown/undo fixes.

The accounting invariant under test is the DB2 accounting-trace contract:
every committed or aborted transaction yields exactly one
:class:`~repro.rdb.txn.AccountingRecord`, and the records' counter deltas
sum to the registry's global deltas for work done inside transactions.
"""

from collections import Counter

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.core.stats import HISTOGRAMS, METRICS, Histogram, StatsRegistry
from repro.errors import FaultInjectionError, LockTimeoutError
from repro.rdb.locks import LockMode


def summed(records) -> Counter:
    total: Counter = Counter()
    for record in records:
        total.update(record.counters)
    return total


def txn_visible(deltas: dict) -> dict:
    """Drop meta-counters bumped outside any charge context.

    ``obs.*`` and ``sanitize.*`` are observation machinery, not
    transaction work; the registry never charges them to accounting
    records (sanitized runs must reconcile identically to plain runs).
    """
    return {name: value for name, value in deltas.items()
            if value and not name.startswith(("obs.", "sanitize."))}


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for value in (0, 1, 2, 3, 4, 5, 1000):
            h.observe(value)
        assert h.count == 7
        assert h.sum == 1015
        assert h.max == 1000
        # 0 and 1 share bucket <=1; 2 is <=2; 3 and 4 are <=4; 5 is <=8.
        assert h.buckets() == [(1, 2), (2, 1), (4, 2), (8, 1), (1024, 1)]

    def test_cumulative_and_quantiles(self):
        h = Histogram()
        for value in (1, 1, 1, 8, 64):
            h.observe(value)
        assert h.cumulative_buckets() == [(1, 3), (8, 4), (64, 5)]
        assert h.quantile(0.5) == 1
        assert h.quantile(0.9) == 64
        assert Histogram().quantile(0.5) == 0

    def test_negative_values_clamp_to_zero(self):
        h = Histogram()
        h.observe(-5)
        assert h.sum == 0 and h.max == 0
        assert h.buckets() == [(1, 1)]

    def test_registry_creates_on_first_observe(self):
        stats = StatsRegistry()
        assert stats.histogram("btree.search_entries") is None
        stats.observe("btree.search_entries", 3)
        h = stats.histogram("btree.search_entries")
        assert h is not None and h.count == 1
        stats.reset()
        assert stats.histograms() == {}

    def test_registries_are_disjoint(self):
        # A histogram name colliding with a counter name would make the
        # Prometheus exposition emit the same series twice.
        assert not METRICS & HISTOGRAMS


class TestHotPathHistograms:
    def test_engine_workload_populates_hot_path_histograms(self):
        db = Database()
        db.create_table("t", [("n", "bigint"), ("doc", "xml")])
        for i in range(6):
            db.insert("t", (i, f"<a><b n='{i}'>x</b></a>"))
        db.xpath("t", "doc", "/a/b")
        names = set(db.stats.histograms())
        assert {"btree.search_entries", "xscan.doc_events",
                "xscan.doc_peak_units", "wal.record_bytes"} <= names
        assert names <= HISTOGRAMS

    def test_lock_wait_steps_histogram(self):
        db = Database(EngineConfig(lock_wait_budget=4))
        holder = db.txns.begin()
        holder.lock(("r",), LockMode.X)
        # Fast path: an uncontended acquire observes zero wait steps.
        h = db.stats.histogram("lock.acquire_wait_steps")
        assert h is not None and h.count >= 1 and h.buckets()[0][0] == 1
        waiter = db.txns.begin()
        with pytest.raises(LockTimeoutError):
            waiter.lock(("r",), LockMode.X)
        holder.commit()
        waiter.lock(("r",), LockMode.X)  # now free: waited = 0 again
        waiter.commit()

    def test_eviction_residency_histogram(self):
        db = Database(EngineConfig(buffer_pool_pages=8))
        db.create_table("t", [("doc", "xml")])
        for i in range(30):
            db.insert("t", (f"<a>{'y' * 3000}</a>",))
        assert db.stats.get("buffer.evictions") > 0
        h = db.stats.histogram("buffer.eviction_residency")
        assert h is not None
        assert h.count == db.stats.get("buffer.evictions")


class TestChargeSinks:
    def test_charge_mirrors_adds(self):
        stats = StatsRegistry()
        sink: Counter = Counter()
        stats.add("wal.records")
        with stats.charge(sink):
            stats.add("wal.records", 2)
        stats.add("wal.records")
        assert sink == {"wal.records": 2}
        assert stats.get("wal.records") == 4

    def test_inner_sink_wins(self):
        stats = StatsRegistry()
        outer: Counter = Counter()
        inner: Counter = Counter()
        with stats.charge(outer):
            stats.add("buffer.hits")
            with stats.charge(inner):
                stats.add("buffer.hits")
            with stats.charge(None):  # suspend attribution
                stats.add("buffer.hits")
            stats.add("buffer.hits")
        assert outer == {"buffer.hits": 2}
        assert inner == {"buffer.hits": 1}


class TestAccountingRecords:
    def test_one_record_per_txn_and_deltas_sum_to_global(self):
        db = Database()
        db.create_table("t", [("n", "bigint"), ("doc", "xml")])
        emitted_before = db.txns.accounting.emitted
        with db.stats.delta() as deltas:
            db.run_in_txn(lambda eng, txn: eng.insert(
                "t", (1, "<a>one</a>"), txn_id=txn.txn_id))
            db.run_in_txn(lambda eng, txn: eng.insert(
                "t", (2, "<a>two</a>"), txn_id=txn.txn_id))
            loser = db.txns.begin()
            db.insert("t", (3, "<a>three</a>"), txn_id=loser.txn_id)
            loser.abort()
        records = db.txns.accounting.records()
        new = records[-(db.txns.accounting.emitted - emitted_before):]
        assert len(new) == 3
        assert [r.outcome for r in new] == ["committed", "committed",
                                            "aborted"]
        assert dict(summed(new)) == txn_visible(deltas)

    def test_headline_figures_match_counters(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        db.run_in_txn(lambda eng, txn: eng.insert(
            "t", ("<a>payload</a>",), txn_id=txn.txn_id))
        record = db.txns.accounting.records()[-1]
        assert record.outcome == "committed"
        assert record.isolation == "cs"
        assert record.wal_records == record.counters.get("wal.records", 0) > 0
        assert record.wal_bytes == record.counters.get("wal.bytes", 0) > 0
        assert record.to_dict()["txn_id"] == record.txn_id

    def test_ring_buffer_wraps_but_counts_lifetime(self):
        db = Database(EngineConfig(accounting_ring_size=2))
        for _ in range(5):
            db.txns.begin().commit()
        assert len(db.txns.accounting) == 2
        assert db.txns.accounting.emitted == 5
        assert db.stats.get("obs.accounting_records") == 5


class TestRetryFolding:
    def _contended_db(self):
        db = Database(EngineConfig(lock_wait_budget=4))
        db.create_table("t", [("doc", "xml")])
        return db

    def test_retries_fold_into_one_record(self):
        db = self._contended_db()
        blocker = db.txns.begin()
        blocker.lock(("doc", "t", 99), LockMode.X)
        attempts: list[int] = []
        emitted_before = db.txns.accounting.emitted

        def body(eng, txn):
            attempts.append(txn.txn_id)
            if len(attempts) == 1:
                txn.lock(("doc", "t", 99), LockMode.S)  # times out
            eng.insert("t", ("<a/>",), txn_id=txn.txn_id)
            return txn.txn_id

        with db.stats.delta() as deltas:
            final_txn = db.run_in_txn(body)
        assert len(attempts) == 2
        # Exactly one record for the logical transaction: the victim
        # attempt's record was retracted and folded into the final one.
        new = db.txns.accounting.emitted - emitted_before
        assert new == 1
        record = db.txns.accounting.records()[-1]
        blocker.commit()
        assert record.txn_id == final_txn
        assert record.outcome == "committed"
        assert record.retries == 1
        assert record.victim_attempts == (attempts[0],)
        # Folded counters carry both attempts' charged work: the victim's
        # BEGIN/ABORT records plus the final attempt's BEGIN/COMMIT/INSERT.
        assert record.counters["wal.records"] >= 4
        assert record.counters["txn.aborts"] == 1
        assert record.counters["txn.retries"] == 1
        # And the whole story still sums to the global deltas (the blocker
        # txn is still active, so only the retried txn did charged work in
        # the window).
        assert dict(summed([record])) == txn_visible(deltas)

    def test_exhausted_retries_leave_aborted_record(self):
        db = self._contended_db()
        blocker = db.txns.begin()
        blocker.lock(("doc", "t", 1), LockMode.X)

        def body(eng, txn):
            txn.lock(("doc", "t", 1), LockMode.S)

        with pytest.raises(LockTimeoutError):
            db.run_in_txn(body, retries=1)
        record = db.txns.accounting.records()[-1]
        blocker.commit()
        assert record.outcome == "aborted"
        assert record.retries == 1
        assert len(record.victim_attempts) == 1


class TestSatelliteFixes:
    def test_delete_row_is_undone_on_abort(self):
        db = Database()
        db.create_table("t", [("n", "bigint"), ("doc", "xml")])
        rid = db.insert("t", (7, "<a><b>keep me</b></a>"))
        txn = db.txns.begin()
        db.delete_row("t", rid, txn_id=txn.txn_id)
        assert db.tables["t"].row_count == 0
        txn.abort()
        # The live engine state has the row and its document back, not
        # just the replayed log.
        assert db.tables["t"].row_count == 1
        results = db.xpath("t", "doc", "/a/b")
        assert len(results) == 1
        assert results[0].row[0] == 7
        assert "keep me" in db.get_document("t", "doc", results[0].docid)

    def test_delete_row_commit_still_deletes(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        rid = db.insert("t", ("<a/>",))
        txn = db.txns.begin()
        db.delete_row("t", rid, txn_id=txn.txn_id)
        txn.commit()
        assert db.tables["t"].row_count == 0
        assert db.xpath("t", "doc", "/a") == []

    def test_close_retries_after_failed_checkpoint(self, monkeypatch):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        db.insert("t", ("<a/>",))
        calls = {"n": 0}
        original = db.txns.checkpoint

        def failing_checkpoint():
            calls["n"] += 1
            if calls["n"] == 1:
                raise FaultInjectionError("checkpoint torn")
            original()

        monkeypatch.setattr(db.txns, "checkpoint", failing_checkpoint)
        with pytest.raises(FaultInjectionError):
            db.close()
        # The failed close must NOT have latched the closed flag ...
        assert not getattr(db, "_closed", False)
        db.close()  # ... so the retry really checkpoints
        assert calls["n"] == 2
        assert db.stats.get("wal.checkpoints") == 1
        db.close()  # idempotent once genuinely closed
        assert calls["n"] == 2
