"""Engine-level transaction and crash/restart tests."""

from repro.core.engine import Database
from repro.rdb.locks import LockMode
from repro.rdb.wal import LogManager


class TestTransactionalInserts:
    def test_abort_undoes_insert(self):
        db = Database()
        db.create_table("t", [("n", "bigint"), ("doc", "xml")])
        db.insert("t", (1, "<a>keep</a>"))
        txn = db.txns.begin()
        db.insert("t", (2, "<a>rollback</a>"), txn_id=txn.txn_id)
        assert db.tables["t"].row_count == 2
        txn.abort()
        assert db.tables["t"].row_count == 1
        # The XML document and its index entries are gone too.
        assert len(db.xpath("t", "doc", "/a")) == 1

    def test_abort_undoes_value_index_entries(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        db.create_xpath_index("ix", "t", "doc", "/a/v", "double")
        txn = db.txns.begin()
        db.insert("t", ("<a><v>7</v></a>",), txn_id=txn.txn_id)
        txn.abort()
        assert db.value_indexes["ix"].entry_count == 0

    def test_commit_keeps_insert(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        txn = db.txns.begin()
        db.insert("t", ("<a/>",), txn_id=txn.txn_id)
        txn.commit()
        assert db.tables["t"].row_count == 1

    def test_txn_locking_between_sessions(self):
        db = Database()
        writer = db.txns.begin()
        writer.lock(("doc", "doc", 1), LockMode.X)
        reader = db.txns.begin()
        assert not reader.try_lock(("doc", "doc", 1), LockMode.S)
        writer.commit()
        assert reader.try_lock(("doc", "doc", 1), LockMode.S)
        reader.commit()


class TestCrashRestart:
    def test_log_file_roundtrip_recovery(self, tmp_path):
        """Full crash simulation: harden the log to a file, rebuild from it."""
        db = Database()
        db.create_table("t", [("n", "bigint"), ("doc", "xml")])
        db.create_xpath_index("ix", "t", "doc", "/a/v", "double")
        for i in range(5):
            db.insert("t", (i, f"<a><v>{i * 10}</v></a>"))
        loser = db.txns.begin()
        db.insert("t", (99, "<a><v>5</v></a>"), txn_id=loser.txn_id)
        # Crash: the loser never commits; only the log file survives.
        log_path = str(tmp_path / "wal.log")
        db.log.save(log_path)

        recovered = Database.replay(LogManager.load(log_path))
        assert recovered.tables["t"].row_count == 5
        original = {(r.docid, r.node_id)
                    for r in db.xpath("t", "doc", "/a[v >= 20]")}
        replayed = {(r.docid, r.node_id)
                    for r in recovered.xpath("t", "doc", "/a[v >= 20]")}
        # DocIDs/NodeIDs reproduce exactly (deterministic placement), minus
        # nothing — the loser's row never matched the predicate anyway.
        assert replayed == original
        # DocID sequence continues past recovery without collisions.
        recovered.insert("t", (6, "<a><v>60</v></a>"))
        assert len(recovered.xpath("t", "doc", "/a[v = 60]")) == 1

    def test_docid_sequence_survives_deletes_and_recovery(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        rid = db.insert("t", ("<a>first</a>",))
        db.delete_row("t", rid)
        db.insert("t", ("<a>second</a>",))
        recovered = Database.replay(db.log)
        docs = recovered.xpath("t", "doc", "/a")
        assert len(docs) == 1
        assert recovered.get_document("t", "doc", docs[0].docid) \
            == "<a>second</a>"
