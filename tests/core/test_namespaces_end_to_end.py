"""Namespace handling across the full stack: parse → pack → store →
traverse → query → serialize."""

from repro.core.engine import Database
from repro.xdm.events import build_tree
from repro.xdm.parser import parse
from repro.xdm.serializer import serialize

DOC = ('<cat:catalog xmlns:cat="urn:catalog" xmlns="urn:default">'
       '<cat:product code="1"><name>Widget</name></cat:product>'
       '<cat:product code="2"><name>Gadget</name></cat:product>'
       '</cat:catalog>')


class TestNamespaceRoundtrips:
    def test_default_ns_undeclaration(self):
        text = '<a xmlns="urn:u"><b xmlns=""><c/></b></a>'
        tree = build_tree(parse(text))
        root = tree.document_element()
        inner = root.elements()[0]
        assert root.uri == "urn:u"
        assert inner.uri == ""
        assert inner.elements()[0].uri == ""
        # Roundtrip through the serializer preserves the undeclaration.
        again = build_tree(parse(serialize(tree)))
        assert again.document_element().elements()[0].uri == ""

    def test_storage_roundtrip_preserves_uris(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        db.insert("t", (DOC,))
        stored = db.get_document("t", "doc", 1)
        tree = build_tree(parse(stored))
        root = tree.document_element()
        assert root.uri == "urn:catalog"
        assert all(p.uri == "urn:catalog" for p in root.elements())
        assert all(p.elements()[0].uri == "urn:default"
                   for p in root.elements())

    def test_namespaced_xpath_query(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        db.insert("t", (DOC,))
        hits = db.xpath("t", "doc", "/c:catalog/c:product",
                        namespaces={"c": "urn:catalog"})
        assert len(hits) == 2
        # Unprefixed names use no-namespace semantics: no match here.
        assert db.xpath("t", "doc", "/catalog/product") == []
        # The default-namespace children need their own prefix binding.
        hits = db.xpath("t", "doc", "//d:name",
                        namespaces={"d": "urn:default"})
        assert [h.match.item.value for h in hits] == ["Widget", "Gadget"]

    def test_namespaced_value_index(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        db.create_xpath_index("ix", "t", "doc", "//c:product/@code",
                              "bigint", namespaces={"c": "urn:catalog"})
        db.insert("t", (DOC,))
        assert db.value_indexes["ix"].entry_count == 2
        plan = db.plan_xpath("t", "doc",
                             "//c:product[@code = 2]",
                             namespaces={"c": "urn:catalog"})
        from repro.query.plan import AccessMethod
        assert plan.method is not AccessMethod.FULL_SCAN
        hits = db.xpath("t", "doc", "//c:product[@code = 2]",
                        namespaces={"c": "urn:catalog"})
        assert len(hits) == 1

    def test_wildcard_ignores_namespace(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        db.insert("t", (DOC,))
        hits = db.xpath("t", "doc", "/*/*")
        assert len(hits) == 2  # both products, any namespace
