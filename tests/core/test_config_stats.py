"""Unit tests for engine configuration and the stats registry."""

import pytest

from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.stats import GLOBAL_STATS, StatsRegistry


class TestConfig:
    def test_defaults(self):
        assert DEFAULT_CONFIG.page_size == 4096
        assert DEFAULT_CONFIG.record_size_limit == 1024

    def test_with_returns_copy(self):
        tweaked = DEFAULT_CONFIG.with_(record_size_limit=64)
        assert tweaked.record_size_limit == 64
        assert DEFAULT_CONFIG.record_size_limit == 1024
        assert tweaked.page_size == DEFAULT_CONFIG.page_size

    def test_frozen(self):
        with pytest.raises((AttributeError, TypeError)):
            DEFAULT_CONFIG.page_size = 1  # type: ignore[misc]

    def test_config_drives_engine(self):
        from repro.core.engine import Database
        db = Database(EngineConfig(page_size=2048, record_size_limit=64))
        assert db.disk.page_size == 2048
        db.create_table("t", [("doc", "xml")])
        assert db.xml_stores[("t", "doc")].record_limit == 64


class TestStats:
    def test_counters(self):
        stats = StatsRegistry()
        stats.add("x")
        stats.add("x", 4)
        assert stats.get("x") == 5
        assert stats.get("missing") == 0

    def test_gauges_high_water(self):
        stats = StatsRegistry()
        stats.set_high_water("peak", 10)
        stats.set_high_water("peak", 3)
        stats.set_high_water("peak", 12)
        assert stats.gauge("peak") == 12

    def test_delta_context(self):
        stats = StatsRegistry()
        stats.add("io", 5)
        with stats.delta() as delta:
            stats.add("io", 3)
            stats.add("new", 1)
        assert delta == {"io": 3, "new": 1}
        assert stats.get("io") == 8

    def test_delta_ignores_zero_changes(self):
        stats = StatsRegistry()
        stats.add("io")
        with stats.delta() as delta:
            pass
        assert delta == {}

    def test_reset(self):
        stats = StatsRegistry()
        stats.add("a")
        stats.set_high_water("b", 2)
        stats.reset()
        assert stats.get("a") == 0
        assert stats.gauge("b") == 0

    def test_snapshot_namespaces_gauges(self):
        stats = StatsRegistry()
        stats.add("a", 2)
        stats.set_high_water("b", 7)
        snap = stats.snapshot()
        assert snap == {"a": 2, "gauge:b": 7}

    def test_snapshot_gauge_never_clobbers_counter(self):
        # Regression: a gauge sharing a counter's name used to silently
        # overwrite the counter in snapshot().
        stats = StatsRegistry()
        stats.add("xscan.peak_units", 100)
        stats.set_high_water("xscan.peak_units", 3)
        snap = stats.snapshot()
        assert snap["xscan.peak_units"] == 100
        assert snap["gauge:xscan.peak_units"] == 3
        # Both round-trip independently of insertion order.
        stats2 = StatsRegistry()
        stats2.set_high_water("x", 9)
        stats2.add("x", 1)
        assert stats2.snapshot() == {"x": 1, "gauge:x": 9}

    def test_counters_excludes_gauges(self):
        stats = StatsRegistry()
        stats.add("a", 2)
        stats.set_high_water("b", 7)
        assert stats.counters() == {"a": 2}

    def test_global_registry_exists(self):
        assert isinstance(GLOBAL_STATS, StatsRegistry)

    def test_engines_have_isolated_stats(self):
        from repro.core.engine import Database
        a, b = Database(), Database()
        a.create_table("t", [("doc", "xml")])
        a.insert("t", ("<x/>",))
        assert b.stats.get("disk.page_writes") == 0
