"""Background checkpointer/lazy-writer tests.

The :class:`Checkpointer` must trickle old dirty pages to disk between
requests, run threshold-crossing checkpoints on its own thread (the
committing thread just posts a request), and interleave with concurrent
request workers without tripping any runtime sanitizer.
"""

import threading
import time
from dataclasses import replace

import pytest

from repro.analyze import sanitize
from repro.core.checkpointer import Checkpointer
from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.errors import FaultInjectionError
from repro.fault.harness import verify_value_indexes
from repro.serve import DatabaseServer

DOC = "<Product><Name>item {i}</Name><Price>{i}</Price></Product>"


@pytest.fixture
def armed():
    """Arm the sanitizers for one test (the suite conftest restores state)."""
    sanitize.enable()
    sanitize.reset_witness()
    yield
    sanitize.reset_witness()


def make_db(**overrides):
    overrides.setdefault("checkpoint_interval", 0)
    config = replace(DEFAULT_CONFIG, **overrides)
    db = Database(config)
    db.create_table("docs", [("key", "varchar"), ("doc", "xml")])
    return db


def insert_docs(db, count, offset=0):
    for i in range(offset, offset + count):
        db.run_in_txn(lambda eng, txn, i=i: eng.insert(
            "docs", (f"k{i}", DOC.format(i=i)), txn_id=txn.txn_id))


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestTrickle:
    def test_trickles_old_dirty_pages_between_requests(self):
        db = make_db()
        insert_docs(db, 12)
        before = db.pool.dirty_count()
        assert before > 0
        ckpt = Checkpointer(db, interval=0.001, trickle_pages=4)
        ckpt.start()
        assert wait_for(lambda: db.stats.get("ckpt.trickle_pages") > 0)
        ckpt.stop()
        assert ckpt.error is None
        assert db.pool.dirty_count() < before
        hist = db.stats.histogram("ckpt.trickle_batch")
        assert hist is not None and hist.count > 0
        assert hist.max <= 4  # batches respect the trickle cap

    def test_trickle_forces_the_log_first(self):
        # WAL rule: with group commit the tail is volatile; the lazy
        # writer must not push a dirty page describing a volatile update.
        db = make_db(txn_group_commit=True)
        insert_docs(db, 4)
        ckpt = Checkpointer(db, interval=0.001, trickle_pages=8)
        ckpt.start()
        assert wait_for(lambda: db.stats.get("ckpt.trickle_pages") > 0)
        ckpt.stop()
        assert ckpt.error is None
        assert db.log.unflushed_count == 0

    def test_start_and_stop_are_idempotent(self):
        db = make_db()
        ckpt = Checkpointer(db, interval=0.001)
        ckpt.start()
        ckpt.start()
        assert ckpt.running
        ckpt.stop()
        ckpt.stop()
        assert not ckpt.running


class TestRequestedCheckpoints:
    def test_request_runs_full_checkpoint_in_background(self):
        db = make_db()
        insert_docs(db, 6)
        ckpt = Checkpointer(db, interval=0.5)  # long idle: request wakes it
        ckpt.start()
        ckpt.request_checkpoint()
        assert wait_for(
            lambda: db.stats.get("ckpt.background_checkpoints") >= 1)
        ckpt.stop()
        assert ckpt.error is None
        assert db.pool.dirty_count() == 0  # full flush, not a trickle
        assert db.stats.get("ckpt.requests") == 1

    def test_commit_threshold_posts_request_instead_of_stalling(self):
        db = make_db(ckpt_background=True, checkpoint_interval=3,
                     ckpt_interval_seconds=0.002)
        with DatabaseServer(db) as server:
            with server.session() as session:
                for i in range(9):
                    session.insert("docs", (f"k{i}", DOC.format(i=i)))
            assert wait_for(
                lambda: db.stats.get("ckpt.background_checkpoints") >= 1)
        # shutdown would have raised had the checkpointer died
        assert db.stats.get("ckpt.requests") >= 1


class TestInterleaving:
    def test_checkpointer_vs_writers_under_sanitizers(self, armed):
        db = make_db(ckpt_background=True, checkpoint_interval=4,
                     ckpt_interval_seconds=0.001, ckpt_trickle_pages=4,
                     txn_group_commit=True, serve_workers=4,
                     serve_queue_limit=256, buffer_pool_pages=16)
        db.create_xpath_index("ix_price", "docs", "doc", "/Product/Price",
                              "bigint")

        def client(index):
            with server.session() as session:
                for op in range(4):
                    session.insert("docs", (f"c{index}-{op}",
                                            DOC.format(i=index)))

        with DatabaseServer(db) as server:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Clean shutdown (no sanitizer raise, no checkpointer error) with
        # every acknowledged row present and indexes consistent.
        assert db.stats.get("ckpt.cycles") > 0
        keys = {row[0] for _, row in db.tables["docs"].scan_rids()}
        assert keys == {f"c{i}-{op}" for i in range(8) for op in range(4)}
        verify_value_indexes(db)
        for name in ("sanitize.lock_order", "sanitize.double_unpin",
                     "sanitize.lsn_regression"):
            assert db.stats.get(name) == 0


class TestThreadSafetyRegressions:
    """Pin the RACE fixes: the request flag is an Event, the error slot
    is witnessed and synchronized by the thread join."""

    def test_request_posted_before_shutdown_is_not_lost(self):
        db = make_db()
        insert_docs(db, 4)
        ckpt = Checkpointer(db, interval=60.0)  # idle loop: only the
        ckpt.start()                            # request can wake it
        ckpt.request_checkpoint()
        ckpt.stop()  # the final drain must run a still-pending request
        assert ckpt.error is None
        assert db.stats.get("ckpt.background_checkpoints") >= 1
        assert db.pool.dirty_count() == 0

    def test_error_capture_survives_the_lockset_discipline(self, armed):
        db = make_db()

        def torn_checkpoint():
            raise FaultInjectionError("checkpoint torn")

        db.txns.checkpoint = torn_checkpoint
        ckpt = Checkpointer(db, interval=0.001)
        ckpt.start()
        ckpt.request_checkpoint()
        assert wait_for(lambda: ckpt.error is not None)
        ckpt.stop()
        assert isinstance(ckpt.error, FaultInjectionError)
        # Writer thread, then the owner's post-join read: Eraser keeps
        # the slot in read-shared state — never shared-modified, so the
        # empty lockset is fine and nothing trips.
        assert db.stats.get("sanitize.race.lockset") == 0
        assert sanitize.witnessed_field_states()[
            ("Checkpointer", "error")] == "shared"
