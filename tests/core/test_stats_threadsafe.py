"""Thread-safety of the stats registry and accounting under concurrency.

The serving layer finishes transactions on multiple worker threads at
once.  The registry's charge sink is thread-local (each thread charges
only its own transaction) and all map mutation is lock-guarded, so the
PR 4 invariant survives concurrency: per-transaction deltas sum to (at
most) the global deltas — never more, which would mean double
attribution.  ``check_accounting_caps`` is the sanitizer form of that
cross-check; the AccountingLog ring itself is lock-guarded for the
emit/retract check-then-pop race.
"""

import threading
from collections import Counter

import pytest

from repro.analyze import sanitize
from repro.core.stats import StatsRegistry
from repro.errors import SanitizerError
from repro.rdb.txn import AccountingLog, AccountingRecord, TransactionManager


class TestConcurrentCharging:
    def test_thread_local_sinks_attribute_exactly_once(self):
        stats = StatsRegistry()
        threads, sinks = [], []
        increments_per_thread = 2_000

        def worker(sink):
            with stats.charge(sink):
                for _ in range(increments_per_thread):
                    stats.add("ts.records_read")

        for _ in range(8):
            sink = Counter()
            sinks.append(sink)
            threads.append(threading.Thread(target=worker, args=(sink,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = 8 * increments_per_thread
        # No lost global increments, and every thread's sink saw exactly
        # its own work — the sum reconciles with the global counter.
        assert stats.get("ts.records_read") == total
        assert all(s["ts.records_read"] == increments_per_thread
                   for s in sinks)
        assert sum(s["ts.records_read"] for s in sinks) == total

    def test_concurrent_histograms_and_gauges(self):
        stats = StatsRegistry()

        def worker(base):
            for value in range(500):
                stats.observe("serve.request_us", base + value)
                stats.set_high_water("xscan.peak_units", base + value)

        threads = [threading.Thread(target=worker, args=(i * 1000,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        hist = stats.histogram("serve.request_us")
        assert hist.count == 3000
        assert stats.gauge("xscan.peak_units") == 5499


class TestAccountingLogThreadSafety:
    def test_concurrent_emit_and_retract_keep_ring_consistent(self):
        log = AccountingLog(capacity=10_000)

        def emitter(thread_id):
            for index in range(500):
                txn_id = thread_id * 1_000 + index
                log.emit(AccountingRecord(txn_id=txn_id, isolation="cs",
                                          outcome="committed"))
                if index % 3 == 0:
                    log.retract(txn_id)  # may race another emit: fine

        threads = [threading.Thread(target=emitter, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = log.records()
        # retract only pops its own txn's record, so nothing is lost to
        # the race: every buffered record is unique and emitted == len.
        assert len({r.txn_id for r in records}) == len(records)
        assert log.emitted == len(records)


class TestAccountingCapsSanitizer:
    def test_clean_attribution_passes(self):
        stats = StatsRegistry()
        stats.add("ts.records_read", 10)
        records = [
            AccountingRecord(txn_id=1, isolation="cs", outcome="committed",
                             counters={"ts.records_read": 6}),
            AccountingRecord(txn_id=2, isolation="cs", outcome="committed",
                             counters={"ts.records_read": 4}),
        ]
        sanitize.check_accounting_caps(stats, records)  # no trip

    def test_overcharge_trips(self):
        stats = StatsRegistry()
        stats.add("ts.records_read", 5)
        records = [
            AccountingRecord(txn_id=1, isolation="cs", outcome="committed",
                             counters={"ts.records_read": 6}),
        ]
        with pytest.raises(SanitizerError, match="accounting_overcharge"):
            sanitize.check_accounting_caps(stats, records)
        assert stats.get("sanitize.accounting_overcharge") == 1

    def test_manager_records_reconcile_after_concurrent_txns(self):
        stats = StatsRegistry()
        manager = TransactionManager(stats=stats, accounting_size=4096)
        lock = threading.Lock()

        def worker():
            for _ in range(50):
                with lock:
                    txn = manager.begin()
                with txn.charging():
                    stats.add("ts.records_inserted")
                with lock:
                    txn.commit()

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sanitize.check_accounting_caps(stats,
                                       manager.accounting.records())
        charged = sum(r.counters.get("ts.records_inserted", 0)
                      for r in manager.accounting.records())
        assert charged == stats.get("ts.records_inserted") == 300
