"""SHARD001-004 resource-flow checkers, fingerprints, cache and STAT005.

Every fixture is a seeded snippet written to ``tmp_path`` — the analyzer
never imports it.  Each test pins one rule: where the finding lands, what
the ``--explain`` witness chain says, and which disciplined idioms must
stay quiet.  The final classes cover the satellite machinery that rides
on the same Program: STAT005 registry drift, the on-disk program cache,
and the shipped-sources clean gate.
"""

import json
import textwrap

from repro.analyze import main, run_checkers
from repro.analyze.progcache import CACHE_DIR_NAME, cached_program
from repro.analyze.resources import ResourceFlowChecker, footprint_map
from repro.analyze.statshygiene import StatsHygieneChecker


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def run_on(tmp_path, checker, relpath, source):
    path = write(tmp_path, relpath, source)
    return run_checkers([checker], [path], root=tmp_path)


class TestShard001AmbientReach:
    def test_cross_component_chain_is_ambient(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                def read(self, pid):
                    return self.db.pool.fetch(pid)
            """)
        codes = [f.code for f in findings]
        assert codes == ["SHARD001"]
        finding = findings[0]
        assert finding.scope == "Store.read"
        assert "self.db.pool" in finding.message
        # --explain: the reach, then why it is ambient (the 'db' hop).
        assert len(finding.call_path) == 2
        assert "self.db.pool" in finding.call_path[0]
        assert "'db'" in finding.call_path[1]
        assert "ambient" in finding.call_path[1]

    def test_resource_parameter_is_explicit(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                def read(self, pool, pid):
                    return pool.fetch(pid)
            """)
        assert findings == []

    def test_context_hop_is_explicit(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                def read(self, pid):
                    return self.context.pool.fetch(pid)
            """)
        assert findings == []

    def test_constructor_wiring_is_judged_by_shard003_not_shard001(
            self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                _shard_scoped_ = ("pool",)
                def __init__(self, db):
                    self.pool = db.pool
            """)
        assert findings == []

    def test_local_alias_does_not_launder_the_chain(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                def read(self, pid):
                    db = self.db
                    return db.pool.fetch(pid)
            """)
        assert [f.code for f in findings] == ["SHARD001"]


class TestShard002InstanceMixing:
    SOURCE = """\
        POOL_A = BufferPool(disk_a, capacity=8)
        POOL_B = BufferPool(disk_b, capacity=8)

        def migrate(pid):
            frame = POOL_A.fetch(pid)
            POOL_B.put(pid, frame)
        """

    def test_two_construction_sites_without_context_are_flagged(
            self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "pools.py",
                          self.SOURCE)
        assert [f.code for f in findings] == ["SHARD002"]
        finding = findings[0]
        assert finding.scope == "migrate"
        assert "pools.py::POOL_A" in finding.detail
        assert "pools.py::POOL_B" in finding.detail
        # --explain: one line per construction site.
        assert len(finding.call_path) == 2
        assert all("constructed here" in step for step in finding.call_path)

    def test_context_parameter_names_the_shard(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "pools.py", """\
            POOL_A = BufferPool(disk_a, capacity=8)
            POOL_B = BufferPool(disk_b, capacity=8)

            def migrate(pid, context):
                frame = POOL_A.fetch(pid)
                POOL_B.put(pid, frame)
            """)
        assert findings == []

    def test_single_instance_is_fine(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "pools.py", """\
            POOL_A = BufferPool(disk_a, capacity=8)

            def read(pid):
                return POOL_A.fetch(pid)
            """)
        assert findings == []


class TestShard003UndeclaredCapture:
    def test_undeclared_capture_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                def __init__(self, db):
                    self.pool = db.pool
            """)
        assert [f.code for f in findings] == ["SHARD003"]
        finding = findings[0]
        assert finding.detail == "Store.pool"
        assert "_shard_scoped_" in finding.message
        # --explain: the capture, then the declaration it is missing from.
        assert len(finding.call_path) == 2
        assert "self.pool = db.pool" in finding.call_path[0]
        assert "(no declaration)" in finding.call_path[1]

    def test_declared_capture_is_clean(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                _shard_scoped_ = ("pool",)
                def __init__(self, db):
                    self.pool = db.pool
            """)
        assert findings == []

    def test_self_constructed_resource_needs_no_declaration(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "store.py", """\
            class Store:
                def __init__(self, disk):
                    self.pool = BufferPool(disk, capacity=8)
            """)
        assert findings == []


class TestShard004SplitFootprint:
    SOURCE = """\
        class Checkpointer:
            def trickle(self, log):
                log.append(b"ckpt")
                self.db.pool.flush_page(1)
        """

    def test_split_log_pool_footprint_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "ckpt.py",
                          self.SOURCE)
        by_code = {f.code: f for f in findings}
        assert "SHARD004" in by_code  # the ambient pool also fires SHARD001
        finding = by_code["SHARD004"]
        assert finding.scope == "Checkpointer.trickle"
        assert finding.detail == "log=explicit,pool=ambient"
        # --explain: footprint sections plus the effect witnesses.
        rendered = "\n".join(finding.call_path)
        assert "-- log footprint (explicit):" in rendered
        assert "-- pool footprint (ambient):" in rendered
        assert "-- WAL write:" in rendered
        assert "-- page flush:" in rendered

    def test_uniform_footprint_is_clean(self, tmp_path):
        findings = run_on(tmp_path, ResourceFlowChecker(), "ckpt.py", """\
            class Checkpointer:
                def trickle(self, log, pool):
                    log.append(b"ckpt")
                    pool.flush_page(1)
            """)
        assert [f.code for f in findings] == []


class TestFingerprintStability:
    SOURCE = """\
        POOL_A = BufferPool(disk_a, capacity=8)
        POOL_B = BufferPool(disk_b, capacity=8)

        class Store:
            def __init__(self, db):
                self.locks = db.locks

        def migrate(pid):
            frame = POOL_A.fetch(pid)
            POOL_B.put(pid, frame)

        class Checkpointer:
            def trickle(self, log):
                log.append(b"ckpt")
                self.db.pool.flush_page(1)
        """

    def fingerprints(self, tmp_path, source):
        findings = run_on(tmp_path, ResourceFlowChecker(), "mix.py", source)
        return sorted(f.fingerprint for f in findings)

    def test_every_shard_code_survives_a_line_shift(self, tmp_path):
        before = self.fingerprints(tmp_path, self.SOURCE)
        codes = {fp.split(":", 1)[0] for fp in before}
        assert codes == {"SHARD001", "SHARD002", "SHARD003", "SHARD004"}
        shifted = "# leading comment\n\n\n" + textwrap.dedent(self.SOURCE)
        after = self.fingerprints(tmp_path, shifted)
        assert after == before


class TestStat005RegistryDrift:
    def seed(self, tmp_path, registry, charge):
        write(tmp_path, "repro/core/stats.py", registry)
        write(tmp_path, "repro/core/engine.py", charge)
        return run_checkers([StatsHygieneChecker()], [tmp_path],
                            root=tmp_path)

    def test_dead_registry_entry_is_flagged(self, tmp_path):
        findings = self.seed(tmp_path, """\
            METRICS = frozenset({
                "txn.commits",
                "dead.metric",
            })
            """, """\
            def commit(self):
                self.stats.add("txn.commits")
            """)
        drift = [f for f in findings if f.code == "STAT005"]
        assert [f.detail for f in drift] == ["dead.metric"]
        assert drift[0].path == "repro/core/stats.py"
        assert drift[0].scope == "METRICS"

    def test_trip_sites_keep_sanitizer_counters_alive(self, tmp_path):
        findings = self.seed(tmp_path, """\
            METRICS = frozenset({"sanitize.trips", "sanitize.shard.mix"})
            """, """\
            def check(self):
                trip(self.stats, "shard.mix", "boom")
                self.stats.add("sanitize.trips")
            """)
        assert [f for f in findings if f.code == "STAT005"] == []

    def test_wait_classes_keep_their_derived_counters_alive(self, tmp_path):
        findings = self.seed(tmp_path, """\
            WAITS = frozenset({"lock.row"})
            METRICS = frozenset({"waits.lock_row_us"})
            """, """\
            def wait(self):
                with self.stats.wait_timer("lock.row"):
                    pass
            """)
        assert [f for f in findings if f.code == "STAT005"] == []


class TestProgramCache:
    def test_second_run_hits_and_agrees(self, tmp_path):
        path = write(tmp_path, "store.py", """\
            class Store:
                def read(self, pid):
                    return self.db.pool.fetch(pid)
            """)
        program1, errors1, info1 = cached_program([path], root=tmp_path)
        assert not info1.hit
        assert (tmp_path / CACHE_DIR_NAME).is_dir()
        program2, errors2, info2 = cached_program([path], root=tmp_path)
        assert info2.hit and info2.key == info1.key
        findings1 = run_checkers([ResourceFlowChecker()], [path],
                                 root=tmp_path, program=program1)
        findings2 = run_checkers([ResourceFlowChecker()], [path],
                                 root=tmp_path, program=program2)
        assert [f.fingerprint for f in findings2] == \
            [f.fingerprint for f in findings1]

    def test_source_edit_misses(self, tmp_path):
        path = write(tmp_path, "mod.py", "X = 1\n")
        _, _, first = cached_program([path], root=tmp_path)
        path.write_text("X = 2\n")
        _, _, second = cached_program([path], root=tmp_path)
        assert not second.hit
        assert second.key != first.key

    def test_disabled_cache_never_hits_or_writes(self, tmp_path):
        path = write(tmp_path, "mod.py", "X = 1\n")
        _, _, info = cached_program([path], root=tmp_path, enabled=False)
        assert not info.enabled and not info.hit
        assert not (tmp_path / CACHE_DIR_NAME).exists()

    def test_parse_errors_replay_from_the_cache(self, tmp_path):
        good = write(tmp_path, "good.py", "X = 1\n")
        bad = write(tmp_path, "bad.py", "def broken(:\n")
        _, errors1, info1 = cached_program([good, bad], root=tmp_path)
        assert not info1.hit and len(errors1) == 1
        _, errors2, info2 = cached_program([good, bad], root=tmp_path)
        assert info2.hit
        assert errors2 == errors1

    def test_cli_reports_cache_state_in_json(self, tmp_path, capsys,
                                             monkeypatch):
        write(tmp_path, "mod.py", "X = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main([str(tmp_path / "mod.py"), "--format", "json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache"]["enabled"] and not first["cache"]["hit"]
        assert main([str(tmp_path / "mod.py"), "--format", "json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache"]["hit"]
        assert main([str(tmp_path / "mod.py"), "--format", "json",
                     "--no-cache"]) == 0
        bypassed = json.loads(capsys.readouterr().out)
        assert not bypassed["cache"]["enabled"]


class TestFootprintMap:
    def test_map_reports_direct_kinds_by_qualname(self, tmp_path):
        write(tmp_path, "store.py", """\
            class Store:
                def read(self, pool, pid):
                    self.stats.add("store.reads")
                    return pool.fetch(pid)
            """)
        footprints = footprint_map([tmp_path], root=tmp_path)
        assert footprints["Store.read"] == frozenset({"pool", "stats"})


class TestShippedSourcesAreShardClean:
    def test_resource_flow_gate(self):
        """The acceptance gate: SHARD001-004 exit 0 on ``src``."""
        assert main(["src", "--select", "resource-flow"]) == 0
