"""The static checkers against seeded fixture trees.

Each fixture is a deliberately wrong (or deliberately correct) snippet the
checker must flag (or stay quiet on) — the analyzer never imports the code
it reads, so the fixtures are plain text written to ``tmp_path``.
"""

import textwrap

import pytest

from repro.analyze import Baseline, BaselineError, main, run_checkers
from repro.analyze.baseline import write_baseline
from repro.analyze.lockorder import LockOrderChecker
from repro.analyze.pins import PinLeakChecker
from repro.analyze.rawdisk import RawDiskChecker
from repro.analyze.statshygiene import StatsHygieneChecker
from repro.analyze.waldiscipline import WalDisciplineChecker


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def run_on(tmp_path, checker, relpath, source):
    path = write(tmp_path, relpath, source)
    return run_checkers([checker], [path], root=tmp_path)


def line_of(path, needle):
    for number, text in enumerate(path.read_text().splitlines(), start=1):
        if needle in text:
            return number
    raise AssertionError(f"{needle!r} not in {path}")


class TestPinLeakChecker:
    def test_pin_without_unpin_is_flagged(self, tmp_path):
        path = write(tmp_path, "leak.py", """\
            class Reader:
                def peek(self):
                    page = self.pool.fetch(7)
                    self.total += page[0]
            """)
        findings = run_checkers([PinLeakChecker()], [path], root=tmp_path)
        assert [f.code for f in findings] == ["PIN001"]
        assert findings[0].path == "leak.py"
        assert findings[0].line == line_of(path, "self.pool.fetch(7)")
        assert findings[0].scope == "Reader.peek"

    def test_unpin_outside_finally_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "unsafe.py", """\
            class Writer:
                def stamp(self):
                    page_id, data = self.pool.new_page()
                    data[0] = 1
                    self.pool.unpin(page_id, dirty=True)
            """)
        assert [f.code for f in findings] == ["PIN002"]

    def test_try_finally_protected_pin_is_clean(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "safe.py", """\
            class Writer:
                def stamp(self):
                    page_id, data = self.pool.new_page()
                    try:
                        data[0] = 1
                    finally:
                        self.pool.unpin(page_id, dirty=True)
            """)
        assert findings == []

    def test_page_context_manager_is_clean(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "ctx.py", """\
            class Reader:
                def peek(self):
                    with self.pool.page(3) as data:
                        return data[0]
            """)
        assert findings == []

    def test_returned_pin_is_a_handoff(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "handoff.py", """\
            class Pool:
                def grab(self):
                    return self.inner_pool.fetch(9)
            """)
        assert findings == []


class TestLockOrderChecker:
    def test_opposite_orders_across_files_form_a_cycle(self, tmp_path):
        one = write(tmp_path, "repro/cc/one.py", """\
            def row_then_doc(txn, locks):
                locks.try_acquire(txn, ("row", 1), "X")
                locks.try_acquire(txn, ("doc", 2), "X")
            """)
        two = write(tmp_path, "repro/cc/two.py", """\
            def doc_then_row(txn, locks):
                locks.try_acquire(txn, ("doc", 2), "X")
                locks.try_acquire(txn, ("row", 1), "X")
            """)
        findings = run_checkers([LockOrderChecker()], [one, two],
                                root=tmp_path)
        assert [f.code for f in findings] == ["LOCK001"]
        finding = findings[0]
        assert finding.detail == "doc/row"
        assert "deadlock" in finding.message
        witnessed_files = {path for path, _line in finding.related}
        assert witnessed_files == {"repro/cc/one.py", "repro/cc/two.py"}

    def test_consistent_order_is_clean(self, tmp_path):
        one = write(tmp_path, "a.py", """\
            def first(txn, locks):
                locks.try_acquire(txn, ("row", 1), "X")
                locks.try_acquire(txn, ("doc", 2), "X")
            """)
        two = write(tmp_path, "b.py", """\
            def second(txn, locks):
                locks.try_acquire(txn, ("row", 9), "S")
                locks.try_acquire(txn, ("doc", 8), "S")
            """)
        assert run_checkers([LockOrderChecker()], [one, two],
                            root=tmp_path) == []

    def test_resource_helper_calls_are_classified(self, tmp_path):
        path = write(tmp_path, "helpers.py", """\
            def forward(txn):
                txn.lock(row_resource(1), "X")
                txn.lock(doc_resource(2), "X")

            def backward(txn):
                txn.lock(doc_resource(2), "X")
                txn.lock(row_resource(1), "X")
            """)
        findings = run_checkers([LockOrderChecker()], [path], root=tmp_path)
        assert [f.code for f in findings] == ["LOCK001"]
        assert findings[0].detail == "doc/row"

    def test_lock_in_except_handler_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, LockOrderChecker(), "handler.py", """\
            def retry(txn, locks):
                try:
                    locks.try_acquire(txn, ("row", 1), "X")
                except RuntimeError:
                    locks.try_acquire(txn, ("row", 1), "X")
            """)
        assert [f.code for f in findings] == ["LOCK002"]


class TestRawDiskChecker:
    def test_bypass_outside_storage_layer_is_flagged(self, tmp_path):
        path = write(tmp_path, "repro/xmlstore/cheat.py", """\
            def sneak(disk):
                return disk.read_page(0)
            """)
        findings = run_checkers([RawDiskChecker()], [path], root=tmp_path)
        assert [f.code for f in findings] == ["DISK001"]
        assert findings[0].line == line_of(path, "read_page")

    def test_storage_buffer_and_fault_layers_are_allowed(self, tmp_path):
        paths = [
            write(tmp_path, relpath, """\
                def io(disk, data):
                    disk.write_page(0, data)
                    return disk.read_page(0)
                """)
            for relpath in ("repro/rdb/storage.py", "repro/rdb/buffer.py",
                            "repro/fault/disk.py")
        ]
        assert run_checkers([RawDiskChecker()], paths, root=tmp_path) == []


class TestStatsHygieneChecker:
    def test_misnamed_counter_is_flagged(self, tmp_path):
        path = write(tmp_path, "metrics.py", """\
            def touch(self):
                self.stats.add("BadName")
                self.stats.add("buffer.hits")
            """)
        findings = run_checkers([StatsHygieneChecker()], [path],
                                root=tmp_path)
        assert [f.code for f in findings] == ["STAT001"]
        assert findings[0].detail == "BadName"
        assert findings[0].line == line_of(path, "BadName")

    def test_unregistered_metric_is_flagged(self, tmp_path):
        registry = write(tmp_path, "repro/core/stats.py", """\
            METRICS = frozenset({"buffer.hits"})
            """)
        user = write(tmp_path, "repro/user.py", """\
            def touch(stats):
                stats.add("buffer.hits")
                stats.add("buffer.hitz")
            """)
        findings = run_checkers([StatsHygieneChecker()], [registry, user],
                                root=tmp_path)
        assert [f.code for f in findings] == ["STAT002"]
        assert findings[0].detail == "buffer.hitz"

    def test_without_registry_only_convention_is_checked(self, tmp_path):
        findings = run_on(tmp_path, StatsHygieneChecker(), "solo.py", """\
            def touch(stats):
                stats.add("anything.goes")
            """)
        assert findings == []

    def test_unregistered_histogram_is_flagged(self, tmp_path):
        registry = write(tmp_path, "repro/core/stats.py", """\
            METRICS = frozenset({"buffer.hits"})
            HISTOGRAMS = frozenset({"btree.search_entries"})
            """)
        user = write(tmp_path, "repro/user.py", """\
            def touch(stats):
                stats.add("buffer.hits")
                stats.observe("btree.search_entries", 3)
                stats.observe("btree.search_entriez", 3)
            """)
        findings = run_checkers([StatsHygieneChecker()], [registry, user],
                                root=tmp_path)
        assert [f.code for f in findings] == ["STAT003"]
        assert findings[0].detail == "btree.search_entriez"
        assert findings[0].line == line_of(user, "search_entriez")

    def test_histogram_name_convention_is_checked(self, tmp_path):
        findings = run_on(tmp_path, StatsHygieneChecker(), "hist.py", """\
            def touch(stats):
                stats.observe("BadHistogram", 1)
            """)
        assert [f.code for f in findings] == ["STAT001"]
        assert findings[0].detail == "BadHistogram"

    def test_counter_registry_does_not_cover_observe(self, tmp_path):
        # A name registered only in METRICS is still a STAT003 when used
        # as a histogram — the registries are separate namespaces.
        registry = write(tmp_path, "repro/core/stats.py", """\
            METRICS = frozenset({"buffer.hits"})
            HISTOGRAMS = frozenset()
            """)
        user = write(tmp_path, "repro/user.py", """\
            def touch(stats):
                stats.add("buffer.hits")
                stats.observe("buffer.hits", 1)
            """)
        findings = run_checkers([StatsHygieneChecker()], [registry, user],
                                root=tmp_path)
        assert [f.code for f in findings] == ["STAT003"]

    def test_unregistered_wait_class_is_flagged(self, tmp_path):
        registry = write(tmp_path, "repro/core/stats.py", """\
            METRICS = frozenset({"buffer.hits"})
            WAITS = frozenset({"lock.wait"})
            """)
        user = write(tmp_path, "repro/user.py", """\
            def block(stats):
                stats.add("buffer.hits")
                with stats.wait_timer("lock.wait"):
                    pass
                stats.charge_wait("lock.wayt", 5)
            """)
        findings = run_checkers([StatsHygieneChecker()], [registry, user],
                                root=tmp_path)
        assert [f.code for f in findings] == ["STAT004"]
        assert findings[0].detail == "lock.wayt"
        assert findings[0].line == line_of(user, "lock.wayt")

    def test_uncharged_sleep_is_flagged(self, tmp_path):
        path = write(tmp_path, "sleeper.py", """\
            import time

            class Poller:
                def spin(self):
                    time.sleep(0.01)
            """)
        findings = run_checkers([StatsHygieneChecker()], [path],
                                root=tmp_path)
        assert [f.code for f in findings] == ["STAT004"]
        assert findings[0].scope == "Poller.spin"
        assert findings[0].line == line_of(path, "time.sleep")

    def test_wait_timer_wrapped_sleep_is_clean(self, tmp_path):
        findings = run_on(tmp_path, StatsHygieneChecker(), "charged.py", """\
            import time

            class Backoff:
                def pause(self, stats):
                    with stats.wait_timer("txn.retry_backoff"):
                        time.sleep(0.01)
            """)
        assert findings == []

    def test_latch_yield_allowlist_is_clean(self, tmp_path):
        findings = run_on(tmp_path, StatsHygieneChecker(), "yield.py", """\
            from time import sleep

            class DatabaseServer:
                def _latch_sleep(self, seconds):
                    self.latch.release()
                    try:
                        sleep(seconds)
                    finally:
                        self.latch.acquire()
            """)
        assert findings == []

    def test_bare_sleep_alias_is_a_sleep_site(self, tmp_path):
        findings = run_on(tmp_path, StatsHygieneChecker(), "alias.py", """\
            from time import sleep

            def nap():
                sleep(0.5)
            """)
        assert [f.code for f in findings] == ["STAT004"]


class TestWalDisciplineChecker:
    def test_undominated_flush_is_flagged(self, tmp_path):
        path = write(tmp_path, "flush.py", """\
            class Engine:
                def hasty(self):
                    self.pool.flush_all()

                def disciplined(self):
                    self.log.append(-1, "CHECKPOINT")
                    self.pool.flush_all()
            """)
        findings = run_checkers([WalDisciplineChecker()], [path],
                                root=tmp_path)
        assert [f.code for f in findings] == ["WAL001"]
        assert findings[0].scope == "Engine.hasty"

    def test_buffer_pool_module_owns_its_flushes(self, tmp_path):
        path = write(tmp_path, "repro/rdb/buffer.py", """\
            class BufferPool:
                def flush_all(self):
                    for page_id in self._frames:
                        self.flush_page(page_id)
            """)
        assert run_checkers([WalDisciplineChecker()], [path],
                            root=tmp_path) == []

    def test_blanket_except_is_flagged(self, tmp_path):
        path = write(tmp_path, "swallow.py", """\
            def swallow(self):
                try:
                    self.do()
                except Exception:
                    pass

            def bare(self):
                try:
                    self.do()
                except:
                    pass

            def reraises(self):
                try:
                    self.do()
                except Exception:
                    raise

            def narrow(self):
                try:
                    self.do()
                except ValueError:
                    pass
            """)
        findings = run_checkers([WalDisciplineChecker()], [path],
                                root=tmp_path)
        assert [f.code for f in findings] == ["WAL002", "WAL002"]
        assert {f.scope for f in findings} == {"swallow", "bare"}


SEEDED_LEAK = """\
class Reader:
    def peek(self):
        page = self.pool.fetch(7)
        self.total += page[0]
"""

FIXED_LEAK = """\
class Reader:
    def peek(self):
        with self.pool.page(7) as page:
            self.total += page[0]
"""


class TestBaselineAndCli:
    def test_cli_flags_seeded_tree_and_baseline_suppresses(
            self, tmp_path, capsys):
        write(tmp_path, "tree/leak.py", SEEDED_LEAK)
        baseline = tmp_path / "baseline.txt"

        assert main([str(tmp_path / "tree")]) == 2
        assert "PIN001" in capsys.readouterr().out

        assert main([str(tmp_path / "tree"), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        text = baseline.read_text()
        assert "PIN001" in text and "# TODO" in text
        # Document the entry the way a reviewer would.
        baseline.write_text(text.replace(
            "# TODO: document why this is intentional",
            "# fixture: exercised by the analyzer's own tests"))

        assert main([str(tmp_path / "tree"),
                     "--baseline", str(baseline)]) == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_stale_baseline_entries_are_reported(self, tmp_path, capsys):
        leak = write(tmp_path, "tree/leak.py", SEEDED_LEAK)
        baseline = tmp_path / "baseline.txt"
        findings = run_checkers([PinLeakChecker()], [leak], root=tmp_path)
        write_baseline(baseline, findings)

        leak.write_text(FIXED_LEAK)  # the violation is gone
        assert main([str(tmp_path / "tree"),
                     "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_undocumented_baseline_entry_is_an_error(self, tmp_path, capsys):
        write(tmp_path, "tree/leak.py", SEEDED_LEAK)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("PIN001  tree/leak.py:Reader.peek:"
                            "self.pool.fetch\n")
        assert main([str(tmp_path / "tree"),
                     "--baseline", str(baseline)]) == 1
        assert "no reason" in capsys.readouterr().err
        with pytest.raises(BaselineError):
            Baseline.load(baseline)

    def test_select_limits_checkers(self, tmp_path, capsys):
        write(tmp_path, "tree/mixed.py", SEEDED_LEAK + """\

def touch(stats):
    stats.add("BadName")
""")
        assert main([str(tmp_path / "tree"), "--select", "pin-leak"]) == 2
        out = capsys.readouterr().out
        assert "PIN001" in out and "STAT001" not in out

        assert main([str(tmp_path / "tree"), "--select", "STAT001"]) == 2
        out = capsys.readouterr().out
        assert "STAT001" in out and "PIN001" not in out

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "does-not-exist")]) == 1
        assert "no such path" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        import json
        write(tmp_path, "tree/leak.py", SEEDED_LEAK)
        assert main([str(tmp_path / "tree"), "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "PIN001"

    def test_broken_file_degrades_gracefully(self, tmp_path, capsys):
        write(tmp_path, "tree/broken.py", "def broken(:\n")
        write(tmp_path, "tree/leak.py", SEEDED_LEAK)
        assert main([str(tmp_path / "tree")]) == 2
        captured = capsys.readouterr()
        assert "parse error" in captured.err
        assert "PIN001" in captured.out


class TestShippedTree:
    def test_shipped_sources_are_clean(self, capsys):
        """The acceptance gate: ``python -m repro.analyze src`` exits 0."""
        assert main(["src"]) == 0
