"""Call-graph construction and resolution rules."""

import textwrap
from pathlib import Path

from repro.analyze.framework import Program, SourceModule


def build(tmp_path, files):
    program = Program()
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        program.add(SourceModule(path, tmp_path))
    return program


def callees(graph, fid):
    return sorted(site.callee.fid for site in graph.callees_of.get(fid, []))


class TestResolution:
    def test_self_method_resolves_to_own_class(self, tmp_path):
        program = build(tmp_path, {"m.py": """\
            class A:
                def outer(self):
                    self.inner()
                def inner(self):
                    pass
            class B:
                def inner(self):
                    pass
            """})
        graph = program.callgraph()
        assert callees(graph, "m.py::A.outer") == ["m.py::A.inner"]

    def test_self_method_walks_base_chain(self, tmp_path):
        program = build(tmp_path, {"m.py": """\
            class Base:
                def helper(self):
                    pass
            class Child(Base):
                def run(self):
                    self.helper()
            """})
        graph = program.callgraph()
        assert callees(graph, "m.py::Child.run") == ["m.py::Base.helper"]

    def test_unknown_self_method_falls_back_to_all_candidates(self, tmp_path):
        # The class chain doesn't define it (the base is outside the tree):
        # conservatively, every method with that name is a candidate.
        program = build(tmp_path, {"m.py": """\
            class Mixin(SomethingExternal):
                def run(self):
                    self.mystery()
            class X:
                def mystery(self):
                    pass
            class Y:
                def mystery(self):
                    pass
            """})
        graph = program.callgraph()
        assert callees(graph, "m.py::Mixin.run") == [
            "m.py::X.mystery", "m.py::Y.mystery"]

    def test_plain_call_resolves_same_module_function(self, tmp_path):
        program = build(tmp_path, {"m.py": """\
            def helper():
                pass
            def run():
                helper()
            """})
        graph = program.callgraph()
        assert callees(graph, "m.py::run") == ["m.py::helper"]

    def test_from_import_resolves_across_modules(self, tmp_path):
        program = build(tmp_path, {
            "pkg/util.py": """\
                def shared():
                    pass
                """,
            "pkg/main.py": """\
                from pkg.util import shared
                def run():
                    shared()
                """,
        })
        graph = program.callgraph()
        assert callees(graph, "pkg/main.py::run") == ["pkg/util.py::shared"]

    def test_imported_class_call_resolves_to_init(self, tmp_path):
        program = build(tmp_path, {
            "pkg/thing.py": """\
                class Thing:
                    def __init__(self):
                        pass
                """,
            "pkg/main.py": """\
                from pkg.thing import Thing
                def run():
                    Thing()
                """,
        })
        graph = program.callgraph()
        assert callees(graph, "pkg/main.py::run") == [
            "pkg/thing.py::Thing.__init__"]

    def test_class_qualified_call_resolves(self, tmp_path):
        program = build(tmp_path, {"m.py": """\
            class Helper:
                def util(self):
                    pass
            class User:
                def run(self):
                    Helper.util(self)
            """})
        graph = program.callgraph()
        assert callees(graph, "m.py::User.run") == ["m.py::Helper.util"]

    def test_arbitrary_receiver_is_unresolved(self, tmp_path):
        # lines.append must NOT resolve to LogManager.append: by-name
        # receiver matching would poison every WAL summary.
        program = build(tmp_path, {"m.py": """\
            class LogManager:
                def append(self, rec):
                    pass
            def run(lines):
                lines.append(1)
            """})
        graph = program.callgraph()
        assert callees(graph, "m.py::run") == []

    def test_nested_function_calls_belong_to_the_nested_fn(self, tmp_path):
        program = build(tmp_path, {"m.py": """\
            def helper():
                pass
            def outer():
                def inner():
                    helper()
                return inner
            """})
        graph = program.callgraph()
        assert callees(graph, "m.py::outer") == []
        assert callees(graph, "m.py::outer.inner") == ["m.py::helper"]

    def test_callers_of_is_the_reverse_index(self, tmp_path):
        program = build(tmp_path, {"m.py": """\
            def helper():
                pass
            def a():
                helper()
            def b():
                helper()
            """})
        graph = program.callgraph()
        callers = sorted(site.caller.fid
                         for site in graph.callers_of["m.py::helper"])
        assert callers == ["m.py::a", "m.py::b"]


class TestProgramCaching:
    def test_adding_a_module_invalidates_the_graph(self, tmp_path):
        program = build(tmp_path, {"a.py": """\
            def a():
                pass
            """})
        first = program.callgraph()
        assert program.callgraph() is first  # cached
        path = tmp_path / "b.py"
        path.write_text("def b():\n    pass\n")
        program.add(SourceModule(path, tmp_path))
        rebuilt = program.callgraph()
        assert rebuilt is not first
        assert "b.py::b" in rebuilt.functions
