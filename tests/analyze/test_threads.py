"""The thread model: roots, contexts, shared fields and latch inference.

Fixtures are plain-text trees (never imported), driven straight through
:class:`repro.analyze.threads.ThreadAnalysis` so each view — spawn-site
detection, reachability, field classification, entry locksets — is pinned
down independently of the checkers built on top.
"""

import textwrap

from repro.analyze.framework import Program, SourceModule
from repro.analyze.threads import MAIN_CONTEXT, ThreadAnalysis, guard_token


def analyze(tmp_path, source, relpath="mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    program = Program()
    program.add(SourceModule(path, tmp_path))
    return ThreadAnalysis(program)


SERVER = """\
    import threading

    class Server:
        def __init__(self):
            self.jobs = 0
            self.stats = object()
            self._threads = []

        def start(self):
            for index in range(4):
                thread = threading.Thread(target=self._worker_loop)
                thread.start()
                self._threads.append(thread)

        def _worker_loop(self):
            while True:
                self._step()

        def _step(self):
            self.jobs += 1
            self.stats.add("serve.requests")

        def view(self):
            return self.jobs
    """


class TestThreadRoots:
    def test_spawn_in_loop_is_a_many_root(self, tmp_path):
        analysis = analyze(tmp_path, SERVER)
        root = analysis.roots["Server._worker_loop"]
        assert root.many
        assert "mod.py" in root.provenance()
        assert "Server._worker_loop" in root.provenance()

    def test_singleton_spawn_is_not_many(self, tmp_path):
        analysis = analyze(tmp_path, """\
            import threading

            class Daemon:
                def start(self):
                    self._thread = threading.Thread(target=self._loop)
                    self._thread.start()

                def _loop(self):
                    pass
            """)
        assert analysis.roots["Daemon._loop"].many is False

    def test_known_roots_are_declared_entry_points(self, tmp_path):
        analysis = analyze(tmp_path, """\
            class GroupCommitter:
                def commit(self, txn_id):
                    self._pending += 1
            """)
        root = analysis.roots["GroupCommitter.commit"]
        assert root.many
        assert "declared concurrent entry point" in root.provenance()


class TestContexts:
    def test_helper_inherits_the_root_context(self, tmp_path):
        analysis = analyze(tmp_path, SERVER)
        step = next(info for info in analysis.graph.iter_functions()
                    if info.qualname == "Server._step")
        assert "Server._worker_loop" in analysis.contexts_of(step.fid)

    def test_unreached_function_runs_on_main(self, tmp_path):
        analysis = analyze(tmp_path, SERVER)
        view = next(info for info in analysis.graph.iter_functions()
                    if info.qualname == "Server.view")
        assert analysis.contexts_of(view.fid) == frozenset((MAIN_CONTEXT,))

    def test_reach_path_walks_from_the_spawn_site(self, tmp_path):
        analysis = analyze(tmp_path, SERVER)
        step = next(info for info in analysis.graph.iter_functions()
                    if info.qualname == "Server._step")
        lines = analysis.reach_path("Server._worker_loop", step.fid)
        assert len(lines) == 2
        assert "spawns threads running Server._worker_loop" in lines[0]
        assert "Server._worker_loop calls self._step()" in lines[1]


class TestSharedFields:
    def test_field_written_on_worker_and_read_on_main_is_shared(
            self, tmp_path):
        analysis = analyze(tmp_path, SERVER)
        shared = {record.key for record in analysis.shared_fields()}
        assert ("Server", "jobs") in shared

    def test_sync_object_fields_are_exempt(self, tmp_path):
        analysis = analyze(tmp_path, """\
            import threading

            class Daemon:
                def start(self):
                    threading.Thread(target=self._loop).start()

                def request(self):
                    self._wake.set()

                def _loop(self):
                    self._wake.wait(1.0)
                    if self._wake.is_set():
                        self._wake.clear()
            """)
        assert analysis.shared_fields() == []

    def test_mutator_on_stats_delegate_is_not_a_write(self, tmp_path):
        analysis = analyze(tmp_path, SERVER)
        shared = {record.key for record in analysis.shared_fields()}
        assert ("Server", "stats") not in shared

    def test_field_never_written_after_init_is_not_shared(self, tmp_path):
        analysis = analyze(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self.limit = 8

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    return self.limit
            """)
        assert analysis.shared_fields() == []


class TestLocksets:
    def test_guard_token_normalizes_lockish_expressions(self):
        import ast as _ast

        def expr(text):
            return _ast.parse(text, mode="eval").body

        assert guard_token(expr("self._state_lock")) == "_state_lock"
        assert guard_token(expr("self.db.latch")) == "db.latch"
        assert guard_token(expr("self._lock_for(name)")) == "_lock_for()"
        assert guard_token(expr("self.stats.trace('x')")) is None

    def test_entry_locks_flow_from_guarded_call_sites(self, tmp_path):
        analysis = analyze(tmp_path, """\
            import threading

            class Engine:
                def start(self):
                    for _ in range(2):
                        threading.Thread(target=self.run).start()

                def run(self):
                    with self.db.latch:
                        self._apply()

                def _apply(self):
                    self.applied += 1
            """)
        apply_fn = next(info for info in analysis.graph.iter_functions()
                        if info.qualname == "Engine._apply")
        assert analysis.entry_locks(apply_fn.fid) == frozenset(("db.latch",))
        guards = analysis.inferred_guards()
        assert guards[("Engine", "applied")] == frozenset(("db.latch",))

    def test_root_functions_enter_with_no_locks(self, tmp_path):
        analysis = analyze(tmp_path, SERVER)
        loop = analysis.roots["Server._worker_loop"].info
        assert analysis.entry_locks(loop.fid) == frozenset()
