"""Runtime sanitizers: trips, counters, and engine wiring."""

import pytest

from repro.analyze import sanitize
from repro.core.engine import Database
from repro.core.stats import METRICS, StatsRegistry
from repro.errors import BufferPoolError, SanitizerError
from repro.rdb.buffer import BufferPool
from repro.rdb.locks import LockManager, LockMode
from repro.rdb.storage import Disk
from repro.rdb.wal import LogManager, LogOp
from repro.xpath.cache import clear_caches


@pytest.fixture
def armed():
    """Arm the sanitizers for one test (the suite conftest restores state)."""
    sanitize.enable()
    sanitize.reset_witness()
    yield
    sanitize.reset_witness()


@pytest.fixture
def stats():
    return StatsRegistry()


def make_pool(stats, capacity=4):
    return BufferPool(Disk(page_size=256, stats=stats), capacity=capacity)


class TestBufferSanitizers:
    def test_double_unpin_is_counted(self, armed, stats):
        pool = make_pool(stats)
        page_id, _ = pool.new_page()
        pool.unpin(page_id, dirty=True)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_id)
        assert stats.get("sanitize.double_unpin") == 1

    def test_double_unpin_not_counted_when_disarmed(self, stats):
        sanitize.disable()
        pool = make_pool(stats)
        page_id, _ = pool.new_page()
        pool.unpin(page_id)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_id)
        assert stats.get("sanitize.double_unpin") == 0

    def test_quiesce_check_trips_on_pinned_frame(self, armed, stats):
        pool = make_pool(stats)
        page_id, _ = pool.new_page()
        with pytest.raises(SanitizerError, match="still pinned"):
            sanitize.check_pool_quiesced(pool, stats, where="test point")
        # The trip is counted even though it raised.
        assert stats.get("sanitize.pinned_at_txn_end") == 1
        assert stats.get("sanitize.checks") == 1
        pool.unpin(page_id, dirty=True)
        sanitize.check_pool_quiesced(pool, stats, where="test point")
        assert stats.get("sanitize.checks") == 2

    def test_pools_created_while_armed_are_tracked(self, armed, stats):
        sanitize.clear_tracked_pools()
        pool = make_pool(stats)
        assert pool in sanitize.tracked_pools()
        sanitize.clear_tracked_pools()
        assert sanitize.tracked_pools() == []


class TestLockSanitizers:
    def test_unreleased_locks_trip_at_txn_end(self, armed, stats):
        locks = LockManager(stats)
        assert locks.try_acquire(1, ("row", 1), LockMode.X)
        with pytest.raises(SanitizerError, match="still holds"):
            sanitize.check_txn_locks_released(locks, 1, stats)
        assert stats.get("sanitize.locks_at_txn_end") == 1
        locks.release_all(1)
        sanitize.check_txn_locks_released(locks, 1, stats)

    def test_witnessed_inversion_trips(self, armed, stats):
        # txn 1 establishes row -> doc; txn 2 then inverts it.
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.on_lock_acquired(stats, 1, ("doc", 2))
        sanitize.on_locks_released(1)
        sanitize.on_lock_acquired(stats, 2, ("doc", 3))
        with pytest.raises(SanitizerError, match="inversion"):
            sanitize.on_lock_acquired(stats, 2, ("row", 9))
        assert stats.get("sanitize.lock_order") == 1

    def test_reacquiring_same_class_is_not_an_inversion(self, armed, stats):
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.on_lock_acquired(stats, 1, ("doc", 2))
        sanitize.on_lock_acquired(stats, 1, ("row", 5))  # re-entry, no edge
        assert sanitize.witnessed_edges() == {"row": {"doc"}}

    def test_lock_manager_wiring_builds_witness_graph(self, armed, stats):
        locks = LockManager(stats)
        locks.try_acquire(7, ("row", 1), LockMode.S)
        locks.try_acquire(7, ("doc", 2), LockMode.S)
        assert sanitize.witnessed_edges() == {"row": {"doc"}}
        locks.release_all(7)
        sanitize.on_locks_released(7)

    def test_cross_check_against_static_graph(self, armed, stats):
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.on_lock_acquired(stats, 1, ("doc", 2))
        assert sanitize.cross_check_static_order([("row", "doc")]) == []
        contradictions = sanitize.cross_check_static_order([("doc", "row")])
        assert len(contradictions) == 1
        assert "'row' before 'doc'" in contradictions[0]


class TestWalSanitizers:
    def test_lsn_regression_trips(self, armed, stats):
        with pytest.raises(SanitizerError, match="regressed"):
            sanitize.check_lsn_monotonic(stats, last_lsn=5, lsn=5)
        assert stats.get("sanitize.lsn_regression") == 1
        sanitize.check_lsn_monotonic(stats, last_lsn=5, lsn=6)

    def test_appends_are_checked_while_armed(self, armed, stats):
        log = LogManager(stats=stats)
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.COMMIT)
        assert stats.get("sanitize.checks") == 2

    def test_truncate_resets_the_watermark(self, armed, stats):
        log = LogManager(stats=stats)
        log.append(1, LogOp.BEGIN)
        log.truncate()
        log.append(1, LogOp.BEGIN)  # LSNs restart; must not trip


class TestEngineWiring:
    def test_txn_end_quiesce_catches_leaked_pin(self, armed):
        db = Database()
        txn = db.txns.begin()
        page_id, _ = db.pool.new_page()  # leak a pin across the txn
        with pytest.raises(SanitizerError, match="still pinned"):
            txn.commit()
        assert db.stats.get("sanitize.pinned_at_txn_end") == 1
        db.pool.unpin(page_id, dirty=True)

    def test_clean_txn_passes_the_quiesce_check(self, armed):
        db = Database()
        db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
        db.run_in_txn(lambda db_, txn:
                      db_.insert("t", (1, "<a><b/></a>"), txn.txn_id))
        assert db.stats.get("sanitize.checks") >= 1
        assert db.stats.get("sanitize.pinned_at_txn_end") == 0

    def test_close_trips_on_active_txn(self, armed):
        db = Database()
        db.txns.begin()
        with pytest.raises(SanitizerError, match="still active"):
            db.close()
        assert db.stats.get("sanitize.active_txns_at_close") == 1

    def test_context_manager_closes_cleanly(self, armed):
        clear_caches()
        with Database() as db:
            db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
            db.insert("t", (1, "<a>x</a>"))
        assert db.stats.get("wal.checkpoints") == 1
        db.close()  # idempotent
        assert db.stats.get("wal.checkpoints") == 1

    def test_all_sanitizer_counters_are_registered(self):
        for name in ("sanitize.checks", "sanitize.double_unpin",
                     "sanitize.pinned_at_txn_end",
                     "sanitize.locks_at_txn_end", "sanitize.lock_order",
                     "sanitize.lsn_regression",
                     "sanitize.active_txns_at_close"):
            assert name in METRICS
