"""Runtime sanitizers: trips, counters, and engine wiring."""

import textwrap
import threading

import pytest

from repro.analyze import sanitize
from repro.analyze.framework import Program, SourceModule
from repro.cc.scheduler import Do, Lock, Scheduler
from repro.cc.subdocument import PrefixLockTable
from repro.core.engine import Database
from repro.core.stats import METRICS, StatsRegistry
from repro.errors import BufferPoolError, SanitizerError
from repro.rdb.buffer import BufferPool
from repro.rdb.locks import LockManager, LockMode
from repro.rdb.storage import Disk
from repro.rdb.wal import LogManager, LogOp
from repro.xpath.cache import clear_caches


@pytest.fixture
def armed():
    """Arm the sanitizers for one test (the suite conftest restores state)."""
    sanitize.enable()
    sanitize.reset_witness()
    yield
    sanitize.reset_witness()


@pytest.fixture
def stats():
    return StatsRegistry()


def make_pool(stats, capacity=4):
    return BufferPool(Disk(page_size=256, stats=stats), capacity=capacity)


class TestBufferSanitizers:
    def test_double_unpin_is_counted(self, armed, stats):
        pool = make_pool(stats)
        page_id, _ = pool.new_page()
        pool.unpin(page_id, dirty=True)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_id)
        assert stats.get("sanitize.double_unpin") == 1

    def test_thread_scope_ignores_foreign_thread_pins(self, armed, stats):
        pool = make_pool(stats)
        page_id, _ = pool.new_page()  # pinned by this thread
        assert pool.pinned_by_caller() == [page_id]
        errors = []

        def probe():
            # A monitor-style reader on another thread: the pin is not its
            # leak, so the thread-scoped quiesce check stays quiet.
            assert pool.pinned_by_caller() == []
            try:
                sanitize.check_pool_quiesced(pool, stats, scope="thread")
            except SanitizerError as exc:  # pragma: no cover - fail path
                errors.append(exc)

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert errors == []
        # The pinning thread itself still trips...
        with pytest.raises(SanitizerError):
            sanitize.check_pool_quiesced(pool, stats, scope="thread")
        # ...and the global scope (shutdown) sees the pin from anywhere.
        with pytest.raises(SanitizerError):
            sanitize.check_pool_quiesced(pool, stats)
        pool.unpin(page_id, dirty=True)
        assert pool.pinned_by_caller() == []
        sanitize.check_pool_quiesced(pool, stats, scope="thread")
        sanitize.check_pool_quiesced(pool, stats)

    def test_double_unpin_not_counted_when_disarmed(self, stats):
        sanitize.disable()
        pool = make_pool(stats)
        page_id, _ = pool.new_page()
        pool.unpin(page_id)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_id)
        assert stats.get("sanitize.double_unpin") == 0

    def test_quiesce_check_trips_on_pinned_frame(self, armed, stats):
        pool = make_pool(stats)
        page_id, _ = pool.new_page()
        with pytest.raises(SanitizerError, match="still pinned"):
            sanitize.check_pool_quiesced(pool, stats, where="test point")
        # The trip is counted even though it raised.
        assert stats.get("sanitize.pinned_at_txn_end") == 1
        assert stats.get("sanitize.checks") == 1
        pool.unpin(page_id, dirty=True)
        sanitize.check_pool_quiesced(pool, stats, where="test point")
        assert stats.get("sanitize.checks") == 2

    def test_pools_created_while_armed_are_tracked(self, armed, stats):
        sanitize.clear_tracked_pools()
        pool = make_pool(stats)
        assert pool in sanitize.tracked_pools()
        sanitize.clear_tracked_pools()
        assert sanitize.tracked_pools() == []


class TestLockSanitizers:
    def test_unreleased_locks_trip_at_txn_end(self, armed, stats):
        locks = LockManager(stats)
        assert locks.try_acquire(1, ("row", 1), LockMode.X)
        with pytest.raises(SanitizerError, match="still holds"):
            sanitize.check_txn_locks_released(locks, 1, stats)
        assert stats.get("sanitize.locks_at_txn_end") == 1
        locks.release_all(1)
        sanitize.check_txn_locks_released(locks, 1, stats)

    def test_witnessed_inversion_trips(self, armed, stats):
        # txn 1 establishes row -> doc; txn 2 then inverts it.
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.on_lock_acquired(stats, 1, ("doc", 2))
        sanitize.on_locks_released(1)
        sanitize.on_lock_acquired(stats, 2, ("doc", 3))
        with pytest.raises(SanitizerError, match="inversion"):
            sanitize.on_lock_acquired(stats, 2, ("row", 9))
        assert stats.get("sanitize.lock_order") == 1

    def test_reacquiring_same_class_is_not_an_inversion(self, armed, stats):
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.on_lock_acquired(stats, 1, ("doc", 2))
        sanitize.on_lock_acquired(stats, 1, ("row", 5))  # re-entry, no edge
        assert sanitize.witnessed_edges() == {"row": {"doc"}}

    def test_lock_manager_wiring_builds_witness_graph(self, armed, stats):
        locks = LockManager(stats)
        locks.try_acquire(7, ("row", 1), LockMode.S)
        locks.try_acquire(7, ("doc", 2), LockMode.S)
        assert sanitize.witnessed_edges() == {"row": {"doc"}}
        locks.release_all(7)
        sanitize.on_locks_released(7)

    def test_cross_check_against_static_graph(self, armed, stats):
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.on_lock_acquired(stats, 1, ("doc", 2))
        assert sanitize.cross_check_static_order([("row", "doc")]) == []
        contradictions = sanitize.cross_check_static_order([("doc", "row")])
        assert len(contradictions) == 1
        assert "'row' before 'doc'" in contradictions[0]


class TestSchedulerWitnessCleanup:
    """Scheduler lock backends (PrefixLockTable, protocol adapters) never
    notify the sanitizer, and Do effects may lock through a *different*
    manager than the backend the scheduler releases through — so the
    scheduler itself must drop per-txn witness state on commit and on
    victim abort, or abandoned txn ids accumulate forever."""

    @staticmethod
    def _deadlocking_programs(mgr):
        def make(first, second):
            def body(txn_id):
                # Witness state under this txn id through a wired manager
                # the scheduler's backend knows nothing about.
                yield Do(lambda: mgr.try_acquire(
                    txn_id, ("row", txn_id), LockMode.S))
                yield Lock((1, first), LockMode.X)
                yield Lock((1, second), LockMode.X)
            return body
        return [("ab", make(b"\x01", b"\x02")),
                ("ba", make(b"\x02", b"\x01"))]

    def test_deadlock_restart_does_not_leak_witness_state(self, armed,
                                                          stats):
        table = PrefixLockTable(stats)
        mgr = LockManager(stats)
        result = Scheduler(table, seed=5).run(
            self._deadlocking_programs(mgr), round_robin=True)
        assert result.committed == 2
        assert result.deadlock_aborts >= 1
        # The victim's abandoned txn id and both committed ids must all
        # have been popped — the witness map is empty after quiesce.
        assert sanitize.lock_witness_txns() == []

    def test_commit_pops_witness_state_for_non_wired_backends(self, armed,
                                                              stats):
        table = PrefixLockTable(stats)
        mgr = LockManager(stats)

        def body(txn_id):
            yield Do(lambda: mgr.try_acquire(
                txn_id, ("row", txn_id), LockMode.S))
            yield Lock((1, b"\x01"), LockMode.X)

        result = Scheduler(table, seed=1).run([("solo", body)])
        assert result.committed == 1
        assert sanitize.lock_witness_txns() == []

    def test_disarmed_scheduler_does_not_touch_witness_state(self, stats):
        sanitize.disable()
        table = PrefixLockTable(stats)
        mgr = LockManager(stats)
        result = Scheduler(table, seed=5).run(
            self._deadlocking_programs(mgr), round_robin=True)
        assert result.committed == 2


class TestLockSummaryCrossCheck:
    def test_witnessed_class_missing_statically_is_reported(self, armed,
                                                            stats):
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.on_lock_acquired(stats, 1, ("weird", 2))
        sanitize.on_locks_released(1)
        issues = sanitize.cross_check_lock_summaries({"row", "doc"})
        assert len(issues) == 1
        assert "'weird'" in issues[0]
        assert sanitize.cross_check_lock_summaries({"row", "weird"}) == []

    def test_witnessed_classes_survive_txn_end(self, armed, stats):
        # Unlike the per-txn order lists, the class set must outlive the
        # transaction: the cross-check runs after the workload quiesced.
        sanitize.on_lock_acquired(stats, 3, ("row", 1))
        sanitize.on_locks_released(3)
        assert sanitize.cross_check_lock_summaries(set()) != []

    def test_reset_witness_clears_the_class_set(self, armed, stats):
        sanitize.on_lock_acquired(stats, 1, ("row", 1))
        sanitize.reset_witness()
        assert sanitize.cross_check_lock_summaries(set()) == []

    def test_against_real_effect_summaries(self, armed, stats, tmp_path):
        # Static side: effect summaries of a fixture tree.  Runtime side:
        # a wired LockManager witnessing live acquisitions.
        path = tmp_path / "proto.py"
        path.write_text(textwrap.dedent("""\
            class Protocol:
                def write(self, mgr, txn):
                    mgr.try_acquire(txn, ("row", 1), "X")
                    mgr.try_acquire(txn, ("doc", 1), "X")
            """))
        program = Program()
        program.add(SourceModule(path, tmp_path))
        static = program.effects().all_lock_classes()
        locks = LockManager(stats)
        locks.try_acquire(9, ("row", 4), LockMode.X)
        locks.release_all(9)
        assert sanitize.cross_check_lock_summaries(static) == []
        # A class the static analysis never saw is a blind-spot witness.
        locks.try_acquire(10, ("node", 7), LockMode.X)
        locks.release_all(10)
        issues = sanitize.cross_check_lock_summaries(static)
        assert len(issues) == 1
        assert "'node'" in issues[0]


def in_thread(fn):
    """Run ``fn`` to completion on a fresh thread; re-raise its error."""
    box: list = []
    failure: list = []

    def runner():
        try:
            box.append(fn())
        except BaseException as exc:  # noqa: BLE001 - test harness relay
            failure.append(exc)

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    if failure:
        raise failure[0]
    return box[0] if box else None


class TestTrackedLock:
    def test_with_region_pushes_and_pops_the_token(self, armed):
        latch = sanitize.TrackedLock("db.latch")
        assert sanitize.held_lock_tokens() == ()
        with latch:
            assert sanitize.held_lock_tokens() == ("db.latch",)
        assert sanitize.held_lock_tokens() == ()

    def test_rlock_reentry_pushes_once_per_level(self, armed):
        latch = sanitize.TrackedLock("db.latch", threading.RLock())
        with latch:
            with latch:
                assert sanitize.held_lock_tokens() == ("db.latch",
                                                       "db.latch")
            assert sanitize.held_lock_tokens() == ("db.latch",)
        assert sanitize.held_lock_tokens() == ()

    def test_failed_release_keeps_the_held_stack_truthful(self, armed):
        # _latch_sleep releases and re-acquires around a sleep; if the
        # release itself raises, the latch is still held and the token
        # must stay.
        latch = sanitize.TrackedLock("server._state_lock")
        with latch:
            with pytest.raises(RuntimeError):
                sanitize.TrackedLock("server._state_lock").release()
            assert sanitize.held_lock_tokens() == ("server._state_lock",)

    def test_failed_nonblocking_acquire_pushes_nothing(self, armed):
        inner = threading.Lock()
        latch = sanitize.TrackedLock("guard._lock", inner)
        in_thread(inner.acquire)  # held by (defunct) other thread
        assert latch.acquire(blocking=False) is False
        assert sanitize.held_lock_tokens() == ()

    def test_disarmed_latch_is_a_plain_lock(self):
        sanitize.disable()
        latch = sanitize.TrackedLock("db.latch")
        with latch:
            assert sanitize.held_lock_tokens() == ()


class TestLocksetDiscipline:
    KEY = ("Server", "jobs")

    def test_single_thread_init_phase_is_benign(self, armed, stats):
        # build_database-style pre-population: latch-free writes from one
        # thread never trip — Eraser defers judgement while exclusive.
        for _ in range(3):
            sanitize.shared_access(stats, *self.KEY, write=True)
        assert sanitize.witnessed_field_states()[self.KEY] == "exclusive"
        assert stats.get("sanitize.race.lockset") == 0
        assert stats.get("sanitize.checks") == 3

    def test_second_thread_replaces_the_universal_lockset(self, armed,
                                                          stats):
        latch = sanitize.TrackedLock("db.latch")
        sanitize.shared_access(stats, *self.KEY, write=True)  # latch-free

        def worker():
            with latch:
                sanitize.shared_access(stats, *self.KEY, write=True)

        in_thread(worker)
        # C(v) was universal through the exclusive phase: the first
        # second-thread access replaces, not intersects, so the latch-free
        # init does not poison the candidate set.
        assert sanitize.witnessed_locksets()[self.KEY] == \
            frozenset(("db.latch",))
        assert sanitize.witnessed_field_states()[self.KEY] == \
            "shared-modified"
        assert stats.get("sanitize.race.lockset") == 0

    def test_disjoint_locksets_trip_once(self, armed, stats):
        latch_a = sanitize.TrackedLock("server._state_lock")
        latch_b = sanitize.TrackedLock("guard._lock")
        with latch_a:
            sanitize.shared_access(stats, *self.KEY, write=True)

        def worker():
            with latch_b:
                sanitize.shared_access(stats, *self.KEY, write=True)

        in_thread(worker)
        with latch_a, pytest.raises(SanitizerError,
                                    match="no latch consistently guards"):
            sanitize.shared_access(stats, *self.KEY, write=True)
        assert stats.get("sanitize.race.lockset") == 1
        assert sanitize.witnessed_locksets()[self.KEY] == frozenset()
        # Tripped fields report once, not per access.
        with latch_a:
            sanitize.shared_access(stats, *self.KEY, write=True)
        assert stats.get("sanitize.race.lockset") == 1

    def test_consistently_guarded_reads_stay_shared(self, armed, stats):
        latch = sanitize.TrackedLock("stats.stripe")
        with latch:
            sanitize.shared_access(stats, *self.KEY, write=True)

        def reader():
            with latch:
                sanitize.shared_access(stats, *self.KEY, write=False)

        in_thread(reader)
        assert sanitize.witnessed_field_states()[self.KEY] == "shared"
        assert sanitize.witnessed_locksets()[self.KEY] == \
            frozenset(("stats.stripe",))

    def test_extra_held_stands_in_for_released_stripes(self, armed, stats):
        # The stats registry reports its whole-map ops *after* leaving the
        # stripe region (reporting inside would recurse into stats.add);
        # extra_held carries the latch it verifiably held.
        sanitize.shared_access(stats, "StatsRegistry", "_counters",
                               write=True, extra_held=("stats.stripe",))
        in_thread(lambda: sanitize.shared_access(
            stats, "StatsRegistry", "_counters", write=True,
            extra_held=("stats.stripe",)))
        key = ("StatsRegistry", "_counters")
        assert sanitize.witnessed_locksets()[key] == \
            frozenset(("stats.stripe",))
        assert stats.get("sanitize.race.lockset") == 0

    def test_disarmed_access_is_a_no_op(self, stats):
        sanitize.disable()
        sanitize.shared_access(stats, *self.KEY, write=True)
        assert stats.get("sanitize.checks") == 0
        assert sanitize.witnessed_locksets() == {}


class TestFieldGuardCrossCheck:
    def _witness(self, stats, token, cls="DatabaseServer", field="_state"):
        latch = sanitize.TrackedLock(token)

        def access():
            with latch:
                sanitize.shared_access(stats, cls, field, write=True)

        access()
        in_thread(access)

    def test_agreement_is_silent(self, armed, stats):
        self._witness(stats, "server._state_lock")
        triples = [("DatabaseServer", "_state", "_state_lock")]
        assert sanitize.cross_check_field_guards(triples) == []

    def test_wrong_static_guard_is_a_discrepancy(self, armed, stats):
        self._witness(stats, "server._state_lock")
        issues = sanitize.cross_check_field_guards(
            [("DatabaseServer", "_state", "db.latch")])
        assert len(issues) == 1
        assert "never hold it" in issues[0]

    def test_unexercised_fields_are_skipped(self, armed, stats):
        assert sanitize.cross_check_field_guards(
            [("Ghost", "field", "db.latch")]) == []

    def test_tokens_compare_by_tail(self, armed, stats):
        # Static factory-call tokens ('_lock_for()') and runtime family
        # tokens ('lock._lock_for') meet at the tail.
        self._witness(stats, "lock._lock_for", cls="LockStripe",
                      field="granted")
        assert sanitize.cross_check_field_guards(
            [("LockStripe", "granted", "_lock_for()")]) == []


class TestWalSanitizers:
    def test_lsn_regression_trips(self, armed, stats):
        with pytest.raises(SanitizerError, match="regressed"):
            sanitize.check_lsn_monotonic(stats, last_lsn=5, lsn=5)
        assert stats.get("sanitize.lsn_regression") == 1
        sanitize.check_lsn_monotonic(stats, last_lsn=5, lsn=6)

    def test_appends_are_checked_while_armed(self, armed, stats):
        log = LogManager(stats=stats)
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.COMMIT)
        assert stats.get("sanitize.checks") == 2

    def test_truncate_resets_the_watermark(self, armed, stats):
        log = LogManager(stats=stats)
        log.append(1, LogOp.BEGIN)
        log.truncate()
        log.append(1, LogOp.BEGIN)  # LSNs restart; must not trip


class TestEngineWiring:
    def test_txn_end_quiesce_catches_leaked_pin(self, armed):
        db = Database()
        txn = db.txns.begin()
        page_id, _ = db.pool.new_page()  # leak a pin across the txn
        with pytest.raises(SanitizerError, match="still pinned"):
            txn.commit()
        assert db.stats.get("sanitize.pinned_at_txn_end") == 1
        db.pool.unpin(page_id, dirty=True)

    def test_clean_txn_passes_the_quiesce_check(self, armed):
        db = Database()
        db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
        db.run_in_txn(lambda db_, txn:
                      db_.insert("t", (1, "<a><b/></a>"), txn.txn_id))
        assert db.stats.get("sanitize.checks") >= 1
        assert db.stats.get("sanitize.pinned_at_txn_end") == 0

    def test_close_trips_on_active_txn(self, armed):
        db = Database()
        db.txns.begin()
        with pytest.raises(SanitizerError, match="still active"):
            db.close()
        assert db.stats.get("sanitize.active_txns_at_close") == 1

    def test_context_manager_closes_cleanly(self, armed):
        clear_caches()
        with Database() as db:
            db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
            db.insert("t", (1, "<a>x</a>"))
        assert db.stats.get("wal.checkpoints") == 1
        db.close()  # idempotent
        assert db.stats.get("wal.checkpoints") == 1

    def test_all_sanitizer_counters_are_registered(self):
        for name in ("sanitize.checks", "sanitize.double_unpin",
                     "sanitize.pinned_at_txn_end",
                     "sanitize.locks_at_txn_end", "sanitize.lock_order",
                     "sanitize.lsn_regression",
                     "sanitize.active_txns_at_close",
                     "sanitize.race.lockset"):
            assert name in METRICS


class TestShardStamps:
    def test_stamp_is_idempotent_and_restamp_raises(self, armed, stats):
        pool = make_pool(stats)
        sanitize.stamp_shard(pool, 0)
        sanitize.stamp_shard(pool, 0)  # idempotent
        assert sanitize.shard_stamp(pool) == 0
        with pytest.raises(SanitizerError, match="already stamped"):
            sanitize.stamp_shard(pool, 1)

    def test_inherit_propagates_the_source_stamp(self, armed, stats):
        pool = make_pool(stats)
        sanitize.stamp_shard(pool, 3)
        other = make_pool(stats)
        sanitize.inherit_shard(other, pool)
        assert sanitize.shard_stamp(other) == 3
        unstamped = make_pool(stats)
        inheritor = make_pool(stats)
        sanitize.inherit_shard(inheritor, unstamped)
        assert sanitize.shard_stamp(inheritor) is None

    def test_cross_shard_mix_trips(self, armed, stats):
        pool_a = make_pool(stats)
        pool_b = make_pool(stats)
        sanitize.stamp_shard(pool_a, 0)
        sanitize.stamp_shard(pool_b, 1)
        with pytest.raises(SanitizerError, match="different shards"):
            sanitize.check_shard_mix(stats, "Store.migrate", pool_a, pool_b)
        assert stats.get("sanitize.shard.mix") == 1

    def test_same_shard_and_none_entries_are_silent(self, armed, stats):
        pool_a = make_pool(stats)
        pool_b = make_pool(stats)
        sanitize.stamp_shard(pool_a, 0)
        sanitize.stamp_shard(pool_b, 0)
        sanitize.check_shard_mix(stats, "Store.migrate", pool_a, None,
                                 pool_b)
        assert stats.get("sanitize.shard.mix") == 0

    def test_engine_context_stamps_shard_zero(self, armed):
        db = Database()
        assert db.shard.shard_id == 0
        for resource in (db.pool, db.log, db.txns.locks, db.catalog,
                         db.stats):
            assert sanitize.shard_stamp(resource) == 0

    def test_engine_smoke_has_no_cross_shard_mixing(self, armed):
        clear_caches()
        with Database() as db:
            db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
            rid = db.insert("t", (1, "<a><b>x</b></a>"))
            db.delete_row("t", rid)
        assert db.stats.get("sanitize.shard.mix") == 0


class TestResourceFootprintCrossCheck:
    def test_agreement_is_silent(self, armed, stats):
        pool = make_pool(stats)
        sanitize.check_shard_mix(stats, "XmlStore.insert_packed", pool)
        assert ("XmlStore.insert_packed", "pool") in \
            sanitize.witnessed_resource_flows()
        assert sanitize.cross_check_resource_footprints(
            {"XmlStore.insert_packed": {"pool", "stats", "tablespace"}}) \
            == []

    def test_uncovered_kind_is_a_discrepancy(self, armed, stats):
        pool = make_pool(stats)
        sanitize.check_shard_mix(stats, "XmlStore.insert_packed", pool)
        problems = sanitize.cross_check_resource_footprints(
            {"XmlStore.insert_packed": {"log"}})
        assert len(problems) == 1
        assert "'pool'" in problems[0]

    def test_unknown_site_is_a_discrepancy(self, armed, stats):
        pool = make_pool(stats)
        sanitize.check_shard_mix(stats, "Nowhere.op", pool)
        problems = sanitize.cross_check_resource_footprints({})
        assert len(problems) == 1
        assert "no footprint" in problems[0]

    def test_engine_flows_agree_with_the_static_footprints(self, armed):
        """The acceptance cross-check: every flow witnessed during a real
        engine workload is accounted for by the static footprint map."""
        from pathlib import Path

        from repro.analyze.resources import footprint_map

        clear_caches()
        with Database() as db:
            db.create_table("t", [("id", "BIGINT"), ("doc", "XML")])
            rid = db.insert("t", (1, "<a><b>x</b></a>"))
            db.delete_row("t", rid)
        assert sanitize.witnessed_resource_flows()
        static = footprint_map([Path("src")], root=Path.cwd())
        assert sanitize.cross_check_resource_footprints(static) == []
