"""Effect-summary engine: direct effects, fixpoint propagation, witnesses."""

import textwrap

from repro.analyze import effects as fx
from repro.analyze.framework import Program, SourceModule


def analyze(tmp_path, source, relpath="m.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    program = Program()
    program.add(SourceModule(path, tmp_path))
    return program.effects()


class TestDirectEffects:
    def test_pool_fetch_pins(self, tmp_path):
        eff = analyze(tmp_path, """\
            class R:
                def read(self):
                    data = self.pool.fetch(1)
                    self.pool.unpin(1)
            """)
        assert eff.has("m.py::R.read", fx.PINS)
        assert eff.has("m.py::R.read", fx.UNPINS)
        assert not eff.has("m.py::R.read", fx.RETURNS_PIN)

    def test_pin_handed_off_is_returns_pin(self, tmp_path):
        eff = analyze(tmp_path, """\
            class R:
                def grab(self):
                    frame = self.pool.fetch(1)
                    return frame
            """)
        assert eff.has("m.py::R.grab", fx.RETURNS_PIN)

    def test_classified_acquire(self, tmp_path):
        eff = analyze(tmp_path, """\
            class P:
                def hold(self, mgr, txn):
                    mgr.try_acquire(txn, ("row", 1), "X")
            """)
        assert eff.has("m.py::P.hold", fx.acquires("row"))
        assert eff.lock_classes("m.py::P.hold") == {"row"}

    def test_unclassifiable_acquire_is_question_mark(self, tmp_path):
        eff = analyze(tmp_path, """\
            class P:
                def hold(self, mgr, txn, resource):
                    mgr.try_acquire(txn, resource, "X")
            """)
        assert eff.has("m.py::P.hold", fx.acquires("?"))
        assert eff.lock_classes("m.py::P.hold") == set()

    def test_wal_append_needs_log_receiver(self, tmp_path):
        eff = analyze(tmp_path, """\
            class W:
                def record(self, rec):
                    self.log.append(rec)
                def collect(self, lines):
                    lines.append(1)
            """)
        assert eff.has("m.py::W.record", fx.WRITES_WAL)
        assert not eff.has("m.py::W.collect", fx.WRITES_WAL)

    def test_raise_statement_is_may_raise(self, tmp_path):
        eff = analyze(tmp_path, """\
            def boom():
                raise ValueError("x")
            def calm():
                return 1
            """)
        assert eff.has("m.py::boom", fx.MAY_RAISE)
        assert not eff.has("m.py::calm", fx.MAY_RAISE)


class TestFixpoint:
    def test_effects_propagate_through_call_chains(self, tmp_path):
        eff = analyze(tmp_path, """\
            class A:
                def leaf(self, mgr, txn):
                    mgr.try_acquire(txn, ("doc", 1), "S")
                def mid(self, mgr, txn):
                    self.leaf(mgr, txn)
                def top(self, mgr, txn):
                    self.mid(mgr, txn)
            """)
        for fid in ("m.py::A.leaf", "m.py::A.mid", "m.py::A.top"):
            assert eff.has(fid, fx.acquires("doc"))

    def test_may_raise_is_evidence_based(self, tmp_path):
        # An unresolved call (dynamic receiver) contributes nothing.
        eff = analyze(tmp_path, """\
            def calls_unknown(thing):
                thing.do_something()
            """)
        assert not eff.has("m.py::calls_unknown", fx.MAY_RAISE)

    def test_recursive_functions_terminate(self, tmp_path):
        eff = analyze(tmp_path, """\
            def ping(n):
                if n:
                    pong(n - 1)
                raise RuntimeError
            def pong(n):
                ping(n)
            """)
        assert eff.has("m.py::ping", fx.MAY_RAISE)
        assert eff.has("m.py::pong", fx.MAY_RAISE)

    def test_returns_pin_propagates_only_through_forwarders(self, tmp_path):
        eff = analyze(tmp_path, """\
            class R:
                def grab(self):
                    frame = self.pool.fetch(1)
                    return frame
                def forward(self):
                    return self.grab()
                def consume(self):
                    frame = self.grab()
                    self.pool.unpin(1)
            """)
        assert eff.has("m.py::R.forward", fx.RETURNS_PIN)
        assert not eff.has("m.py::R.consume", fx.RETURNS_PIN)


class TestWitnessPaths:
    def test_path_descends_to_the_primitive_site(self, tmp_path):
        eff = analyze(tmp_path, """\
            class A:
                def leaf(self):
                    raise RuntimeError("boom")
                def mid(self):
                    self.leaf()
                def top(self):
                    self.mid()
            """)
        path = eff.witness_path("m.py::A.top", fx.MAY_RAISE)
        assert len(path) == 3
        assert path[0][2].startswith("A.top calls")
        assert path[1][2].startswith("A.mid calls")
        assert "raise" in path[2][2]
        rendered = eff.render_path("m.py::A.top", fx.MAY_RAISE)
        assert all(line.startswith("m.py:") for line in rendered)

    def test_primitive_effect_has_single_step_path(self, tmp_path):
        eff = analyze(tmp_path, """\
            def boom():
                raise ValueError
            """)
        path = eff.witness_path("m.py::boom", fx.MAY_RAISE)
        assert len(path) == 1

    def test_absent_effect_has_empty_path(self, tmp_path):
        eff = analyze(tmp_path, """\
            def calm():
                return 1
            """)
        assert eff.witness_path("m.py::calm", fx.MAY_RAISE) == []

    def test_all_lock_classes_aggregates(self, tmp_path):
        eff = analyze(tmp_path, """\
            class P:
                def a(self, mgr, txn):
                    mgr.try_acquire(txn, ("row", 1), "X")
                def b(self, mgr, txn):
                    mgr.try_acquire(txn, ("doc", 1), "X")
            """)
        assert eff.all_lock_classes() == {"row", "doc"}
