"""RACE001/RACE002/LATCH001 against seeded fixture trees.

The fixtures are deliberately racy (or deliberately disciplined) snippets
written to ``tmp_path`` — the analyzer never imports them.  Each test pins
one rule: where the finding lands, what the ``--explain`` thread-root
witness says, and which disciplined idioms must stay quiet.
"""

import textwrap

from repro.analyze import main, run_checkers
from repro.analyze.baseline import Baseline, BaselineError
from repro.analyze.races import LatchBlockingChecker, SharedStateRaceChecker


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def run_on(tmp_path, checker, relpath, source):
    path = write(tmp_path, relpath, source)
    return run_checkers([checker], [path], root=tmp_path)


def line_of(path, needle):
    for number, text in enumerate(path.read_text().splitlines(), start=1):
        if needle in text:
            return number
    raise AssertionError(f"{needle!r} not in {path}")


RACY_WRITE = """\
    import threading

    class Server:
        def start(self):
            for index in range(4):
                threading.Thread(target=self._worker_loop).start()

        def _worker_loop(self):
            while True:
                self._step()

        def _step(self):
            self.jobs += 1

        def view(self):
            with self._state_lock:
                return self.jobs
    """


class TestRace001:
    def test_unguarded_write_on_a_worker_thread_fires(self, tmp_path):
        path = write(tmp_path, "mod.py", RACY_WRITE)
        findings = run_checkers([SharedStateRaceChecker()], [path],
                                root=tmp_path)
        assert [f.code for f in findings] == ["RACE001"]
        finding = findings[0]
        assert finding.scope == "Server._step"
        assert finding.detail == "Server.jobs/write"
        assert finding.line == line_of(path, "self.jobs += 1")
        assert "written outside its inferred guard '_state_lock'" \
            in finding.message
        assert "Server._worker_loop" in finding.message

    def test_explain_witness_walks_from_the_spawn_site(self, tmp_path):
        findings = run_on(tmp_path, SharedStateRaceChecker(), "mod.py",
                          RACY_WRITE)
        witness = findings[0].call_path
        assert len(witness) == 3
        assert "spawns threads running Server._worker_loop" in witness[0]
        assert "Server._worker_loop calls self._step()" in witness[1]
        assert "Server.jobs written with no latch held" in witness[2]

    def test_unguarded_read_of_a_guarded_field_fires(self, tmp_path):
        findings = run_on(tmp_path, SharedStateRaceChecker(), "mod.py", """\
            import threading

            class Server:
                def start(self):
                    for index in range(4):
                        threading.Thread(target=self._worker).start()

                def _worker(self):
                    with self._state_lock:
                        self.jobs += 1

                def health(self):
                    return self.jobs
            """)
        assert [f.code for f in findings] == ["RACE001"]
        assert findings[0].detail == "Server.jobs/read"
        assert findings[0].scope == "Server.health"
        # The reader runs on main; the witness shows the *writer* thread
        # it races with.
        witness = findings[0].call_path
        assert any("accesses Server.jobs on that thread" in line
                   for line in witness)
        assert "Server.jobs read with no latch held" in witness[-1]

    def test_wholly_unguarded_field_reports_writes_only(self, tmp_path):
        findings = run_on(tmp_path, SharedStateRaceChecker(), "mod.py", """\
            import threading

            class Server:
                def start(self):
                    for index in range(4):
                        threading.Thread(target=self._worker).start()

                def _worker(self):
                    self.jobs += 1

                def view(self):
                    return self.jobs
            """)
        assert [f.detail for f in findings] == ["Server.jobs/write"]
        assert "no single latch guards it" in findings[0].message

    def test_fully_latched_class_is_clean(self, tmp_path):
        findings = run_on(tmp_path, SharedStateRaceChecker(), "mod.py", """\
            import threading

            class Server:
                def start(self):
                    for index in range(4):
                        threading.Thread(target=self._worker).start()

                def _worker(self):
                    with self._state_lock:
                        self.jobs += 1

                def view(self):
                    with self._state_lock:
                        return self.jobs
            """)
        assert findings == []

    def test_repr_reads_are_exempt(self, tmp_path):
        findings = run_on(tmp_path, SharedStateRaceChecker(), "mod.py", """\
            import threading

            class Server:
                def start(self):
                    for index in range(4):
                        threading.Thread(target=self._worker).start()

                def _worker(self):
                    with self._state_lock:
                        self.jobs += 1

                def __repr__(self):
                    return "<Server %d>" % self.jobs
            """)
        assert findings == []


RACE002_SEED = """\
    import threading

    class Server:
        def start(self):
            for index in range(2):
                threading.Thread(target=self._drain).start()

        def _drain(self):
            with self._state_lock:
                self.state = "draining"

        def submit(self):
            with self._state_lock:
                if self.state != "running":
                    return None
            with self._state_lock:
                self.state = "busy"
            return True
    """


class TestRace002:
    def test_check_then_act_across_guard_release_fires(self, tmp_path):
        path = write(tmp_path, "mod.py", RACE002_SEED)
        findings = run_checkers([SharedStateRaceChecker()], [path],
                                root=tmp_path)
        assert [f.code for f in findings] == ["RACE002"]
        finding = findings[0]
        assert finding.scope == "Server.submit"
        assert finding.detail == "Server.state/check-then-act"
        assert finding.line == line_of(path, 'self.state = "busy"')
        assert "may be stale" in finding.message
        assert "tested under '_state_lock'" in finding.call_path[0]
        assert "guard released and re-acquired" in finding.call_path[1]

    def test_double_checked_idiom_is_the_cure(self, tmp_path):
        findings = run_on(tmp_path, SharedStateRaceChecker(), "mod.py", """\
            import threading

            class Server:
                def start(self):
                    for index in range(2):
                        threading.Thread(target=self._drain).start()

                def _drain(self):
                    with self._state_lock:
                        self.state = "draining"

                def submit(self):
                    with self._state_lock:
                        if self.state != "running":
                            return None
                    with self._state_lock:
                        if self.state != "running":
                            return None
                        self.state = "busy"
                    return True
            """)
        assert findings == []


class TestLatch001:
    def test_direct_sleep_under_a_lock_fires(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            import time

            class Pacer:
                def nap(self):
                    with self._lock:
                        time.sleep(0.01)
            """)
        findings = run_checkers([LatchBlockingChecker()], [path],
                                root=tmp_path)
        assert [f.code for f in findings] == ["LATCH001"]
        finding = findings[0]
        assert finding.scope == "Pacer.nap"
        assert finding.detail == "_lock/time.sleep"
        assert "sleep() suspends the thread" in finding.message
        assert "Pacer.nap acquires '_lock'" in finding.call_path[0]

    def test_blocking_callee_is_proven_via_effect_summaries(self, tmp_path):
        findings = run_on(tmp_path, LatchBlockingChecker(), "mod.py", """\
            class Waiter:
                def hold(self):
                    with self._lock:
                        self._settle()

                def _settle(self):
                    self._done.wait(1.0)
            """)
        assert [f.code for f in findings] == ["LATCH001"]
        finding = findings[0]
        assert "may block (via Waiter._settle)" in finding.message
        # acquire line + call line + the summaries' witness chain into
        # the callee that actually waits.
        assert len(finding.call_path) >= 3
        assert any("wait" in line for line in finding.call_path[2:])

    def test_engine_latch_may_flush_by_design(self, tmp_path):
        findings = run_on(tmp_path, LatchBlockingChecker(), "mod.py", """\
            class Engine:
                def checkpoint(self):
                    with self.db.latch:
                        self.pool.flush_all()
            """)
        assert findings == []

    def test_non_latch_lock_must_not_flush(self, tmp_path):
        findings = run_on(tmp_path, LatchBlockingChecker(), "mod.py", """\
            class Engine:
                def hasty(self):
                    with self._io_lock:
                        self.pool.flush_all()
            """)
        assert [f.code for f in findings] == ["LATCH001"]
        assert "forces pages to disk" in findings[0].message
        assert findings[0].detail == "_io_lock/self.pool.flush_all"

    def test_lock_free_sleep_is_fine(self, tmp_path):
        findings = run_on(tmp_path, LatchBlockingChecker(), "mod.py", """\
            import time

            class Pacer:
                def nap(self):
                    time.sleep(0.01)
            """)
        assert findings == []


class TestCliAndBaseline:
    def test_explain_renders_the_thread_root_witness(self, tmp_path, capsys):
        write(tmp_path, "tree/mod.py", RACY_WRITE)
        assert main([str(tmp_path / "tree"), "--select", "RACE001",
                     "--explain"]) == 2
        out = capsys.readouterr().out
        assert "RACE001" in out
        assert "spawns threads running Server._worker_loop" in out
        assert "with no latch held" in out

    def test_race_baseline_entries_must_state_a_runtime_claim(
            self, tmp_path, capsys):
        write(tmp_path, "tree/mod.py", RACY_WRITE)
        baseline = tmp_path / "baseline.txt"
        assert main([str(tmp_path / "tree"), "--select", "thread-races",
                     "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        # A bare remark is enough for PIN/LOCK codes but not for races.
        text = baseline.read_text().replace(
            "# TODO: document why this is intentional", "# looks fine")
        baseline.write_text(text)
        try:
            Baseline.load(baseline)
        except BaselineError as exc:
            assert "reason:" in str(exc)
        else:
            raise AssertionError("undocumented RACE001 entry loaded")
        assert main([str(tmp_path / "tree"),
                     "--baseline", str(baseline)]) == 1
        assert "reason:" in capsys.readouterr().err

        baseline.write_text(text.replace(
            "# looks fine",
            "# reason: single writer by construction; verified by the "
            "lockset sanitizer"))
        assert main([str(tmp_path / "tree"), "--select", "thread-races",
                     "--baseline", str(baseline)]) == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_prune_stale_rewrites_the_baseline(self, tmp_path, capsys):
        tree = write(tmp_path, "tree/mod.py", RACY_WRITE)
        baseline = tmp_path / "baseline.txt"
        assert main([str(tmp_path / "tree"), "--select", "thread-races",
                     "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        baseline.write_text(baseline.read_text().replace(
            "# TODO: document why this is intentional",
            "# reason: fixture for the prune test"))
        # Fix the race; the entry is now stale and --prune-stale drops it
        # while the header comments survive.
        tree.write_text(textwrap.dedent(RACY_WRITE).replace(
            "        self.jobs += 1",
            "        with self._state_lock:\n            self.jobs += 1"))
        assert main([str(tmp_path / "tree"), "--select", "thread-races",
                     "--baseline", str(baseline), "--prune-stale"]) == 0
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "pruned 1 stale entry" in out
        text = baseline.read_text()
        assert "RACE001" not in text
        assert "# repro.analyze suppression baseline." in text

    def test_shipped_sources_are_race_clean(self):
        """The acceptance gate: the race checkers exit 0 on ``src``."""
        assert main(["src", "--select", "RACE001,RACE002,LATCH001"]) == 0
