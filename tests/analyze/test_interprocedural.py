"""Interprocedural findings no single-function analysis could produce.

Every fixture here splits the violation across at least two functions —
the acquisition, the hazard, and the primitive evidence live in different
bodies — and asserts both that the right code fires and that ``--explain``
reconstructs the witnessing call chain down to the primitive site.
"""

import json
import textwrap

from repro.analyze import main, run_checkers
from repro.analyze.excsafety import ExceptionSafetyChecker
from repro.analyze.lockorder import LockOrderChecker
from repro.analyze.pins import PinLeakChecker
from repro.analyze.txnscope import TxnScopeChecker
from repro.analyze.waldiscipline import WalDisciplineChecker


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def run_on(tmp_path, checker, relpath, source):
    path = write(tmp_path, relpath, source)
    return run_checkers([checker], [path], root=tmp_path)


class TestInterproceduralPins:
    def test_pin_through_helper_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "store.py", """\
            class Store:
                def _grab(self, pid):
                    frame = self.pool.fetch(pid)
                    return frame
                def read(self, pid):
                    frame = self._grab(pid)
                    value = frame.decode()
                    return value
            """)
        # _grab itself hands off (clean); read inherits the pin and leaks
        # it — only the decoded value escapes, never the frame.
        codes = [f.code for f in findings]
        assert codes == ["PIN001"]
        assert findings[0].scope == "Store.read"
        # --explain path: the call site, then the primitive pin.
        assert len(findings[0].call_path) == 2
        assert "self._grab" in findings[0].call_path[0]
        assert "pool.fetch" in findings[0].call_path[1]

    def test_unpinned_helper_result_outside_finally_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "store.py", """\
            class Store:
                def _grab(self, pid):
                    return self.pool.fetch(pid)
                def read(self, pid):
                    frame = self._grab(pid)
                    value = frame.decode()
                    self.pool.unpin(pid)
                    return value
            """)
        assert [f.code for f in findings] == ["PIN002"]
        assert findings[0].scope == "Store.read"

    def test_finally_protected_helper_pin_is_clean(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "store.py", """\
            class Store:
                def _grab(self, pid):
                    return self.pool.fetch(pid)
                def read(self, pid):
                    frame = self._grab(pid)
                    try:
                        return frame.decode()
                    finally:
                        self.pool.unpin(pid)
            """)
        assert findings == []

    def test_forwarding_the_pin_again_is_clean(self, tmp_path):
        findings = run_on(tmp_path, PinLeakChecker(), "store.py", """\
            class Store:
                def _grab(self, pid):
                    return self.pool.fetch(pid)
                def grab_for_caller(self, pid):
                    return self._grab(pid)
            """)
        assert findings == []


class TestInterproceduralLockOrder:
    def test_cycle_through_helpers_is_flagged(self, tmp_path):
        # Neither function acquires two classes directly; the opposite
        # orders only exist through the helpers' summaries.
        findings = run_on(tmp_path, LockOrderChecker(), "locks.py", """\
            class P:
                def _row(self, mgr, txn):
                    mgr.try_acquire(txn, ("row", 1), "X")
                def _doc(self, mgr, txn):
                    mgr.try_acquire(txn, ("doc", 1), "X")
                def forward(self, mgr, txn):
                    self._row(mgr, txn)
                    self._doc(mgr, txn)
                def backward(self, mgr, txn):
                    self._doc(mgr, txn)
                    self._row(mgr, txn)
            """)
        assert [f.code for f in findings] == ["LOCK001"]
        assert findings[0].detail == "doc/row"
        assert findings[0].call_path  # interprocedural witness attached

    def test_consistent_order_through_helpers_is_clean(self, tmp_path):
        findings = run_on(tmp_path, LockOrderChecker(), "locks.py", """\
            class P:
                def _row(self, mgr, txn):
                    mgr.try_acquire(txn, ("row", 1), "X")
                def _doc(self, mgr, txn):
                    mgr.try_acquire(txn, ("doc", 1), "X")
                def one(self, mgr, txn):
                    self._row(mgr, txn)
                    self._doc(mgr, txn)
                def two(self, mgr, txn):
                    self._row(mgr, txn)
                    self._doc(mgr, txn)
            """)
        assert findings == []

    def test_handler_lock_via_callee_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, LockOrderChecker(), "locks.py", """\
            class P:
                def _relock(self, mgr, txn):
                    mgr.try_acquire(txn, ("row", 1), "X")
                def recover(self, mgr, txn):
                    try:
                        work()
                    except KeyError:
                        self._relock(mgr, txn)
            """)
        assert [f.code for f in findings] == ["LOCK002"]
        assert "self._relock" in findings[0].message
        assert any("try_acquire" in step for step in findings[0].call_path)


class TestInterproceduralWal:
    def test_flush_via_helper_without_append_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, WalDisciplineChecker(), "ckpt.py", """\
            class Pool:
                def _force(self):
                    self.disk_flush_page(1)

                def flush_page(self, pid):
                    pass

            class Engine:
                def _sync(self, pool):
                    pool.flush_page(3)
                def quiesce(self, pool):
                    self.kick(pool)
                def kick(self, pool):
                    self._sync(pool)
            """)
        # Engine._sync flushes directly (WAL001 primitive); Engine.kick and
        # Engine.quiesce reach it through calls with no preceding append.
        codes = sorted(f.code for f in findings)
        assert codes == ["WAL001", "WAL001", "WAL001"]
        by_scope = {f.scope: f for f in findings}
        assert set(by_scope) == {"Engine._sync", "Engine.kick",
                                 "Engine.quiesce"}
        assert by_scope["Engine.quiesce"].call_path  # chain down to flush

    def test_flush_helper_dominated_by_append_is_clean(self, tmp_path):
        findings = run_on(tmp_path, WalDisciplineChecker(), "ckpt.py", """\
            class Engine:
                def _sync(self, pool):
                    self.log.append(("CKPT",))
                    pool.flush_page(3)
                def quiesce(self, pool):
                    self.log.append(("CKPT",))
                    self._sync(pool)
            """)
        assert findings == []

    def test_wal_writing_callee_dominates(self, tmp_path):
        # The dominator itself is interprocedural: _harden writes the WAL,
        # so calling it before the flush satisfies the discipline.
        findings = run_on(tmp_path, WalDisciplineChecker(), "ckpt.py", """\
            class Engine:
                def _harden(self):
                    self.log.append(("CKPT",))
                def quiesce(self, pool):
                    self._harden()
                    pool.flush_page(3)
            """)
        assert findings == []


class TestExceptionSafety:
    SOURCE = """\
        class Codec:
            def decode(self, raw):
                if not raw:
                    raise ValueError("empty page")
                return raw

        class Store:
            def read(self, pid):
                data = self.pool.fetch(pid)
                value = self.decode(data)
                self.pool.unpin(pid)
                return value

            def decode(self, raw):
                if not raw:
                    raise ValueError("empty page")
                return raw
        """

    def test_raiser_between_pin_and_unpin_is_exc001(self, tmp_path):
        findings = run_on(tmp_path, ExceptionSafetyChecker(),
                          "store.py", self.SOURCE)
        assert [f.code for f in findings] == ["EXC001"]
        finding = findings[0]
        assert finding.scope == "Store.read"
        assert finding.severity.value == "error"
        # The chain names the pin, the risky call, and ends at the raise.
        assert "pin" in finding.call_path[0]
        assert "self.decode" in finding.call_path[1]
        assert "raise" in finding.call_path[-1]

    def test_finally_protected_window_is_clean(self, tmp_path):
        findings = run_on(tmp_path, ExceptionSafetyChecker(), "store.py", """\
            class Store:
                def decode(self, raw):
                    if not raw:
                        raise ValueError
                    return raw
                def read(self, pid):
                    data = self.pool.fetch(pid)
                    try:
                        return self.decode(data)
                    finally:
                        self.pool.unpin(pid)
            """)
        assert findings == []

    def test_raiser_after_release_is_clean(self, tmp_path):
        findings = run_on(tmp_path, ExceptionSafetyChecker(), "store.py", """\
            class Store:
                def decode(self, raw):
                    if not raw:
                        raise ValueError
                    return raw
                def read(self, pid):
                    data = self.pool.fetch(pid)
                    self.pool.unpin(pid)
                    return self.decode(data)
            """)
        assert findings == []

    def test_raiser_between_lock_and_release_is_exc002(self, tmp_path):
        findings = run_on(tmp_path, ExceptionSafetyChecker(), "txn.py", """\
            class Writer:
                def _validate(self, row):
                    if row is None:
                        raise ValueError("no row")
                def update(self, mgr, txn, row):
                    mgr.try_acquire(txn, ("row", 1), "X")
                    self._validate(row)
                    mgr.release_all(txn)
            """)
        assert [f.code for f in findings] == ["EXC002"]
        assert findings[0].severity.value == "warning"
        assert "self._validate" in findings[0].call_path[1]

    def test_lock_without_local_release_is_out_of_scope(self, tmp_path):
        # Txn-end release owns the lifetime; nothing to report here.
        findings = run_on(tmp_path, ExceptionSafetyChecker(), "txn.py", """\
            class Writer:
                def _validate(self, row):
                    if row is None:
                        raise ValueError
                def update(self, mgr, txn, row):
                    mgr.try_acquire(txn, ("row", 1), "X")
                    self._validate(row)
            """)
        assert findings == []


class TestTxnScope:
    def test_unscoped_public_mutator_is_flagged(self, tmp_path):
        findings = run_on(tmp_path, TxnScopeChecker(), "engine.py", """\
            class Database:
                def rename_table(self, old, new):
                    self._rewrite_catalog(old, new)
                def _rewrite_catalog(self, old, new):
                    self.log.append(self.next_txn, ("RENAME", old, new))
            """)
        assert [f.code for f in findings] == ["TXN001"]
        finding = findings[0]
        assert finding.detail == "Database.rename_table"
        assert "self._rewrite_catalog" in finding.call_path[0]
        assert "writes WAL" in finding.call_path[-1]

    def test_txn_id_parameter_is_a_scope(self, tmp_path):
        findings = run_on(tmp_path, TxnScopeChecker(), "engine.py", """\
            class Database:
                def insert(self, table, row, txn_id):
                    self.log.append(txn_id, ("INSERT", table, row))
            """)
        assert findings == []

    def test_begin_call_establishes_scope(self, tmp_path):
        findings = run_on(tmp_path, TxnScopeChecker(), "engine.py", """\
            class Database:
                def rename_table(self, old, new):
                    txn = self.txns.begin()
                    self.log.append(txn.txn_id, ("RENAME", old, new))
            """)
        assert findings == []

    def test_autonomous_ddl_append_is_exempt(self, tmp_path):
        findings = run_on(tmp_path, TxnScopeChecker(), "engine.py", """\
            class Database:
                def create_table(self, name, columns):
                    self.log.append(-1, ("DDL", name, columns))
            """)
        assert findings == []

    def test_delegating_to_a_scoped_helper_is_clean(self, tmp_path):
        # The reachability walk stops at barriers: the helper receives a
        # txn_id, so the mutation below it is the helper's business.
        findings = run_on(tmp_path, TxnScopeChecker(), "engine.py", """\
            class Database:
                def compact(self):
                    self._rewrite(self.current_txn)
                def _rewrite(self, txn_id):
                    self.log.append(txn_id, ("COMPACT",))
            """)
        assert findings == []

    def test_private_methods_are_not_entry_points(self, tmp_path):
        findings = run_on(tmp_path, TxnScopeChecker(), "engine.py", """\
            class Database:
                def _internal(self):
                    self.log.append(self.cur, ("X",))
            """)
        assert findings == []


class TestCli:
    FIXTURE = """\
        class Codec:
            def decode(self, raw):
                if not raw:
                    raise ValueError("empty")
                return raw

        class Store:
            def decode(self, raw):
                if not raw:
                    raise ValueError("empty")
                return raw
            def read(self, pid):
                data = self.pool.fetch(pid)
                value = self.decode(data)
                self.pool.unpin(pid)
                return value
        """

    def test_explain_prints_call_paths(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "store.py", self.FIXTURE)
        exit_code = main(["store.py", "--select", "EXC001", "--explain"])
        out = capsys.readouterr().out
        assert exit_code == 2
        assert "EXC001" in out
        # Indented witness lines under the finding.
        assert "    store.py:" in out
        assert "raise" in out

    def test_without_explain_no_call_paths(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "store.py", self.FIXTURE)
        exit_code = main(["store.py", "--select", "EXC001"])
        out = capsys.readouterr().out
        assert exit_code == 2
        assert "EXC001" in out
        assert "    store.py:" not in out

    def test_json_includes_fingerprint_and_call_path(self, tmp_path, capsys,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "store.py", self.FIXTURE)
        exit_code = main(["store.py", "--select", "EXC001",
                          "--format", "json"])
        assert exit_code == 2
        payload = json.loads(capsys.readouterr().out)
        [finding] = payload["findings"]
        assert finding["fingerprint"].startswith("EXC001:store.py:")
        assert len(finding["call_path"]) >= 2
        assert "raise" in finding["call_path"][-1]

    def test_list_checkers_prints_per_code_descriptions(self, capsys):
        assert main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for code in ("PIN001", "PIN002", "LOCK001", "LOCK002", "WAL001",
                     "WAL002", "EXC001", "EXC002", "TXN001"):
            assert code in out
        # Per-code one-liners are indented under their checker.
        assert "  EXC001" in out
        assert "  TXN001" in out
