"""Suppression baseline: load format, round-trip, staleness."""

import pytest

from repro.analyze.baseline import (Baseline, BaselineError, BaselineEntry,
                                    write_baseline)
from repro.analyze.findings import Finding


def make_finding(code="PIN001", path="m.py", scope="A.f", detail="x",
                 line=3):
    return Finding(code=code, checker="t", path=path, line=line, column=0,
                   message="msg", scope=scope, detail=detail)


class TestLoad:
    def test_loads_entries_with_reasons(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(
            "# header comment\n"
            "\n"
            "PIN001  m.py:A.f:x  # caller owns the unpin\n")
        baseline = Baseline.load(path)
        assert list(baseline.entries) == ["PIN001:m.py:A.f:x"]
        entry = baseline.entries["PIN001:m.py:A.f:x"]
        assert entry.reason == "caller owns the unpin"
        assert entry.lineno == 3

    def test_entry_without_reason_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("PIN001  m.py:A.f:x\n")
        with pytest.raises(BaselineError, match="no reason"):
            Baseline.load(path)

    def test_entry_with_empty_reason_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("PIN001  m.py:A.f:x  #   \n")
        with pytest.raises(BaselineError, match="no reason"):
            Baseline.load(path)

    def test_missing_fingerprint_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("PIN001  # reason\n")
        with pytest.raises(BaselineError, match="expected"):
            Baseline.load(path)

    def test_fingerprint_may_contain_spaces(self, tmp_path):
        # WAL002 details quote source text ('except Exception:'), so the
        # fingerprint is everything after the first whitespace run.
        path = tmp_path / "baseline.txt"
        path.write_text("WAL002  m.py:f:except Exception:  # best effort\n")
        baseline = Baseline.load(path)
        assert "WAL002:m.py:f:except Exception:" in baseline.entries

    def test_error_message_carries_file_and_line(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("# ok\nBAD\n")
        with pytest.raises(BaselineError, match=r"baseline\.txt:2"):
            Baseline.load(path)


class TestSplitAndStaleness:
    def test_split_partitions_by_fingerprint(self):
        known = make_finding(detail="known")
        fresh = make_finding(detail="fresh")
        baseline = Baseline([BaselineEntry(known.fingerprint, "reviewed")])
        new, suppressed = baseline.split([known, fresh])
        assert new == [fresh]
        assert suppressed == [known]

    def test_suppression_ignores_line_moves(self):
        baseline = Baseline([BaselineEntry(
            make_finding(line=3).fingerprint, "reviewed")])
        moved = make_finding(line=99)  # same code/path/scope/detail
        assert baseline.suppresses(moved)

    def test_unmatched_entries_are_stale(self):
        used = BaselineEntry("PIN001:m.py:A.f:x", "reviewed")
        unused = BaselineEntry("WAL001:n.py:B.g:y", "obsolete")
        baseline = Baseline([used, unused])
        baseline.split([make_finding()])
        assert baseline.stale_entries() == [unused]

    def test_no_stale_entries_when_all_match(self):
        baseline = Baseline([BaselineEntry(
            make_finding().fingerprint, "reviewed")])
        baseline.split([make_finding()])
        assert baseline.stale_entries() == []


class TestWriteRoundTrip:
    def test_write_then_load_suppresses_the_findings(self, tmp_path):
        findings = [make_finding(detail="a"),
                    make_finding(code="WAL001", detail="b")]
        path = tmp_path / "baseline.txt"
        count = write_baseline(path, findings)
        assert count == 2
        baseline = Baseline.load(path)  # TODO reasons still count as reasons
        new, suppressed = baseline.split(findings)
        assert new == []
        assert len(suppressed) == 2

    def test_write_deduplicates_identical_fingerprints(self, tmp_path):
        findings = [make_finding(line=1), make_finding(line=2)]
        path = tmp_path / "baseline.txt"
        assert write_baseline(path, findings) == 1

    def test_written_file_documents_the_reason_rule(self, tmp_path):
        path = tmp_path / "baseline.txt"
        write_baseline(path, [make_finding()])
        text = path.read_text()
        assert "Every entry must end with" in text
        assert "TODO: document why this is intentional" in text
