"""Soundness property for the path-containment test.

If ``contains(index, query)`` returns True, then on every sample document
the query's matches must be a subset of the index's matches — otherwise the
index would be used as an incomplete candidate enumerator and results would
be silently lost.  (The converse — completeness of the test — is not
required; a missed mapping only costs an index opportunity.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XPathUnsupportedError
from repro.indexes.containment import contains
from repro.lang.parser import parse_path
from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.quickxscan import evaluate

_TAGS = ["a", "b", "c"]


@st.composite
def linear_paths(draw):
    n_steps = draw(st.integers(min_value=1, max_value=3))
    out = []
    for _ in range(n_steps):
        out.append(draw(st.sampled_from(["/", "//"])))
        out.append(draw(st.sampled_from(_TAGS + ["*"])))
    return "".join(out)


@st.composite
def sample_documents(draw, max_depth=4):
    def build(depth):
        tag = draw(st.sampled_from(_TAGS))
        if depth >= max_depth:
            return f"<{tag}>x</{tag}>"
        n = draw(st.integers(min_value=0, max_value=2))
        body = "".join(build(depth + 1) for _ in range(n)) or "x"
        return f"<{tag}>{body}</{tag}>"

    return build(0)


class TestContainmentSoundness:
    @settings(max_examples=250, deadline=None)
    @given(linear_paths(), linear_paths(), sample_documents())
    def test_contains_implies_match_subset(self, index_text, query_text,
                                           doc):
        index_path = parse_path(index_text)
        query_path = parse_path(query_text)
        try:
            claimed = contains(index_path, query_path)
        except XPathUnsupportedError:
            return
        if not claimed:
            return
        events = list(assign_node_ids(parse(doc).events()))
        query_matches = {i.node_id for i in
                         evaluate(query_text, iter(events))}
        index_matches = {i.node_id for i in
                         evaluate(index_text, iter(events))}
        assert query_matches <= index_matches, \
            (index_text, query_text, doc)

    def test_reflexive(self):
        for text in ("/a/b", "//a", "//a//b", "/a/*/c"):
            path = parse_path(text)
            assert contains(path, path)
