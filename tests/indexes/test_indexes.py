"""Tests for XPath value indexes: definitions, keygen, containment, manager."""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import TypeError_, XPathUnsupportedError
from repro.indexes.containment import (PathRelation, child_only_suffix_depth,
                                       contains, relate)
from repro.indexes.definition import (XPathIndexDefinition,
                                      decode_entry_value, encode_entry_value)
from repro.indexes.keygen import generate_keys, record_local_events
from repro.indexes.manager import XPathValueIndex
from repro.lang.parser import parse_path
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.rdb.tablespace import Rid
from repro.xdm.names import NameTable
from repro.xmlstore.store import XmlStore

CATALOG = (
    "<Catalog><Categories>"
    "<Product id='p1'><ProductName>Widget</ProductName>"
    "<RegPrice>120.5</RegPrice><Discount>0.15</Discount></Product>"
    "<Product id='p2'><ProductName>Gadget</ProductName>"
    "<RegPrice>80</RegPrice><Discount>0.05</Discount></Product>"
    "</Categories></Catalog>"
)


@pytest.fixture
def pool():
    return BufferPool(Disk(page_size=4096, stats=StatsRegistry()), 128)


@pytest.fixture
def names():
    return NameTable()


@pytest.fixture
def store(pool, names):
    return XmlStore(pool, names, record_limit=64)


class TestDefinition:
    def test_valid_definition(self):
        d = XPathIndexDefinition("ix", "/Catalog//ProductName", "string")
        assert d.key_type_name == "string"

    def test_key_types(self):
        for t in ("double", "decfloat", "string", "date", "bigint"):
            XPathIndexDefinition("ix", "//x", t)
        with pytest.raises(TypeError_):
            XPathIndexDefinition("ix", "//x", "blob")

    def test_rejects_predicates(self):
        with pytest.raises(XPathUnsupportedError):
            XPathIndexDefinition("ix", "/a[b]/c", "string")

    def test_rejects_relative(self):
        with pytest.raises(XPathUnsupportedError):
            XPathIndexDefinition("ix", "a/b", "string")

    def test_rejects_kind_tests(self):
        with pytest.raises(XPathUnsupportedError):
            XPathIndexDefinition("ix", "/a/text()", "string")

    def test_convert_key_skips_bad_values(self):
        d = XPathIndexDefinition("ix", "//x", "double")
        assert d.convert_key("1.5") is not None
        assert d.convert_key("not a number") is None

    def test_entry_value_roundtrip(self):
        payload = encode_entry_value(7, b"\x02\x04", Rid(3, 1))
        hit = decode_entry_value(payload)
        assert (hit.docid, hit.node_id, hit.rid) == (7, b"\x02\x04", Rid(3, 1))


class TestRecordLocalEvents:
    def test_context_path_replayed(self, store):
        store.insert_document_text(1, CATALOG)
        rids = store.node_index.record_rids(1)
        assert len(rids) > 1
        # Each record's local stream is a well-formed document fragment.
        from repro.xdm.events import EventKind
        for rid in rids:
            events = list(record_local_events(store.read_record(rid),
                                              store.names))
            assert events[0].kind is EventKind.DOC_START
            assert events[-1].kind is EventKind.DOC_END
            opens = sum(1 for e in events if e.kind is EventKind.ELEM_START)
            closes = sum(1 for e in events if e.kind is EventKind.ELEM_END)
            assert opens == closes


class TestKeygen:
    def test_each_node_keyed_exactly_once(self, store):
        store.insert_document_text(1, CATALOG)
        definition = XPathIndexDefinition("ix", "//ProductName", "string")
        seen = []
        for rid in store.node_index.record_rids(1):
            for key, item in generate_keys(definition,
                                           store.read_record(rid),
                                           store.names):
                seen.append((key, item.node_id))
        assert len(seen) == 2
        assert len({node_id for _k, node_id in seen}) == 2

    def test_descendant_path_spanning_records(self, store):
        store.insert_document_text(1, CATALOG)
        definition = XPathIndexDefinition(
            "ix", "/Catalog/Categories/Product/RegPrice", "double")
        keys = []
        for rid in store.node_index.record_rids(1):
            keys.extend(generate_keys(definition, store.read_record(rid),
                                      store.names))
        assert len(keys) == 2

    def test_attribute_path(self, store):
        store.insert_document_text(1, CATALOG)
        definition = XPathIndexDefinition("ix", "//Product/@id", "string")
        values = []
        for rid in store.node_index.record_rids(1):
            for _key, item in generate_keys(definition,
                                            store.read_record(rid),
                                            store.names):
                values.append(item.value)
        assert sorted(values) == ["p1", "p2"]

    def test_unconvertible_values_skipped(self, store):
        store.insert_document_text(1, CATALOG)
        definition = XPathIndexDefinition("ix", "//ProductName", "double")
        total = sum(
            len(generate_keys(definition, store.read_record(rid), store.names))
            for rid in store.node_index.record_rids(1))
        assert total == 0  # names are not numbers


class TestContainment:
    def path(self, text):
        return parse_path(text)

    def test_exact(self):
        assert relate(self.path("/a/b/c"),
                      self.path("/a/b/c")) is PathRelation.EXACT

    def test_contains_descendant(self):
        """Table 2 case 2: //Discount contains /C/C/P/Discount."""
        assert relate(self.path("//Discount"),
                      self.path("/Catalog/Categories/Product/Discount")) \
            is PathRelation.CONTAINS

    def test_none_for_disjoint(self):
        assert relate(self.path("/a/b"),
                      self.path("/a/c")) is PathRelation.NONE

    def test_query_more_general_not_contained(self):
        # Index /a/b does NOT contain //b (query matches b's elsewhere).
        assert relate(self.path("/a/b"),
                      self.path("//b")) is PathRelation.NONE

    def test_wildcard_contains(self):
        assert contains(self.path("/a/*/c"), self.path("/a/b/c"))
        assert not contains(self.path("/a/b/c"), self.path("/a/*/c"))

    def test_descendant_chains(self):
        assert contains(self.path("//b//d"), self.path("/a/b/c/d"))
        assert not contains(self.path("//b/d"), self.path("/a/b/c/d"))

    def test_leaf_must_align(self):
        assert not contains(self.path("//b"), self.path("//b/c"))

    def test_attribute_vs_element(self):
        # //@id on the query side is conservatively unsupported (self case).
        assert relate(self.path("//id"), self.path("//@id")) \
            is PathRelation.NONE
        assert contains(self.path("//@id"), self.path("/a/b/@id"))

    def test_exact_with_descendants_both_ways(self):
        assert relate(self.path("//a//b"),
                      self.path("//a//b")) is PathRelation.EXACT

    def test_child_only_suffix_depth(self):
        path = self.path("/Catalog/Categories/Product/RegPrice")
        assert child_only_suffix_depth(path, 3) == 1
        assert child_only_suffix_depth(path, 2) == 2
        deep = self.path("/a//b/c")
        assert child_only_suffix_depth(deep, 1) is None


class TestValueIndexManager:
    def make_index(self, store, pool, path, key_type):
        definition = XPathIndexDefinition("ix", path, key_type)
        return XPathValueIndex(definition, pool, store.names).attach(store)

    def test_maintained_on_insert(self, store, pool):
        index = self.make_index(store, pool, "//RegPrice", "double")
        store.insert_document_text(1, CATALOG)
        assert index.entry_count == 2
        hits = list(index.lookup_op(">", 100))
        assert len(hits) == 1

    def test_backfill_existing_documents(self, store, pool):
        store.insert_document_text(1, CATALOG)
        index = self.make_index(store, pool, "//RegPrice", "double")
        assert index.entry_count == 2

    def test_maintained_on_delete(self, store, pool):
        index = self.make_index(store, pool, "//RegPrice", "double")
        store.insert_document_text(1, CATALOG)
        store.insert_document_text(2, CATALOG)
        store.delete_document(1)
        assert index.entry_count == 2
        assert all(h.docid == 2 for h in index.lookup_range())

    def test_maintained_on_subdocument_update(self, store, pool):
        from repro.xmlstore.update import XmlUpdater
        from repro.xdm.events import EventKind
        index = self.make_index(store, pool, "//RegPrice", "double")
        store.insert_document_text(1, CATALOG)
        doc = store.document(1)
        events = list(doc.events())
        text_id = None
        for i, event in enumerate(events):
            if event.kind is EventKind.ELEM_START and \
                    event.local == "RegPrice":
                text_id = events[i + 1].node_id
                break
        XmlUpdater(store).replace_text(1, text_id, "999")
        hits = list(index.lookup_eq(999))
        assert len(hits) == 1
        assert list(index.lookup_eq(120.5)) == []

    def test_lookup_eq_and_ranges(self, store, pool):
        index = self.make_index(store, pool, "//Discount", "double")
        store.insert_document_text(1, CATALOG)
        assert len(list(index.lookup_eq(0.15))) == 1
        assert len(list(index.lookup_range(low=0.0, high=1.0))) == 2
        assert len(list(index.lookup_op("<", 0.1))) == 1
        assert len(list(index.lookup_op(">=", 0.05))) == 2

    def test_string_index(self, store, pool):
        index = self.make_index(store, pool, "//ProductName", "string")
        store.insert_document_text(1, CATALOG)
        hits = list(index.lookup_eq("Widget"))
        assert len(hits) == 1

    def test_hits_reference_real_nodes(self, store, pool):
        index = self.make_index(store, pool, "//RegPrice", "double")
        store.insert_document_text(1, CATALOG)
        for hit in index.lookup_range():
            doc = store.document(hit.docid)
            assert doc.node_string_value(hit.node_id) in ("120.5", "80")
            # The RID is the record physically containing the node.
            record, _entry, _parent = doc.find_node(hit.node_id)
            assert record == store.read_record(hit.rid)

    def test_index_smaller_than_data(self, store, pool):
        """§3.3: 'index size should be kept much smaller than data size'."""
        index = self.make_index(store, pool, "//RegPrice", "double")
        for docid in range(1, 20):
            store.insert_document_text(docid, CATALOG)
        data_bytes = store.storage_footprint()["data_bytes"]
        index_bytes = index.size_stats()["entries"] * 32  # ~ entry size
        assert index_bytes < data_bytes
