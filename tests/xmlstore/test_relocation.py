"""Stress tests for free record placement (§3.1).

"No explicit physical link is used between records for maximum flexibility
of record placement" — records may move on update (page overflow) and only
their NodeID-index entries change.  These tests force many relocations and
verify every logical access path stays intact.
"""

import random

import pytest

from repro.core.stats import StatsRegistry
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.xdm.events import EventKind
from repro.xdm.names import NameTable
from repro.xdm.serializer import serialize
from repro.xmlstore.store import XmlStore
from repro.xmlstore.update import XmlUpdater


@pytest.fixture
def make_store():
    """Store factory whose teardown asserts every pool quiesced.

    Relocation tests hammer the update path; a pin leaked on any of those
    paths must fail the test that caused it, not poison a later one.
    """
    pools = []

    def _make():
        pool = BufferPool(Disk(page_size=1024, stats=StatsRegistry()), 64)
        pools.append(pool)
        return XmlStore(pool, NameTable(), record_limit=96)

    yield _make
    for pool in pools:
        pool.assert_unpinned()


class TestRelocation:
    def test_growth_updates_relocate_and_stay_consistent(self, make_store):
        store = make_store()
        doc = "<r>" + "".join(f"<i>v{n}</i>" for n in range(40)) + "</r>"
        store.insert_document_text(1, doc)
        updater = XmlUpdater(store)
        rng = random.Random(5)
        reader = store.document(1)
        text_ids = [e.node_id for e in reader.events()
                    if e.kind is EventKind.TEXT]
        # Repeatedly grow random text nodes; records overflow their pages
        # and move, forcing NodeID-index repointing.
        values = {}
        for round_no in range(60):
            target = rng.choice(text_ids)
            new_value = f"value-{round_no}-" + "x" * rng.randint(0, 120)
            updater.replace_text(1, target, new_value)
            values[target] = new_value
        reader = store.document(1)
        for target, expected in values.items():
            assert reader.node_string_value(target) == expected
        # The document is still fully traversable and well-formed.
        out = serialize(reader.events())
        assert out.startswith("<r>") and out.endswith("</r>")
        assert out.count("<i>") == 40

    def test_interleaved_documents_after_relocation(self, make_store):
        store = make_store()
        for docid in range(1, 6):
            store.insert_document_text(
                docid, "<d>" + f"<p>doc{docid}</p>" * 10 + "</d>")
        updater = XmlUpdater(store)
        # Grow a middle document so its records relocate among neighbours.
        reader = store.document(3)
        texts = [e.node_id for e in reader.events()
                 if e.kind is EventKind.TEXT]
        for node_id in texts:
            updater.replace_text(3, node_id, "Z" * 200)
        for docid in (1, 2, 4, 5):
            out = serialize(store.document(docid).events())
            assert out.count(f"doc{docid}") == 10
        assert serialize(store.document(3).events()).count("Z" * 200) == 10

    def test_value_index_follows_relocations(self, make_store):
        from repro.indexes.definition import XPathIndexDefinition
        from repro.indexes.manager import XPathValueIndex
        store = make_store()
        index = XPathValueIndex(
            XPathIndexDefinition("ix", "//p", "string"),
            store.pool, store.names).attach(store)
        store.insert_document_text(1, "<d>" + "<p>small</p>" * 8 + "</d>")
        updater = XmlUpdater(store)
        texts = [e.node_id for e in store.document(1).events()
                 if e.kind is EventKind.TEXT]
        for i, node_id in enumerate(texts):
            updater.replace_text(1, node_id, f"grown-{i}-" + "y" * 150)
        assert list(index.lookup_eq("small")) == []
        hits = list(index.lookup_range())
        assert len(hits) == 8
        reader = store.document(1)
        for hit in hits:
            # The stored RID is the record that physically holds the node.
            record, _entry, _parent = reader.find_node(hit.node_id)
            assert record == store.read_record(hit.rid)
