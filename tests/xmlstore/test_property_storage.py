"""Property tests for the native storage layer: roundtrips, point access,
interval invariants, and corruption handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import StatsRegistry
from repro.errors import PackingError
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.xdm import nodeid
from repro.xdm.names import NameTable
from repro.xdm.parser import parse
from repro.xdm.serializer import serialize
from repro.xmlstore import format as fmt
from repro.xmlstore.store import XmlStore

_TAGS = ["r", "item", "x", "deep"]


@st.composite
def xml_documents(draw, max_depth=4):
    def build(depth):
        tag = draw(st.sampled_from(_TAGS))
        attrs = ""
        if draw(st.booleans()):
            attrs = f' k="{draw(st.integers(min_value=0, max_value=99))}"'
        if depth >= max_depth or draw(st.integers(0, 2)) == 0:
            body = draw(st.sampled_from(
                ["", "text", "long text body here", "&amp;escaped"]))
        else:
            body = "".join(
                build(depth + 1)
                for _ in range(draw(st.integers(min_value=1, max_value=4))))
        return f"<{tag}{attrs}>{body}</{tag}>"

    return build(0)


def make_store(record_limit):
    pool = BufferPool(Disk(page_size=1024, stats=StatsRegistry()), 64)
    return XmlStore(pool, NameTable(), record_limit=record_limit)


class TestStorageProperties:
    @settings(max_examples=60, deadline=None)
    @given(xml_documents(), st.sampled_from([32, 64, 200, 900]))
    def test_roundtrip_any_packing(self, doc, limit):
        store = make_store(limit)
        store.insert_document_text(1, doc)
        reparsed_in = serialize(parse(doc).events())
        assert serialize(store.document(1).events()) == reparsed_in

    @settings(max_examples=40, deadline=None)
    @given(xml_documents(), st.sampled_from([32, 128]))
    def test_every_node_findable_and_valued(self, doc, limit):
        store = make_store(limit)
        store.insert_document_text(1, doc)
        reader = store.document(1)
        events = list(reader.events())
        from repro.xdm.events import EventKind
        text_by_id = {}
        for i, event in enumerate(events):
            if event.kind is EventKind.ATTR:
                text_by_id[event.node_id] = event.value
            elif event.kind is EventKind.TEXT:
                text_by_id[event.node_id] = event.value
        for node_id, expected in text_by_id.items():
            assert reader.node_string_value(node_id) == expected

    @settings(max_examples=40, deadline=None)
    @given(xml_documents(), st.sampled_from([32, 100]))
    def test_interval_invariants(self, doc, limit):
        """Intervals are disjoint, sorted, and every node probe hits the
        record physically containing the node."""
        store = make_store(limit)
        store.insert_document_text(1, doc)
        entries = list(store.node_index.entries_for_document(1))
        uppers = [upper for upper, _rid in entries]
        assert uppers == sorted(uppers)
        assert len(set(uppers)) == len(uppers)
        for rid in store.node_index.record_rids(1):
            record = store.read_record(rid)
            for _entry, abs_id, _depth in fmt.record_node_stream(record):
                if _entry.kind == fmt.EntryKind.PROXY:
                    continue
                assert store.node_index.probe(1, abs_id) == rid

    @settings(max_examples=30, deadline=None)
    @given(xml_documents())
    def test_node_ids_valid_and_ordered(self, doc):
        store = make_store(64)
        store.insert_document_text(1, doc)
        ids = [e.node_id for e in store.document(1).events()
               if e.node_id not in (None, nodeid.ROOT_ID)]
        assert ids == sorted(ids)
        for abs_id in ids:
            nodeid.validate_absolute(abs_id)


class TestCorruptionHandling:
    def test_corrupt_entry_kind_detected(self):
        store = make_store(400)
        store.insert_document_text(1, "<a><b>hello</b></a>")
        rid = store.node_index.record_rids(1)[0]
        record = bytearray(store.read_record(rid))
        # Find the first element entry and clobber its kind byte.
        _header, body_start = fmt.decode_header(bytes(record))
        record[body_start] = 0x63
        with pytest.raises(PackingError):
            list(fmt.record_node_stream(bytes(record)))

    def test_truncated_record_detected(self):
        store = make_store(400)
        store.insert_document_text(1, "<a><b>hello</b><c>more</c></a>")
        rid = store.node_index.record_rids(1)[0]
        record = store.read_record(rid)
        with pytest.raises((PackingError, IndexError)):
            list(fmt.record_node_stream(record[:len(record) - 3]))

    def test_corrupt_token_stream_detected(self):
        from repro.errors import XmlError
        from repro.xdm.tokens import TokenStream
        with pytest.raises(XmlError):
            list(TokenStream(b"\x7f\x00\x00"))


class TestMultiColumnEngine:
    def test_two_xml_columns_share_docid(self):
        from repro.core.engine import Database
        db = Database()
        db.create_table("t", [("head", "xml"), ("body", "xml")])
        db.insert("t", ("<h>title</h>", "<b>content</b>"))
        assert db.get_document("t", "head", 1) == "<h>title</h>"
        assert db.get_document("t", "body", 1) == "<b>content</b>"
        row = next(db.tables["t"].scan())
        assert row == (1, 1)  # both columns carry the shared DocID

    def test_null_xml_column(self):
        from repro.core.engine import Database
        db = Database()
        db.create_table("t", [("n", "bigint"), ("doc", "xml")])
        db.insert("t", (1, None))
        db.insert("t", (2, "<a/>"))
        assert len(db.xpath("t", "doc", "/a")) == 1

    def test_delete_row_with_null_xml(self):
        from repro.core.engine import Database
        db = Database()
        db.create_table("t", [("doc", "xml")])
        rid = db.insert("t", (None,))
        db.delete_row("t", rid)
        assert db.tables["t"].row_count == 0
