"""Tests for subdocument updates (record surgery) and the shredded baseline."""

import pytest

from repro.errors import XmlError
from repro.xdm import nodeid
from repro.xdm.events import EventKind, build_tree
from repro.xdm.parser import parse
from repro.xdm.serializer import serialize
from repro.xmlstore.shred import ShreddedStore
from repro.xmlstore.update import XmlUpdater, decode_record, encode_record


def node_id_of(store, docid, local, occurrence=0):
    hits = [e.node_id for e in store.document(docid).events()
            if e.kind is EventKind.ELEM_START and e.local == local]
    return hits[occurrence]


def text_id_under(store, docid, local):
    events = list(store.document(docid).events())
    for i, event in enumerate(events):
        if event.kind is EventKind.ELEM_START and event.local == local:
            return events[i + 1].node_id
    raise AssertionError(f"no text under {local}")


class TestRecordSurgery:
    def test_decode_encode_identity(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        for rid in store.node_index.record_rids(1):
            record = store.read_record(rid)
            header, forest = decode_record(record)
            assert encode_record(header, forest) == record


class TestReplaceText:
    def test_replace_in_single_record(self, big_store, catalog_xml):
        big_store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(big_store)
        target = text_id_under(big_store, 1, "ProductName")
        updater.replace_text(1, target, "SuperWidget")
        assert "SuperWidget" in serialize(big_store.document(1).events())

    def test_replace_in_packed_records(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        target = text_id_under(store, 1, "RegPrice")
        updater.replace_text(1, target, "999")
        out = serialize(store.document(1).events())
        assert "<RegPrice>999</RegPrice>" in out
        assert "120.5" not in out

    def test_replace_attribute_value(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        attr = next(e.node_id for e in store.document(1).events()
                    if e.kind is EventKind.ATTR)
        updater.replace_text(1, attr, "p1-new")
        assert 'id="p1-new"' in serialize(store.document(1).events())

    def test_replace_wrong_kind_rejected(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        elem = node_id_of(store, 1, "Product")
        with pytest.raises(XmlError):
            updater.replace_text(1, elem, "nope")

    def test_grown_record_remains_consistent(self, store, catalog_xml):
        """A large new value can relocate the record; index must follow."""
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        target = text_id_under(store, 1, "ProductName")
        updater.replace_text(1, target, "X" * 500)
        out = serialize(store.document(1).events())
        assert "X" * 500 in out
        # All nodes still reachable by id.
        doc = store.document(1)
        for event in doc.events():
            if event.node_id not in (None, nodeid.ROOT_ID):
                doc.find_node(event.node_id)


class TestDeleteNode:
    def test_delete_leaf(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        XmlUpdater(store).delete_node(1, node_id_of(store, 1, "Discount", 1))
        out = serialize(store.document(1).events())
        assert out.count("<Discount>") == 1

    def test_delete_subtree_cascades_records(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        before = store.space.record_count
        XmlUpdater(store).delete_node(1, node_id_of(store, 1, "Product", 0))
        out = serialize(store.document(1).events())
        assert "Widget" not in out
        assert "Gadget" in out
        assert store.space.record_count <= before

    def test_delete_then_ids_still_consistent(self, store):
        xml = "<r>" + "".join(f"<i>{n}</i>" for n in range(30)) + "</r>"
        store.insert_document_text(1, xml)
        updater = XmlUpdater(store)
        victim = node_id_of(store, 1, "i", 10)
        updater.delete_node(1, victim)
        doc = store.document(1)
        remaining = [e.node_id for e in doc.events()
                     if e.kind is EventKind.ELEM_START and e.local == "i"]
        assert len(remaining) == 29
        assert victim not in remaining
        for abs_id in remaining:
            doc.find_node(abs_id)


class TestInsertSubtree:
    def fragment(self, xml):
        return [e for e in parse(xml).events()
                if e.kind not in (EventKind.DOC_START, EventKind.DOC_END)]

    def test_append_child(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        categories = node_id_of(store, 1, "Categories")
        new_id = updater.insert_subtree(
            1, categories, self.fragment("<Product id='p3'><ProductName>Nut"
                                         "</ProductName></Product>"))
        out = serialize(store.document(1).events())
        assert out.count("<Product ") == 3
        assert out.index("Nut") > out.index("Gadget")  # appended at the end
        store.document(1).find_node(new_id)

    def test_insert_before(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        categories = node_id_of(store, 1, "Categories")
        first_product = node_id_of(store, 1, "Product", 0)
        updater.insert_subtree(1, categories,
                               self.fragment("<Product id='p0'/>"),
                               before=first_product)
        out = serialize(store.document(1).events())
        assert out.index('id="p0"') < out.index('id="p1"')

    def test_insert_after_middle(self, store):
        xml = "<r><i>0</i><i>1</i><i>2</i></r>"
        store.insert_document_text(1, xml)
        updater = XmlUpdater(store)
        root = node_id_of(store, 1, "r")
        middle = node_id_of(store, 1, "i", 1)
        updater.insert_subtree(1, root, self.fragment("<i>new</i>"),
                               after=middle)
        tree = build_tree(store.document(1).events())
        texts = [e.string_value() for e in tree.document_element().elements()]
        assert texts == ["0", "1", "new", "2"]

    def test_existing_ids_stable_after_insert(self, store):
        """§3.1: node IDs are stable upon update of the tree."""
        xml = "<r><i>0</i><i>1</i></r>"
        store.insert_document_text(1, xml)
        ids_before = {e.node_id for e in store.document(1).events()
                      if e.node_id is not None}
        updater = XmlUpdater(store)
        root = node_id_of(store, 1, "r")
        first = node_id_of(store, 1, "i", 0)
        updater.insert_subtree(1, root, self.fragment("<i>mid</i>"),
                               after=first)
        ids_after = {e.node_id for e in store.document(1).events()
                     if e.node_id is not None}
        assert ids_before <= ids_after  # old ids unchanged
        assert len(ids_after) == len(ids_before) + 2  # element + text

    def test_repeated_inserts_at_same_position(self, store):
        store.insert_document_text(1, "<r><a>L</a><b>R</b></r>")
        updater = XmlUpdater(store)
        root = node_id_of(store, 1, "r")
        anchor = node_id_of(store, 1, "b")
        for n in range(10):
            updater.insert_subtree(1, root, self.fragment(f"<m>{n}</m>"),
                                   before=anchor)
        tree = build_tree(store.document(1).events())
        texts = [e.string_value() for e in tree.document_element().elements()]
        assert texts == ["L"] + [str(n) for n in range(10)] + ["R"]

    def test_both_positions_rejected(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        root = node_id_of(store, 1, "Catalog")
        with pytest.raises(XmlError):
            updater.insert_subtree(1, root, self.fragment("<x/>"),
                                   before=b"\x02", after=b"\x02")

    def test_child_ids_in_document_order(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        updater = XmlUpdater(store)
        categories = node_id_of(store, 1, "Categories")
        ids = updater.child_ids(1, categories)
        assert ids == sorted(ids)
        assert len(ids) == 2  # the two Product elements


class TestShreddedStore:
    @pytest.fixture
    def shred(self, pool, names):
        return ShreddedStore(pool, names)

    def test_roundtrip(self, shred, catalog_xml):
        rows = shred.insert_document_events(1, parse(catalog_xml).events())
        assert rows == 18
        assert serialize(shred.document_events(1)) == catalog_xml

    def test_one_row_per_node(self, shred, catalog_xml):
        shred.insert_document_events(1, parse(catalog_xml).events())
        footprint = shred.storage_footprint()
        assert footprint["record_count"] == 18
        assert footprint["nodeid_index_entries"] == 18

    def test_replace_text(self, shred, catalog_xml):
        shred.insert_document_events(1, parse(catalog_xml).events())
        target = next(e.node_id for e in shred.document_events(1)
                      if e.kind is EventKind.TEXT and e.value == "Widget")
        shred.replace_text(1, target, "Sprocket")
        assert "Sprocket" in serialize(shred.document_events(1))

    def test_missing_document(self, shred):
        from repro.errors import DocumentNotFoundError
        with pytest.raises(DocumentNotFoundError):
            list(shred.document_events(9))

    def test_multiple_documents(self, shred):
        shred.insert_document_events(1, parse("<a>x</a>").events())
        shred.insert_document_events(2, parse("<b>y</b>").events())
        assert serialize(shred.document_events(1)) == "<a>x</a>"
        assert serialize(shred.document_events(2)) == "<b>y</b>"

    def test_traversal_cost_is_per_node(self, pool, names, stats, catalog_xml):
        """The shredded store pays one record fetch per node (§3.1)."""
        shred = ShreddedStore(pool, names)
        shred.insert_document_events(1, parse(catalog_xml).events())
        with stats.delta() as delta:
            list(shred.document_events(1))
        assert delta.get("ts.records_read", 0) == 18
