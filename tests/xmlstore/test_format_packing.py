"""Tests for the packed-record format and the bottom-up tree packer."""

import pytest

from repro.errors import PackingError
from repro.xdm.events import assign_node_ids
from repro.xdm.names import NameTable
from repro.xdm.parser import parse
from repro.xmlstore import format as fmt
from repro.xmlstore.packing import TreePacker, pack_document


def pack(xml, limit=128, names=None):
    names = names if names is not None else NameTable()
    stream = parse(xml)
    return pack_document(1, assign_node_ids(stream.events()), names, limit)


class TestHeader:
    def test_roundtrip(self):
        header = fmt.RecordHeader(7, b"\x02\x04", (3, 9), (("p", 2), ("", 0)))
        out = bytearray()
        fmt.encode_header(out, header)
        decoded, pos = fmt.decode_header(bytes(out))
        assert decoded == header
        assert pos == len(out)


class TestEntryCodec:
    def test_element_entry(self):
        inner = fmt.encode_text(b"\x02", "hi")
        chunk = fmt.encode_element(b"\x04", 5, 1, inner)
        entry = fmt.parse_entry(chunk, 0)
        assert entry.kind == fmt.EntryKind.ELEMENT
        assert entry.rel_id == b"\x04"
        assert entry.name_id == 5
        assert entry.entry_count == 1
        nested = fmt.parse_entry(chunk, entry.content_start)
        assert nested.kind == fmt.EntryKind.TEXT
        assert nested.text == "hi"
        assert entry.next_pos == len(chunk)

    def test_all_leaf_kinds(self):
        cases = [
            (fmt.encode_text(b"\x02", "t"), fmt.EntryKind.TEXT),
            (fmt.encode_attribute(b"\x02", 3, "v"), fmt.EntryKind.ATTRIBUTE),
            (fmt.encode_namespace(b"\x02", "p", 4), fmt.EntryKind.NAMESPACE),
            (fmt.encode_comment(b"\x02", "c"), fmt.EntryKind.COMMENT),
            (fmt.encode_pi(b"\x02", "tg", "d"), fmt.EntryKind.PI),
            (fmt.encode_proxy(b"\x02\x04"), fmt.EntryKind.PROXY),
        ]
        for chunk, kind in cases:
            entry = fmt.parse_entry(chunk, 0)
            assert entry.kind == kind
            assert entry.next_pos == len(chunk)

    def test_corrupt_kind_rejected(self):
        with pytest.raises(PackingError):
            fmt.parse_entry(b"\x63\x00", 0)


class TestPacker:
    def test_small_doc_single_record(self):
        records, node_count = pack("<a><b>x</b></a>", limit=4000)
        assert len(records) == 1
        assert node_count == 3  # a, b, text

    def test_large_doc_splits(self):
        xml = "<root>" + "".join(
            f"<item><name>n{i}</name><v>{i}</v></item>" for i in range(40)
        ) + "</root>"
        records, node_count = pack(xml, limit=128)
        assert len(records) > 1
        assert node_count == 1 + 40 * 5

    def test_records_sorted_by_min_node_id(self):
        xml = "<root>" + "<x>data</x>" * 50 + "</root>"
        records, _ = pack(xml, limit=96)
        mins = [fmt.record_min_node_id(r) for r in records]
        assert mins == sorted(mins)

    def test_root_record_contains_root_element(self):
        xml = "<root>" + "<x>data</x>" * 50 + "</root>"
        records, _ = pack(xml, limit=96)
        root_record = records[0]
        entries = list(fmt.record_node_stream(root_record))
        # First entry is the root element itself (context = document).
        first_entry, first_abs, _ = entries[0]
        assert first_entry.kind == fmt.EntryKind.ELEMENT
        assert first_abs == b"\x02"

    def test_proxies_present_when_split(self):
        xml = "<root>" + "<x>data</x>" * 50 + "</root>"
        records, _ = pack(xml, limit=96)
        kinds = [e.kind for r in records for e, _, _ in fmt.record_node_stream(r)]
        assert fmt.EntryKind.PROXY in kinds

    def test_every_node_stored_exactly_once(self):
        xml = "<root>" + "".join(
            f"<item id='{i}'><a>x{i}</a><b>y{i}</b></item>" for i in range(30)
        ) + "</root>"
        records, node_count = pack(xml, limit=100)
        seen = []
        for record in records:
            for entry, abs_id, _ in fmt.record_node_stream(record):
                if entry.kind != fmt.EntryKind.PROXY:
                    seen.append(abs_id)
        assert len(seen) == node_count
        assert len(set(seen)) == node_count

    def test_intervals_cover_and_do_not_overlap(self):
        xml = "<root>" + "<x><y>deep</y></x>" * 40 + "</root>"
        records, node_count = pack(xml, limit=90)
        all_intervals = []
        covered = 0
        for record in records:
            intervals = fmt.record_intervals(record)
            ids = [abs_id for e, abs_id, _ in fmt.record_node_stream(record)
                   if e.kind != fmt.EntryKind.PROXY]
            # every node of the record falls in one of its intervals
            for abs_id in ids:
                assert any(low <= abs_id <= high for low, high in intervals)
                covered += 1
            all_intervals.extend(intervals)
        assert covered == node_count
        # Interval ranges are disjoint across the document.
        all_intervals.sort()
        for (l1, h1), (l2, h2) in zip(all_intervals, all_intervals[1:], strict=False):
            assert h1 < l2

    def test_index_entry_bound(self):
        """§3.1: packed scheme needs about 2k/p entries or fewer."""
        xml = "<root>" + "<x>txt</x>" * 200 + "</root>"
        records, node_count = pack(xml, limit=256)
        intervals = sum(len(fmt.record_intervals(r)) for r in records)
        avg_nodes_per_record = node_count / len(records)
        assert intervals <= 2 * node_count / avg_nodes_per_record + 1

    def test_packing_factor_grows_with_limit(self):
        xml = "<root>" + "<x>some text content</x>" * 80 + "</root>"
        small, _ = pack(xml, limit=64)
        large, _ = pack(xml, limit=1024)
        assert len(small) > len(large)

    def test_oversized_text_node(self):
        xml = f"<a><big>{'Z' * 5000}</big><small>s</small></a>"
        records, _ = pack(xml, limit=128)
        texts = [e.text for r in records for e, _, _ in fmt.record_node_stream(r)
                 if e.kind == fmt.EntryKind.TEXT]
        assert "Z" * 5000 in texts

    def test_namespaces_in_header(self):
        names = NameTable()
        xml = ('<root xmlns="urn:d" xmlns:p="urn:p">'
               + "<p:x>value text here</p:x>" * 30 + "</root>")
        stream = parse(xml)
        records, _ = pack_document(1, assign_node_ids(stream.events()),
                                   names, 100)
        # Some record has the root as context and carries its namespaces.
        contexts = [fmt.decode_header(r)[0] for r in records]
        with_ns = [h for h in contexts if h.namespaces]
        assert with_ns, "expected in-scope namespaces in some record header"
        ns_map = {p: names.uri(u) for p, u in with_ns[0].namespaces}
        assert ns_map.get("p") == "urn:p"
        assert ns_map.get("") == "urn:d"

    def test_context_path_names(self):
        names = NameTable()
        xml = "<a><b>" + "<c>text content goes here</c>" * 30 + "</b></a>"
        stream = parse(xml)
        records, _ = pack_document(1, assign_node_ids(stream.events()),
                                   names, 100)
        paths = [fmt.decode_header(r)[0].context_path for r in records]
        deep = [p for p in paths if len(p) == 2]
        assert deep, "expected records with context path a/b"
        assert [names.local_name(n) for n in deep[0]] == ["a", "b"]

    def test_requires_node_ids(self):
        stream = parse("<a/>")
        packer = TreePacker(1, NameTable(), 128)
        with pytest.raises(PackingError):
            packer.feed(stream.events())

    def test_unfinished_stream_rejected(self):
        packer = TreePacker(1, NameTable(), 128)
        with pytest.raises(PackingError):
            packer.finish()

    def test_record_limit_validation(self):
        with pytest.raises(PackingError):
            TreePacker(1, NameTable(), 4)
