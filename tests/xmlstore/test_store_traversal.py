"""Tests for XmlStore insertion, the NodeID index, and stored traversal."""

import pytest

from repro.errors import DocumentNotFoundError
from repro.xdm import nodeid
from repro.xdm.events import EventKind, build_tree
from repro.xdm.nodes import node_count
from repro.xdm.parser import parse
from repro.xdm.serializer import serialize
from repro.xmlstore.node_index import NodeIdIndex, index_key, split_key


class TestNodeIdIndexKeys:
    def test_key_roundtrip(self):
        key = index_key(42, b"\x02\x04")
        assert split_key(key) == (42, b"\x02\x04")

    def test_key_order_docid_major(self):
        assert index_key(1, b"\xfe") < index_key(2, b"\x02")
        assert index_key(1, b"\x02") < index_key(1, b"\x04")


class TestInsertAndTraverse:
    def test_roundtrip_small(self, big_store, catalog_xml):
        info = big_store.insert_document_text(1, catalog_xml)
        assert info.record_count == 1
        out = serialize(big_store.document(1).events())
        assert out == catalog_xml

    def test_roundtrip_packed(self, store, catalog_xml):
        """With a 128-byte limit the catalog splits into several records."""
        info = store.insert_document_text(1, catalog_xml)
        assert info.record_count > 1
        out = serialize(store.document(1).events())
        assert out == catalog_xml

    def test_roundtrip_deep_document(self, store):
        xml = "<a>" * 1 + "".join(f"<l{i}>" for i in range(60)) + "deep" + \
            "".join(f"</l{59 - i}>" for i in range(60)) + "</a>"
        store.insert_document_text(2, xml)
        assert serialize(store.document(2).events()) == xml

    def test_roundtrip_namespaces(self, store):
        xml = ('<c xmlns="urn:a" xmlns:p="urn:b">'
               + "<p:item key=\"1\">v</p:item>" * 20 + "</c>")
        store.insert_document_text(3, xml)
        tree = build_tree(store.document(3).events())
        root = tree.document_element()
        assert root.uri == "urn:a"
        assert all(e.uri == "urn:b" for e in root.elements())

    def test_node_count_preserved(self, store, catalog_xml):
        info = store.insert_document_text(1, catalog_xml)
        tree = build_tree(store.document(1).events())
        assert node_count(tree) == info.node_count + 1  # + document node

    def test_duplicate_docid_rejected(self, store):
        store.insert_document_text(1, "<a/>")
        with pytest.raises(DocumentNotFoundError):
            store.insert_document_text(1, "<b/>")

    def test_missing_document(self, store):
        with pytest.raises(DocumentNotFoundError):
            list(store.document(99).events())

    def test_multiple_documents_isolated(self, store):
        store.insert_document_text(1, "<a>one</a>")
        store.insert_document_text(2, "<b>two</b>")
        assert serialize(store.document(1).events()) == "<a>one</a>"
        assert serialize(store.document(2).events()) == "<b>two</b>"
        assert store.document_count == 2

    def test_clustering_order(self, store):
        """Records of one document land in (DocID, minNodeID) order (§3.1)."""
        xml = "<root>" + "<x>clustered record data</x>" * 60 + "</root>"
        store.insert_document_text(1, xml)
        rids = store.node_index.record_rids(1)
        pages = [rid.page_id for rid in rids]
        # record_rids follows index (minNodeID) order; physical page order
        # must match because inserts were clustered.
        assert pages == sorted(pages)


class TestPointAccess:
    def test_find_node_by_id(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        doc = store.document(1)
        # Find every node by its own id.
        ids = [e.node_id for e in doc.events() if e.node_id is not None]
        for abs_id in ids:
            if abs_id == nodeid.ROOT_ID:
                continue
            _record, entry, parent = doc.find_node(abs_id)
            assert parent + entry.rel_id == abs_id

    def test_find_missing_node(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        with pytest.raises(DocumentNotFoundError):
            store.document(1).find_node(b"\xfe\xfe")

    def test_node_events_subtree(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        doc = store.document(1)
        products = [e.node_id for e in doc.events()
                    if e.kind is EventKind.ELEM_START and e.local == "Product"]
        assert len(products) == 2
        events = list(doc.node_events(products[0]))
        assert events[0].local == "Product"
        locals_in_subtree = {e.local for e in events
                             if e.kind is EventKind.ELEM_START}
        assert locals_in_subtree == {"Product", "ProductName", "RegPrice",
                                     "Discount"}

    def test_node_string_value(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        doc = store.document(1)
        names = [e.node_id for e in doc.events()
                 if e.kind is EventKind.ELEM_START and e.local == "ProductName"]
        assert doc.node_string_value(names[0]) == "Widget"
        assert doc.node_string_value(names[1]) == "Gadget"

    def test_attribute_value_by_id(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        doc = store.document(1)
        attrs = [e for e in doc.events() if e.kind is EventKind.ATTR]
        assert doc.node_string_value(attrs[0].node_id) == "p1"

    def test_ancestry_from_header(self, store, catalog_xml):
        """Self-containment: ancestors known without touching other records."""
        store.insert_document_text(1, catalog_xml)
        doc = store.document(1)
        price = next(e.node_id for e in doc.events()
                     if e.kind is EventKind.ELEM_START and e.local == "RegPrice")
        path = [local for local, _uri in doc.ancestry(price)]
        assert path == ["Catalog", "Categories", "Product"]

    def test_in_scope_namespaces(self, store):
        xml = ('<c xmlns:p="urn:b">' + "<p:item>some text here</p:item>" * 30
               + "</c>")
        store.insert_document_text(1, xml)
        doc = store.document(1)
        item = next(e.node_id for e in doc.events()
                    if e.kind is EventKind.ELEM_START and e.local == "item")
        assert doc.in_scope_namespaces(item).get("p") == "urn:b"


class TestDelete:
    def test_delete_document(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        dropped = store.delete_document(1)
        assert dropped >= 1
        assert not store.document_exists(1)
        assert store.node_index.entry_count == 0
        assert store.space.record_count == 0

    def test_delete_missing(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.delete_document(5)

    def test_delete_one_of_many(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        store.insert_document_text(2, catalog_xml)
        store.delete_document(1)
        assert not store.document_exists(1)
        assert serialize(store.document(2).events()) == catalog_xml


class TestObservers:
    def test_observer_callbacks(self, store, catalog_xml):
        from repro.xmlstore.store import record_observer
        added, removed = [], []
        store.observers.append(record_observer(
            lambda d, rec, rid: added.append((d, rid)),
            lambda d, rec, rid: removed.append((d, rid))))
        info = store.insert_document_text(1, catalog_xml)
        assert len(added) == info.record_count
        store.delete_document(1)
        assert sorted(removed) == sorted(added)


class TestStorageFootprint:
    def test_footprint_fields(self, store, catalog_xml):
        store.insert_document_text(1, catalog_xml)
        footprint = store.storage_footprint()
        assert footprint["record_count"] >= 1
        assert footprint["nodeid_index_entries"] >= 1
        assert footprint["data_bytes"] > 0

    def test_packed_fewer_index_entries_than_shred(self, pool, names,
                                                   catalog_xml):
        from repro.xmlstore.shred import ShreddedStore
        from repro.xmlstore.store import XmlStore
        packed = XmlStore(pool, names, record_limit=512, name="p")
        shred = ShreddedStore(pool, names)
        packed.insert_document_text(1, catalog_xml)
        shred.insert_document_events(1, parse(catalog_xml).events())
        assert packed.storage_footprint()["nodeid_index_entries"] < \
            shred.storage_footprint()["nodeid_index_entries"]
