"""Shared fixtures for xmlstore tests."""

import pytest

from repro.core.stats import StatsRegistry
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.xdm.names import NameTable
from repro.xmlstore.store import XmlStore


@pytest.fixture
def stats():
    return StatsRegistry()


@pytest.fixture
def pool(stats):
    pool = BufferPool(Disk(page_size=4096, stats=stats), capacity=128)
    yield pool
    # Every xmlstore test must drain its pins; a leak fails the leaking
    # test directly even when the sanitizers are not armed.
    pool.assert_unpinned()


@pytest.fixture
def names():
    return NameTable()


@pytest.fixture
def store(pool, names):
    """A store with a small record limit so packing actually happens."""
    return XmlStore(pool, names, record_limit=48)


@pytest.fixture
def big_store(pool, names):
    """A store whose record limit keeps small documents in one record."""
    return XmlStore(pool, names, record_limit=4000, name="big")


CATALOG_XML = (
    '<Catalog>'
    '<Categories>'
    '<Product id="p1"><ProductName>Widget</ProductName>'
    '<RegPrice>120.5</RegPrice><Discount>0.15</Discount></Product>'
    '<Product id="p2"><ProductName>Gadget</ProductName>'
    '<RegPrice>80</RegPrice><Discount>0.05</Discount></Product>'
    '</Categories>'
    '</Catalog>'
)


@pytest.fixture
def catalog_xml():
    return CATALOG_XML
