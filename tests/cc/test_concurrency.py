"""Tests for the scheduler, document-level locking, MVCC, and subdocument
multiple-granularity locking."""

import pytest

from repro.core.stats import StatsRegistry
from repro.cc.document import DocumentLockProtocol, doc_resource, row_resource
from repro.cc.mvcc import VersionedXmlStore, split_version_key, version_key
from repro.cc.scheduler import Do, Lock, Scheduler
from repro.cc.subdocument import (DocumentGranularityAdapter, PrefixLockTable,
                                  subtree_overlaps)
from repro.errors import DocumentNotFoundError
from repro.rdb.buffer import BufferPool
from repro.rdb.locks import LockManager, LockMode
from repro.rdb.storage import Disk
from repro.rdb.tablespace import Rid
from repro.xdm.names import NameTable
from repro.xdm.serializer import serialize


@pytest.fixture
def stats():
    return StatsRegistry()


@pytest.fixture
def pool(stats):
    return BufferPool(Disk(page_size=4096, stats=stats), 128)


class TestScheduler:
    def test_two_independent_txns_commit(self, stats):
        lm = LockManager(stats)
        trace = []

        def program(name):
            def body(txn_id):
                yield Lock(("r", name), LockMode.X)
                yield Do(lambda: trace.append(name))
            return body

        result = Scheduler(lm, seed=1).run(
            [("a", program("a")), ("b", program("b"))])
        assert result.committed == 2
        assert result.aborted == 0
        assert sorted(trace) == ["a", "b"]

    def test_conflicting_txns_serialize(self, stats):
        lm = LockManager(stats)
        active = []
        max_active = [0]

        def body(txn_id):
            yield Lock("shared-resource", LockMode.X)
            yield Do(lambda: active.append(txn_id))
            yield Do(lambda: max_active.__setitem__(
                0, max(max_active[0], len(active))))
            yield Do(lambda: active.remove(txn_id))

        result = Scheduler(lm, seed=3).run(
            [(f"t{i}", body) for i in range(4)])
        assert result.committed == 4
        assert result.wait_steps > 0
        assert max_active[0] == 1  # strictly serialized on the X lock

    def test_deadlock_resolved_by_restart(self, stats):
        lm = LockManager(stats)

        def make(first, second):
            def body(txn_id):
                yield Lock(first, LockMode.X)
                yield Lock(second, LockMode.X)
            return body

        result = Scheduler(lm, seed=5).run(
            [("ab", make("a", "b")), ("ba", make("b", "a"))],
            round_robin=True)
        assert result.committed == 2
        assert result.aborted >= 1
        assert stats.get("lock.deadlocks") >= 1

    def test_deadlock_under_random_scheduling(self, stats):
        """The non-round-robin path resolves deadlocks too (pinned seed
        empirically produces the a->b / b->a interleaving)."""
        lm = LockManager(stats)

        def make(first, second):
            def body(txn_id):
                yield Lock(first, LockMode.X)
                yield Lock(second, LockMode.X)
            return body

        result = Scheduler(lm, seed=6).run(
            [("ab", make("a", "b")), ("ba", make("b", "a"))])
        assert result.committed == 2
        assert result.deadlock_aborts == 1
        assert result.restarts == 1
        assert stats.get("txn.deadlock_aborts") == 1

    def test_round_robin_victim_removed_immediately(self, stats):
        """A non-restartable deadlock victim must leave the active set the
        moment it is aborted, not linger as a phantom runner."""
        lm = LockManager(stats)

        def make(first, second):
            def body(txn_id):
                yield Lock(first, LockMode.X)
                yield Lock(second, LockMode.X)
            return body

        result = Scheduler(lm, seed=5).run(
            [("ab", make("a", "b")), ("ba", make("b", "a"))],
            restartable=False, round_robin=True)
        assert result.committed == 1
        assert result.aborted == 1
        assert result.deadlock_aborts == 1
        assert result.restarts == 0
        assert result.failed == ["ba"]  # youngest txn in the cycle dies
        assert result.commit_order == ["ab"]

    def test_round_robin_deadlock_with_three_programs(self, stats):
        """Three-way waits-for cycle under round-robin scheduling."""
        lm = LockManager(stats)

        def make(first, second):
            def body(txn_id):
                yield Lock(first, LockMode.X)
                yield Lock(second, LockMode.X)
            return body

        result = Scheduler(lm, seed=0).run(
            [("ab", make("a", "b")), ("bc", make("b", "c")),
             ("ca", make("c", "a"))], round_robin=True)
        assert result.committed == 3
        assert result.deadlock_aborts >= 1

    def test_commit_order_recorded(self, stats):
        lm = LockManager(stats)

        def body(txn_id):
            yield Do(lambda: None)

        result = Scheduler(lm, seed=0).run([("x", body), ("y", body)])
        assert sorted(result.commit_order) == ["x", "y"]


class TestDocumentLocking:
    def test_row_lock_covers_document_path(self, stats):
        lm = LockManager(stats)
        protocol = DocumentLockProtocol(lm)
        assert protocol.try_read_via_row(1, "t", Rid(0, 0))
        assert protocol.try_read_via_row(2, "t", Rid(0, 0))  # shared
        assert not lm.try_acquire(3, row_resource("t", Rid(0, 0)),
                                  LockMode.X)

    def test_writer_blocks_direct_readers(self, stats):
        lm = LockManager(stats)
        protocol = DocumentLockProtocol(lm)
        assert protocol.try_write(1, "t", Rid(0, 0), docid=7)
        assert not protocol.try_read_direct(2, docid=7)
        protocol.release(1)
        assert protocol.try_read_direct(2, docid=7)

    def test_insert_guard_prevents_partial_reads(self, stats):
        lm = LockManager(stats)
        protocol = DocumentLockProtocol(lm)
        assert protocol.try_insert_guard(1, docid=9)
        assert not protocol.try_read_direct(2, docid=9)

    def test_distinct_documents_do_not_conflict(self, stats):
        lm = LockManager(stats)
        protocol = DocumentLockProtocol(lm)
        assert protocol.try_write(1, "t", Rid(0, 0), docid=1)
        assert protocol.try_read_direct(2, docid=2)

    def test_resources_distinct(self):
        assert doc_resource("c", 1) != doc_resource("c", 2)
        assert doc_resource("c", 1) != row_resource("c", Rid(0, 1))


class TestMvcc:
    def test_version_key_order(self):
        newer = version_key(1, 5, b"\x02")
        older = version_key(1, 3, b"\x02")
        assert newer < older  # descending ver#
        assert split_version_key(newer) == (1, 5, b"\x02")

    @pytest.fixture
    def store(self, pool):
        return VersionedXmlStore(pool, NameTable(), record_limit=64,
                                 retained_versions=3)

    def test_snapshot_isolation(self, store):
        v1 = store.commit_version_text(1, "<a>one</a>")
        snapshot = store.latest_version
        v2 = store.commit_version_text(1, "<a>two</a>")
        assert serialize(store.document_at(1, snapshot).events()) == \
            "<a>one</a>"
        assert serialize(store.document_latest(1).events()) == "<a>two</a>"
        assert v2 > v1

    def test_reader_sees_consistent_version_during_writes(self, store):
        store.commit_version_text(1, "<doc><n>1</n></doc>")
        snapshot = store.latest_version
        reader = store.document_at(1, snapshot)
        for n in range(2, 4):  # stay within the retention bound
            store.commit_version_text(1, f"<doc><n>{n}</n></doc>")
        # Deferred access: the reader's view still resolves (paper's claim).
        assert serialize(reader.events()) == "<doc><n>1</n></doc>"

    def test_garbage_collection_bounds_versions(self, store):
        for n in range(6):
            store.commit_version_text(1, f"<a>{n}</a>")
        assert store.version_count(1) == 3
        with pytest.raises(DocumentNotFoundError):
            store.document_at(1, 1)  # GC'd snapshot

    def test_multiple_documents(self, store):
        store.commit_version_text(1, "<a>doc1</a>")
        store.commit_version_text(2, "<b>doc2</b>")
        assert serialize(store.document_latest(2).events()) == "<b>doc2</b>"

    def test_missing_document(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.document_latest(404)

    def test_packed_documents_version_correctly(self, store):
        big = "<r>" + "".join(f"<i>{n}</i>" for n in range(30)) + "</r>"
        store.commit_version_text(1, big)
        snapshot = store.latest_version
        store.commit_version_text(1, big.replace("<i>0</i>", "<i>zero</i>"))
        assert "<i>0</i>" in serialize(store.document_at(1, snapshot).events())
        assert "<i>zero</i>" in serialize(store.document_latest(1).events())


class TestSubdocumentLocking:
    def test_prefix_overlap(self):
        assert subtree_overlaps(b"\x02", b"\x02\x04")
        assert subtree_overlaps(b"\x02\x04", b"\x02")
        assert subtree_overlaps(b"\x02", b"\x02")
        assert not subtree_overlaps(b"\x02\x02", b"\x02\x04")

    def test_disjoint_subtrees_write_concurrently(self, stats):
        table = PrefixLockTable(stats)
        assert table.try_acquire(1, (7, b"\x02\x02"), LockMode.X)
        assert table.try_acquire(2, (7, b"\x02\x04"), LockMode.X)

    def test_ancestor_lock_blocks_descendant(self, stats):
        table = PrefixLockTable(stats)
        assert table.try_acquire(1, (7, b"\x02"), LockMode.X)
        assert not table.try_acquire(2, (7, b"\x02\x04\x02"), LockMode.X)

    def test_descendant_lock_blocks_ancestor(self, stats):
        table = PrefixLockTable(stats)
        assert table.try_acquire(1, (7, b"\x02\x04"), LockMode.X)
        assert not table.try_acquire(2, (7, b"\x02"), LockMode.X)

    def test_shared_locks_overlap(self, stats):
        table = PrefixLockTable(stats)
        assert table.try_acquire(1, (7, b"\x02"), LockMode.S)
        assert table.try_acquire(2, (7, b"\x02\x04"), LockMode.S)
        assert not table.try_acquire(3, (7, b"\x02\x04"), LockMode.X)

    def test_different_documents_never_conflict(self, stats):
        table = PrefixLockTable(stats)
        assert table.try_acquire(1, (1, b"\x02"), LockMode.X)
        assert table.try_acquire(2, (2, b"\x02"), LockMode.X)

    def test_covers(self, stats):
        table = PrefixLockTable(stats)
        table.try_acquire(1, (7, b"\x02"), LockMode.X)
        assert table.covers(1, 7, b"\x02\x04\x06", LockMode.S)
        assert not table.covers(1, 7, b"\x04", LockMode.S)

    def test_release_unblocks(self, stats):
        table = PrefixLockTable(stats)
        table.try_acquire(1, (7, b"\x02"), LockMode.X)
        table.release_all(1)
        assert table.try_acquire(2, (7, b"\x02\x02"), LockMode.X)

    def test_document_adapter_escalates(self, stats):
        table = PrefixLockTable(stats)
        adapter = DocumentGranularityAdapter(table)
        assert adapter.try_acquire(1, (7, b"\x02\x02"), LockMode.X)
        # Disjoint subtree, but the adapter locked the whole document.
        assert not adapter.try_acquire(2, (7, b"\x02\x04"), LockMode.X)

    def test_concurrency_gain_under_scheduler(self, stats):
        """E9b shape: disjoint-subtree writers under the two granularities."""
        subtrees = [bytes([2, 2 * i]) for i in range(1, 6)]

        def writer(node_id):
            def body(txn_id):
                yield Lock((1, node_id), LockMode.X)
                yield Do(lambda: None)
                yield Do(lambda: None)
            return body

        programs = [(f"w{i}", writer(node)) for i, node in
                    enumerate(subtrees)]
        fine = Scheduler(PrefixLockTable(StatsRegistry()), seed=2).run(
            list(programs))
        coarse_table = PrefixLockTable(StatsRegistry())
        coarse = Scheduler(DocumentGranularityAdapter(coarse_table),
                           seed=2).run(list(programs))
        assert fine.committed == coarse.committed == 5
        assert fine.wait_steps < coarse.wait_steps

    def test_deadlock_detection(self, stats):
        table = PrefixLockTable(stats)
        table.try_acquire(1, (1, b"\x02"), LockMode.X)
        table.try_acquire(2, (1, b"\x04"), LockMode.X)
        assert not table.try_acquire(1, (1, b"\x04"), LockMode.X)
        assert not table.try_acquire(2, (1, b"\x02"), LockMode.X)
        cycle = table.find_deadlock()
        assert cycle and set(cycle) == {1, 2}
