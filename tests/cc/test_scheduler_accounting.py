"""Accounting attribution under the deterministic concurrent scheduler.

The cross-cutting invariant: every finished program emits exactly one
:class:`~repro.rdb.txn.AccountingRecord`, victim attempts fold into it, and
the records' counter deltas sum to the registry's global deltas for the
whole run (meta ``obs.*`` counters excluded — they are bumped outside any
charge context by design).
"""

from collections import Counter

from repro.core.stats import StatsRegistry
from repro.cc.scheduler import Do, Lock, Scheduler
from repro.rdb.locks import LockManager, LockMode


def run_sum_check(result, scheduler, deltas, expected_records):
    records = scheduler.accounting.records()
    assert len(records) == expected_records
    assert scheduler.accounting.emitted == expected_records
    total: Counter = Counter()
    for record in records:
        total.update(record.counters)
    visible = {name: value for name, value in deltas.items()
               if value and not name.startswith("obs.")}
    assert dict(total) == visible
    return records


class TestSchedulerAccounting:
    def test_uncontended_programs_emit_one_record_each(self):
        stats = StatsRegistry()
        locks = LockManager(stats)
        scheduler = Scheduler(locks, seed=1, stats=stats)

        def program(name):
            def body(txn_id):
                yield Lock(("r", name), LockMode.X)
                yield Do(lambda: None)
            return body

        with stats.delta() as deltas:
            result = scheduler.run([("a", program("a")),
                                    ("b", program("b"))])
        assert result.committed == 2
        records = run_sum_check(result, scheduler, deltas, 2)
        assert all(r.outcome == "committed" for r in records)
        assert all(r.isolation == "-" for r in records)
        assert all(r.retries == 0 and r.victim_attempts == ()
                   for r in records)
        assert all(r.counters.get("lock.acquired") == 1 for r in records)

    def test_deadlock_victim_folds_restart_into_one_record(self):
        stats = StatsRegistry()
        locks = LockManager(stats)
        scheduler = Scheduler(locks, seed=7, stats=stats)

        def program(first, second):
            def body(txn_id):
                yield Lock(first, LockMode.X)
                yield Lock(second, LockMode.X)
            return body

        with stats.delta() as deltas:
            result = scheduler.run([("ab", program("a", "b")),
                                    ("ba", program("b", "a"))],
                                   round_robin=True)
        assert result.committed == 2
        assert result.deadlock_aborts >= 1
        records = run_sum_check(result, scheduler, deltas, 2)
        victims = [r for r in records if r.retries > 0]
        assert victims, "a deadlock victim must have been restarted"
        for record in victims:
            # One record per program: the aborted attempts appear only as
            # folded victim ids, never as separate records.
            assert len(record.victim_attempts) == record.retries
            assert record.outcome == "committed"
            assert record.counters.get("txn.deadlock_aborts", 0) >= 1

    def test_timeout_victim_out_of_restarts_is_an_aborted_record(self):
        stats = StatsRegistry()
        locks = LockManager(stats)
        scheduler = Scheduler(locks, seed=3, stats=stats,
                              wait_budget=4, max_restarts=1)
        order: list[str] = []

        def hog(txn_id):
            yield Lock("hot", LockMode.X)
            for _ in range(60):
                yield Do(lambda: order.append("tick"))

        def starved(txn_id):
            yield Lock("hot", LockMode.X)

        result = scheduler.run([("hog", hog), ("starved", starved)],
                               round_robin=True)
        if result.failed:
            aborted = [r for r in scheduler.accounting.records()
                       if r.outcome == "aborted"]
            assert len(aborted) == 1
            assert aborted[0].retries == 1
            assert len(aborted[0].victim_attempts) == 1
        # Either way, every program produced exactly one record.
        assert scheduler.accounting.emitted == 2
