"""Unit tests for the tracing substrate (spans, deltas, export)."""

import json

from repro.core.stats import StatsRegistry
from repro.obs import Span, Tracer, span_to_dict, write_trace
from repro.obs.export import trace_to_json


class TestNullPath:
    def test_trace_without_tracer_yields_none(self):
        stats = StatsRegistry()
        with stats.trace("anything", attr=1) as span:
            assert span is None

    def test_trace_event_without_tracer_is_noop(self):
        stats = StatsRegistry()
        stats.trace_event("anything", attr=1)  # must not raise

    def test_null_trace_is_reusable_and_reentrant(self):
        stats = StatsRegistry()
        with stats.trace("a"):
            with stats.trace("b"):
                pass
        with stats.trace("c"):
            pass

    def test_null_trace_propagates_exceptions(self):
        stats = StatsRegistry()
        try:
            with stats.trace("x"):
                raise ValueError("boom")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception was swallowed")


class TestSpans:
    def test_span_captures_counter_deltas(self):
        stats = StatsRegistry()
        stats.add("io", 5)
        tracer = Tracer(stats)
        with tracer.install():
            with stats.trace("work") as span:
                stats.add("io", 3)
                stats.add("new", 1)
        assert span.counters == {"io": 3, "new": 1}
        assert span.counter("io") == 3
        assert span.counter("missing") == 0

    def test_spans_nest_by_call_order(self):
        stats = StatsRegistry()
        tracer = Tracer(stats)
        with tracer.install():
            with stats.trace("outer"):
                stats.add("a")
                with stats.trace("inner") as inner:
                    stats.add("b")
        outer = tracer.root.find("outer")
        assert [c.name for c in outer.children] == ["inner"]
        # Outer deltas are inclusive of the inner span's work.
        assert outer.counters == {"a": 1, "b": 1}
        assert inner.counters == {"b": 1}

    def test_attrs_and_set(self):
        stats = StatsRegistry()
        tracer = Tracer(stats)
        with tracer.install():
            with stats.trace("op", key="v") as span:
                span.set("rows", 7)
        assert tracer.root.find("op").attrs == {"key": "v", "rows": 7}

    def test_events_are_childless_markers(self):
        stats = StatsRegistry()
        tracer = Tracer(stats)
        with tracer.install():
            with stats.trace("op"):
                stats.trace_event("tick", n=1)
        event = tracer.root.find("tick")
        assert event.kind == "event"
        assert event.attrs == {"n": 1}

    def test_install_restores_previous_tracer(self):
        stats = StatsRegistry()
        outer, inner = Tracer(stats), Tracer(stats)
        with outer.install():
            with inner.install():
                assert stats.tracer is inner
            assert stats.tracer is outer
        assert stats.tracer is None

    def test_root_counters_cover_install_window(self):
        stats = StatsRegistry()
        tracer = Tracer(stats)
        with tracer.install():
            stats.add("x", 2)
        assert tracer.root.counters == {"x": 2}

    def test_find_all(self):
        stats = StatsRegistry()
        tracer = Tracer(stats)
        with tracer.install():
            for _ in range(3):
                with stats.trace("leaf"):
                    pass
        assert len(tracer.root.find_all("leaf")) == 3

    def test_format_renders_tree(self):
        stats = StatsRegistry()
        tracer = Tracer(stats)
        with tracer.install():
            with stats.trace("parent", n=1):
                stats.add("io")
                with stats.trace("child"):
                    pass
        text = tracer.root.format()
        assert "parent" in text and "child" in text and "io=1" in text


class TestExport:
    def test_span_to_dict_roundtrips_json(self):
        stats = StatsRegistry()
        tracer = Tracer(stats)
        with tracer.install():
            with stats.trace("op", blob=b"\x01\x02", tag="t") as span:
                stats.add("io", 2)
                span.set("rid", (1, 2))
        data = json.loads(trace_to_json(tracer))
        op = data["children"][0]
        assert op["name"] == "op"
        assert op["counters"] == {"io": 2}
        assert op["attrs"]["blob"] == "0102"       # bytes hex-encoded
        assert op["attrs"]["rid"] == [1, 2]        # tuples to lists

    def test_write_trace_creates_artifact(self, tmp_path):
        span = Span("root")
        span.children.append(Span("child", {"k": 1}))
        path = tmp_path / "sub" / "trace.json"
        written = write_trace(str(path), span)
        assert written == str(path)
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "root"
        assert loaded["children"][0]["attrs"] == {"k": 1}
        assert span_to_dict(span) == loaded
