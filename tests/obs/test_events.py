"""The structured event trace, the interval collector, and the profiler."""

import subprocess
import sys

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.core.stats import StatsRegistry
from repro.fault.harness import CrashHarness
from repro.fault.injector import FaultInjector, FaultPlan
from repro.obs.events import (ALL_CLASSES, EventClass, EventTrace,
                              StatsCollector, read_jsonl)
from repro.obs.perf import profile_records, render_profile


@pytest.fixture
def stats():
    return StatsRegistry()


class TestEventTrace:
    def test_emit_and_drain_in_timestamp_order(self):
        trace = EventTrace()
        trace.accounting("txn.accounting", txn_id=1, outcome="committed")
        trace.performance("wait.lock_wait", us=20)
        records = trace.records()
        assert [r.name for r in records] == ["txn.accounting",
                                             "wait.lock_wait"]
        assert records[0].event_class == "accounting"
        assert records[1].event_class == "performance"
        assert records[0].txn_id == 1

    def test_disabled_class_is_not_recorded(self):
        trace = EventTrace(classes={EventClass.ACCOUNTING})
        assert trace.performance("wait.lock_wait", us=5) is None
        assert trace.accounting("serve.request") is not None
        assert [r.name for r in trace.records()] == ["serve.request"]

    def test_fully_disabled_trace_records_nothing(self):
        trace = EventTrace(classes=())
        assert trace.accounting("serve.request") is None
        assert trace.records() == []

    def test_ring_wraps_and_counts_drops(self):
        trace = EventTrace(ring_size=4)
        for i in range(10):
            trace.performance("wait.latch_wait", us=i)
        records = trace.records()
        assert len(records) == 4
        assert trace.dropped == 6
        # Newest survive the wrap.
        assert [r.payload["us"] for r in records] == [6, 7, 8, 9]

    def test_context_stamps_and_nests(self):
        trace = EventTrace()
        with trace.context(request="c1-op2"):
            trace.performance("wait.lock_wait", us=1)
            with trace.context(txn_id=9):
                trace.performance("wait.wal_force", us=2)
        trace.performance("wait.latch_wait", us=3)
        by_name = {r.name: r for r in trace.records()}
        assert by_name["wait.lock_wait"].request == "c1-op2"
        assert by_name["wait.lock_wait"].txn_id is None
        # The inner txn context inherits the outer request label.
        assert by_name["wait.wal_force"].request == "c1-op2"
        assert by_name["wait.wal_force"].txn_id == 9
        # Outside any context, no stamp.
        assert by_name["wait.latch_wait"].request is None

    def test_install_gates_stats_emission(self, stats):
        stats.charge_wait("lock.wait", 10)  # no trace: one None test
        trace = EventTrace()
        with trace.installed(stats):
            stats.charge_wait("lock.wait", 25)
        stats.charge_wait("lock.wait", 40)  # uninstalled again
        records = trace.records()
        assert [r.payload["us"] for r in records] == [25]
        assert records[0].name == "wait.lock.wait"
        assert stats.events is None

    def test_uninstall_leaves_a_foreign_trace_alone(self, stats):
        mine, other = EventTrace(), EventTrace()
        mine.install(stats)
        other.uninstall(stats)  # not the installed one: no-op
        assert stats.events is mine

    def test_jsonl_round_trip(self, tmp_path):
        trace = EventTrace()
        with trace.context(request="c0-op0"):
            trace.accounting("serve.request", elapsed_us=120,
                             waits={"lock.wait": 30})
        path = str(tmp_path / "trace.jsonl")
        assert trace.write_jsonl(path) == 1
        loaded = read_jsonl(path)
        assert loaded[0]["name"] == "serve.request"
        assert loaded[0]["request"] == "c0-op0"
        assert loaded[0]["payload"]["waits"] == {"lock.wait": 30}


class TestStatsCollector:
    def test_interval_deltas(self, stats):
        trace = EventTrace()
        collector = StatsCollector(stats, trace, interval=0.01)
        with collector.running():
            stats.add("buffer.hits", 3)
        records = [r for r in trace.records() if r.name == "stats.interval"]
        assert records, "stop() must emit a final interval record"
        merged: dict[str, int] = {}
        for record in records:
            for name, delta in record.payload["counters"].items():
                merged[name] = merged.get(name, 0) + delta
        assert merged.get("buffer.hits") == 3

    def test_rejects_nonpositive_interval(self, stats):
        with pytest.raises(ValueError):
            StatsCollector(stats, EventTrace(), interval=0)


class TestFaultEvents:
    def test_injected_fault_emits_performance_event(self, stats):
        trace = EventTrace().install(stats)
        injector = FaultInjector([FaultPlan.fail_nth_write(1)], stats=stats)
        outcome = injector.on_write(0, b"\x00" * 8)
        assert outcome.fail
        faults = [r for r in trace.records()
                  if r.name.startswith("fault.")]
        assert len(faults) == 1 and faults[0].event_class == "performance"

    def test_crash_harness_flight_recorder(self, tmp_path):
        def load(db):
            db.create_table("t", [("id", "bigint"), ("doc", "xml")])
            for i in range(3):
                db.run_in_txn(lambda eng, txn, i=i: eng.insert(
                    "t", (i, f"<a><b>{i}</b></a>"), txn_id=txn.txn_id))

        harness = CrashHarness(str(tmp_path), config=EngineConfig(),
                               trace=EventTrace())
        outcome = harness.run(
            load, plan=[FaultPlan.crash_at("wal.commit.pre", 3)])
        assert outcome.crashed
        post = harness.post_mortem(8)
        assert post and post[-1]["name"] == "fault.crash"
        harness.restart()
        dumped = read_jsonl(harness.events_path)
        assert any(r["name"] == "fault.crash" for r in dumped)
        assert any(r["name"] == "txn.accounting" for r in dumped)


class TestPerfProfiler:
    def _traced_engine_records(self):
        stats = StatsRegistry()
        trace = EventTrace(classes=ALL_CLASSES).install(stats)
        db = Database(EngineConfig(), stats=stats)
        db.create_table("t", [("id", "bigint"), ("doc", "xml")])
        with trace.context(request="c0-op0"):
            db.run_in_txn(lambda eng, txn: eng.insert(
                "t", (1, "<a><b>x</b></a>"), txn_id=txn.txn_id))
            trace.accounting("serve.request", request="c0-op0",
                             elapsed_us=500, outcome="ok",
                             waits={"lock.wait": 10})
        db.close()
        return [r.to_dict() for r in trace.records()]

    def test_profile_pairs_waits_to_requests(self):
        profile = profile_records(self._traced_engine_records())
        assert profile.requests and \
            profile.requests[0].label == "c0-op0"
        assert profile.records_by_class.get("accounting", 0) >= 2
        text = render_profile(profile)
        assert "WAIT-CLASS PROFILE" in text
        assert "SLOWEST REQUEST" in text

    def test_cli_renders_a_jsonl_trace(self, tmp_path):
        import json
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(
            json.dumps(record) for record in self._traced_engine_records()))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.perf", str(path)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "WAIT-CLASS PROFILE" in proc.stdout
        assert "TRACE SUMMARY" in proc.stdout
