"""The wait clock (DB2 accounting class-3 analogue) and its reading side."""

import threading

import pytest

from repro.analyze import sanitize
from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.core.stats import WAITS, StatsRegistry, wait_counter
from repro.errors import SanitizerError
from repro.obs.waits import (WAIT_CLASS_ORDER, format_breakdown,
                             total_wait_us, wait_breakdown, wait_profile)


@pytest.fixture
def stats():
    return StatsRegistry()


@pytest.fixture
def unarmed():
    """Disarm sanitizers for tests that forge wait charges (a forged
    charge inside a microsecond-long clock is exactly what the reconcile
    sanitizer exists to reject)."""
    was_armed = sanitize.enabled()
    sanitize.disable()
    yield
    if was_armed:
        sanitize.enable()


@pytest.fixture
def armed():
    """Arm sanitizers for one test, restoring the suite's state after."""
    was_armed = sanitize.enabled()
    sanitize.enable()
    yield
    if not was_armed:
        sanitize.disable()


class TestChargeWait:
    def test_charge_lands_in_the_class_counter(self, stats):
        stats.charge_wait("lock.wait", 250)
        assert stats.get("waits.lock_wait_us") == 250
        assert stats.get(wait_counter("lock.wait")) == 250

    def test_zero_and_negative_charges_are_dropped(self, stats):
        stats.charge_wait("lock.wait", 0)
        stats.charge_wait("lock.wait", -5)
        assert stats.counters().get("waits.lock_wait_us", 0) == 0

    def test_wait_timer_charges_wall_clock(self, stats):
        import time
        with stats.wait_timer("wal.force"):
            time.sleep(0.002)
        assert stats.get("waits.wal_force_us") >= 1000

    def test_every_wait_class_has_a_registered_counter(self, stats):
        from repro.core.stats import METRICS
        for wait_class in WAITS:
            assert wait_counter(wait_class) in METRICS


class TestRequestClock:
    def test_charges_fold_into_the_open_clock(self, stats, unarmed):
        with stats.request_clock() as waits:
            stats.charge_wait("lock.wait", 100)
            stats.charge_wait("lock.wait", 50)
            stats.charge_wait("wal.force", 10)
        assert waits == {"lock.wait": 150, "wal.force": 10}
        hist = stats.histogram("waits.request_wait_us")
        assert hist is not None and hist.count == 1

    def test_nested_clocks_both_see_inner_charges(self, stats, unarmed):
        with stats.request_clock() as outer:
            stats.charge_wait("admission.queue", 40)
            with stats.request_clock() as inner:
                stats.charge_wait("lock.wait", 7)
        assert inner == {"lock.wait": 7}
        assert outer == {"admission.queue": 40, "lock.wait": 7}

    def test_clock_is_thread_local(self, stats, unarmed):
        seen = {}

        def other():
            with stats.request_clock() as waits:
                seen["other"] = dict(waits)

        with stats.request_clock() as waits:
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
            stats.charge_wait("lock.wait", 9)
        assert waits == {"lock.wait": 9}
        assert seen["other"] == {}

    def test_reconcile_trips_on_overcharge(self, stats, armed):
        with pytest.raises(SanitizerError, match="waits.reconcile"):
            with stats.request_clock():
                # An hour of forged wait inside a microsecond block can
                # only mean a double-charge; the sanitizer must say so.
                stats.charge_wait("lock.wait", 3_600_000_000)
        assert stats.get("sanitize.waits.reconcile") == 1

    def test_honest_charges_reconcile(self, stats, armed):
        import time
        with stats.request_clock():
            with stats.wait_timer("lock.wait"):
                time.sleep(0.001)
        assert stats.get("sanitize.waits.reconcile") == 0


class TestReadingSide:
    def test_order_covers_the_registry(self):
        assert frozenset(WAIT_CLASS_ORDER) == WAITS

    def test_breakdown_folds_counters(self, stats):
        stats.charge_wait("lock.wait", 120)
        stats.charge_wait("wal.force", 30)
        by_class = wait_breakdown(stats.counters())
        assert by_class == {"lock.wait": 120, "wal.force": 30}
        assert total_wait_us(stats.counters()) == 150

    def test_format_breakdown_mentions_each_class(self, stats):
        stats.charge_wait("lock.wait", 120)
        text = "\n".join(format_breakdown({"lock.wait": 120}))
        assert "lock.wait" in text and "120" in text

    def test_profile_shape(self, stats, unarmed):
        with stats.request_clock():
            stats.charge_wait("lock.wait", 80)
        profile = wait_profile(stats)
        assert profile["total_us"] == 80
        assert profile["by_class"] == {"lock.wait": 80}
        assert profile["request_wait"]["count"] == 1
        assert profile["request_wait"]["max_us"] >= 80


class TestTxnAccountingWaits:
    def test_txn_wait_breakdown_reaches_accounting(self):
        db = Database(EngineConfig())
        db.create_table("t", [("id", "bigint"), ("doc", "xml")])
        db.run_in_txn(lambda eng, txn: eng.insert(
            "t", (1, "<a><b>x</b></a>"), txn_id=txn.txn_id))
        record = db.txns.accounting.records()[-1]
        assert record.wait_us == sum(record.waits.values())
        as_dict = record.to_dict()
        assert as_dict["wait_us"] == record.wait_us
        assert as_dict["waits"] == dict(record.waits)
        # Whatever was charged is a subset of the registered classes.
        assert set(record.waits) <= WAITS
        db.close()
