"""Exporters (Prometheus text + JSON), the slow-query log, and the report CLI."""

import json
import subprocess
import sys

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.core.stats import StatsRegistry
from repro.obs import (Tracer, engine_metrics, metrics_to_dict,
                       render_prometheus, write_metrics_json,
                       write_prometheus)
from repro.obs.report import main as report_main, render_artifact


def sample_stats() -> StatsRegistry:
    stats = StatsRegistry()
    stats.add("disk.page_reads", 7)
    stats.set_high_water("xscan.peak_units", 5)
    for value in (1, 3, 90):
        stats.observe("btree.search_entries", value)
    return stats


class TestPrometheus:
    def test_counters_gauges_histograms(self):
        text = render_prometheus(sample_stats())
        assert "# TYPE repro_disk_page_reads_total counter" in text
        assert "repro_disk_page_reads_total 7" in text
        assert "# TYPE repro_xscan_peak_units gauge" in text
        assert "repro_xscan_peak_units 5" in text
        assert "# TYPE repro_btree_search_entries histogram" in text
        # Cumulative le-buckets: 1 obs <= 1, 2 obs <= 4, all 3 <= 128.
        assert 'repro_btree_search_entries_bucket{le="1"} 1' in text
        assert 'repro_btree_search_entries_bucket{le="4"} 2' in text
        assert 'repro_btree_search_entries_bucket{le="128"} 3' in text
        assert 'repro_btree_search_entries_bucket{le="+Inf"} 3' in text
        assert "repro_btree_search_entries_sum 94" in text
        assert "repro_btree_search_entries_count 3" in text

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(sample_stats(), str(path))
        assert "repro_disk_page_reads_total 7" in path.read_text()

    def test_golden_exposition(self):
        # The full exposition, literally: HELP precedes TYPE for every
        # family, bucket counts are cumulative, +Inf closes each histogram.
        assert render_prometheus(sample_stats()) == (
            "# HELP repro_disk_page_reads_total Engine counter "
            "disk.page_reads (see repro.core.stats registries)\n"
            "# TYPE repro_disk_page_reads_total counter\n"
            "repro_disk_page_reads_total 7\n"
            "# HELP repro_xscan_peak_units Engine gauge xscan.peak_units "
            "(see repro.core.stats registries)\n"
            "# TYPE repro_xscan_peak_units gauge\n"
            "repro_xscan_peak_units 5\n"
            "# HELP repro_btree_search_entries Engine histogram "
            "btree.search_entries (see repro.core.stats registries)\n"
            "# TYPE repro_btree_search_entries histogram\n"
            'repro_btree_search_entries_bucket{le="1"} 1\n'
            'repro_btree_search_entries_bucket{le="4"} 2\n'
            'repro_btree_search_entries_bucket{le="128"} 3\n'
            'repro_btree_search_entries_bucket{le="+Inf"} 3\n'
            "repro_btree_search_entries_sum 94\n"
            "repro_btree_search_entries_count 3\n")

    def test_curated_help_overrides(self):
        stats = StatsRegistry()
        stats.observe("serve.request_us", 42)
        text = render_prometheus(stats)
        assert ("# HELP repro_serve_request_us End-to-end request latency "
                "in microseconds (submit to finish, queue wait included)"
                in text)

    def test_help_and_label_escaping(self):
        from repro.obs.exporters import _escape_help, _escape_label
        assert _escape_help("a\\b\nc") == "a\\\\b\\nc"
        assert _escape_label('say "hi"\\\n') == 'say \\"hi\\"\\\\\\n'

    def test_bucket_counts_are_cumulative_and_end_at_count(self):
        stats = StatsRegistry()
        for value in (1, 1, 2, 500, 10_000_000):
            stats.observe("serve.request_us", value)
        text = render_prometheus(stats)
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("repro_serve_request_us_bucket")]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 5, "+Inf bucket must equal the sample count"


class TestJsonArtifacts:
    def test_metrics_to_dict_shape(self):
        data = metrics_to_dict(sample_stats())
        assert data["counters"] == {"disk.page_reads": 7}
        assert data["gauges"] == {"xscan.peak_units": 5}
        hist = data["histograms"]["btree.search_entries"]
        assert hist["count"] == 3 and hist["max"] == 90
        assert hist["buckets"] == [[1, 1], [4, 1], [128, 1]]

    def test_engine_metrics_includes_accounting_and_snapshot(self, tmp_path):
        db = Database(EngineConfig(slow_query_events=1))
        db.create_table("t", [("doc", "xml")])
        db.run_in_txn(lambda eng, txn: eng.insert(
            "t", ("<a><b>x</b></a>",), txn_id=txn.txn_id))
        db.xpath("t", "doc", "/a/b")  # trips the events threshold
        artifact = engine_metrics(db)
        assert artifact["accounting"][0]["outcome"] == "committed"
        assert artifact["slow_queries"][0]["path"] == "/a/b"
        assert artifact["snapshot"]["buffer_pool"]["capacity"] == \
            db.config.buffer_pool_pages
        path = tmp_path / "run.metrics.json"
        write_metrics_json(artifact, str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(artifact))


class TestSlowQueryLog:
    def make_db(self, **thresholds) -> Database:
        db = Database(EngineConfig(**thresholds))
        db.create_table("t", [("doc", "xml")])
        for i in range(3):
            db.insert("t", (f"<a><b n='{i}'>x</b></a>",))
        return db

    def test_offender_is_captured_with_plan_and_trace(self):
        db = self.make_db(slow_query_events=1)
        db.xpath("t", "doc", "/a/b")
        assert len(db.slow_queries) == 1
        record = db.slow_queries.records()[0]
        assert record.path == "/a/b"
        assert record.table == "t" and record.column == "doc"
        assert "xscan.events" in record.exceeded
        value, limit = record.exceeded["xscan.events"]
        assert value > limit == 1
        assert record.plan_text  # the planner's explanation came along
        # The span tree captured the whole query.
        assert record.root.find("db.xpath") is not None
        assert db.stats.get("obs.slow_queries") == 1
        assert "SLOW QUERY" in record.format()
        json.dumps(record.to_dict())

    def test_under_threshold_query_leaves_no_trace(self):
        db = self.make_db(slow_query_events=10_000)
        db.xpath("t", "doc", "/a/b")
        assert len(db.slow_queries) == 0
        assert db.stats.get("obs.slow_queries") == 0

    def test_no_thresholds_means_no_per_query_tracer(self):
        db = self.make_db()
        assert db.stats.tracer is None
        db.xpath("t", "doc", "/a/b")
        assert db.stats.tracer is None
        assert len(db.slow_queries) == 0

    def test_slow_query_tracer_nests_under_user_tracer(self):
        # The per-query tracer must restore an already-installed tracer —
        # the engine's capture cannot eat the user's trace session.
        db = self.make_db(slow_query_events=1)
        mine = Tracer(db.stats, name="mine")
        with mine.install():
            db.xpath("t", "doc", "/a/b")
            assert db.stats.tracer is mine
        assert db.stats.tracer is None
        assert len(db.slow_queries) == 1

    def test_ring_is_bounded(self):
        db = self.make_db(slow_query_events=1, slow_query_log_size=2)
        for _ in range(4):
            db.xpath("t", "doc", "/a/b")
        assert len(db.slow_queries) == 2
        assert db.slow_queries.captured == 4


class TestReportCli:
    def test_render_artifact_sections(self):
        db = Database(EngineConfig(slow_query_events=1))
        db.create_table("t", [("doc", "xml")])
        db.run_in_txn(lambda eng, txn: eng.insert(
            "t", ("<a><b>x</b></a>",), txn_id=txn.txn_id))
        db.xpath("t", "doc", "/a/b")
        text = render_artifact(engine_metrics(db), title="unit")
        assert "ENGINE REPORT: unit" in text
        for section in ("== COUNTERS ==", "== HISTOGRAMS ==",
                        "== ACCOUNTING ==", "== SLOW QUERIES =="):
            assert section in text
        assert "wal.records" in text
        assert "wal.record_bytes" in text
        assert "1 transactions (1 committed, 0 aborted" in text
        assert "'/a/b' on t.doc" in text

    def test_main_reads_artifact_files(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        write_metrics_json(metrics_to_dict(sample_stats()), str(path))
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert str(path) in out
        assert "btree.search_entries" in out

    def test_main_rejects_unreadable_artifact(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert report_main([str(missing)]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_module_entrypoint_demo(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "ENGINE REPORT" in proc.stdout
        assert "== HISTOGRAMS ==" in proc.stdout
