"""DISPLAY-style monitor snapshots against a live engine."""

from repro.core.config import EngineConfig
from repro.core.engine import Database
from repro.obs import Monitor
from repro.rdb.locks import LockMode


def seeded_db() -> Database:
    db = Database()
    db.create_table("t", [("n", "bigint"), ("doc", "xml")])
    db.create_xpath_index("vix", "t", "doc", "/a/v", "double")
    for i in range(3):
        db.insert("t", (i, f"<a><v>{i}</v></a>"))
    db.xpath("t", "doc", "/a/v")
    return db


class TestBufferPoolView:
    def test_occupancy_and_hit_ratio(self):
        db = seeded_db()
        # Snapshot assembly itself touches the pool (storage views read
        # pages), so compare against the counters at snapshot start.
        hits_before = db.stats.get("buffer.hits")
        view = Monitor(db).snapshot().buffer_pool
        assert view.capacity == db.config.buffer_pool_pages
        assert 0 < view.resident <= view.capacity
        assert view.resident == db.pool.resident_count()
        assert view.pinned == 0          # quiesced engine: nothing pinned
        assert view.dirty == db.pool.dirty_count()
        assert view.hits == hits_before
        assert 0.0 < view.hit_ratio <= 1.0
        assert view.to_dict()["capacity"] == view.capacity

    def test_idle_pool_ratio_is_zero(self):
        view = Monitor(Database()).snapshot().buffer_pool
        assert view.hit_ratio == 0.0


class TestLockTableView:
    def test_grants_waiters_and_dot(self):
        db = Database()
        holder = db.txns.begin()
        holder.lock(("doc", "t", 1), LockMode.X)
        waiter = db.txns.begin()
        assert not waiter.try_lock(("doc", "t", 1), LockMode.S)
        view = Monitor(db).snapshot().lock_table
        assert view.grants == {
            str(("doc", "t", 1)): {holder.txn_id: "X"}}
        assert view.granted_count == 1
        assert view.waiters == {waiter.txn_id: (holder.txn_id,)}
        dot = view.wait_for_dot()
        assert dot.startswith("digraph waits_for {")
        assert f'"txn{waiter.txn_id}" -> "txn{holder.txn_id}";' in dot
        holder.commit()
        waiter.abort()

    def test_snapshot_is_a_copy(self):
        db = Database()
        txn = db.txns.begin()
        txn.lock(("r",), LockMode.S)
        view = Monitor(db).snapshot().lock_table
        txn.commit()
        # The released grant is still visible in the earlier snapshot ...
        assert view.granted_count == 1
        # ... and gone from a fresh one.
        assert Monitor(db).snapshot().lock_table.granted_count == 0


class TestWalView:
    def test_lsn_and_checkpoint_lag(self):
        db = seeded_db()
        before = Monitor(db).snapshot().wal
        assert before.next_lsn == db.log.next_lsn
        assert before.bytes_written > 0
        assert before.bytes_since_checkpoint == before.bytes_written
        assert before.last_checkpoint_lsn is None
        db.checkpoint()
        after = Monitor(db).snapshot().wal
        assert after.bytes_since_checkpoint == 0
        assert after.last_checkpoint_lsn is not None
        assert after.checkpoints == 1


class TestTransactionTable:
    def test_active_transactions_with_lock_counts(self):
        db = Database()
        txn = db.txns.begin()
        txn.lock(("a",), LockMode.S)
        txn.lock(("b",), LockMode.X)
        rows = Monitor(db).snapshot().transactions
        assert len(rows) == 1
        assert rows[0].txn_id == txn.txn_id
        assert rows[0].state == "active"
        assert rows[0].isolation == "cs"
        assert rows[0].locks_held == 2
        txn.commit()
        assert Monitor(db).snapshot().transactions == ()


class TestStorageViews:
    def test_per_space_and_per_index_counts(self):
        db = seeded_db()
        db.tables["t"].create_column_index("n")
        snap = Monitor(db).snapshot()
        assert snap.tables["t"]["space"]["records"] == 3
        assert snap.tables["t"]["space"]["pages"] >= 1
        assert snap.tables["t"]["column_indexes"]["n"]["entries"] == 3
        assert snap.xml_stores["t.doc"]["record_count"] == 3
        assert snap.xml_stores["t.doc"]["nodeid_index_entries"] > 0
        assert snap.docid_indexes["t"]["entries"] == 3
        assert snap.value_indexes["vix"]["entries"] == 3
        assert snap.value_indexes["vix"]["height"] >= 1

    def test_accounting_and_slow_query_summaries(self):
        db = Database(EngineConfig(slow_query_events=0))
        db.txns.begin().commit()
        snap = Monitor(db).snapshot()
        assert snap.accounting["emitted"] == 1
        assert snap.accounting["buffered"] == 1
        assert snap.accounting["records"][0]["outcome"] == "committed"
        assert snap.slow_queries == {"captured": 0, "buffered": 0}


class TestRendering:
    def test_to_dict_and_format(self):
        import json

        db = seeded_db()
        txn = db.txns.begin()
        txn.lock(("doc", "t", 1), LockMode.S)
        snap = Monitor(db).snapshot()
        data = snap.to_dict()
        json.dumps(data)  # must be JSON-safe
        assert set(data) >= {"buffer_pool", "lock_table", "wal",
                             "transactions", "tables", "xml_stores"}
        text = snap.format()
        for heading in ("BUFFER POOL", "LOCK TABLE", "LOG",
                        "TRANSACTIONS", "STORAGE", "ACCOUNTING"):
            assert heading in text
        assert f"txn{txn.txn_id}" in text
        txn.commit()
