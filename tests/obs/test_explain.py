"""EXPLAIN ANALYZE acceptance tests: span trees with per-operator counter
deltas for all four access-method operators (full scan, DocID list, anchor
verification, NodeID list)."""

import json

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.query.plan import AccessMethod


def catalog_doc(price, discount, name):
    return (f"<Catalog><Categories><Product id='x'>"
            f"<ProductName>{name}</ProductName>"
            f"<RegPrice>{price}</RegPrice>"
            f"<Discount>{discount}</Discount>"
            f"</Product></Categories></Catalog>")


QUERY = "/Catalog/Categories/Product[RegPrice > 100]"


@pytest.fixture
def db():
    database = Database(DEFAULT_CONFIG.with_(record_size_limit=128))
    database.create_table("catalog", [("id", "bigint"), ("doc", "xml")])
    prices = [50, 80, 120.5, 150, 200, 95, 130]
    discounts = [0.05, 0.2, 0.15, 0.3, 0.02, 0.12, 0.25]
    for i, (price, discount) in enumerate(zip(prices, discounts, strict=True)):
        database.insert("catalog",
                        (i, catalog_doc(price, discount, f"Item{i}")))
    database.create_xpath_index(
        "ix_price", "catalog", "doc",
        "/Catalog/Categories/Product/RegPrice", "double")
    return database


class TestExplainAnalyze:
    def test_full_scan_span_tree(self, db):
        result = db.explain_analyze("catalog", "doc", QUERY,
                                    method=AccessMethod.FULL_SCAN)
        assert result.plan.method is AccessMethod.FULL_SCAN
        assert result.row_count == 4
        scan = result.span("exec.full_scan")
        assert scan is not None
        assert scan.attrs["docs"] == 7
        assert scan.attrs["rows"] == 4
        # The operator's counter deltas carry the actual work.
        assert scan.counter("exec.docs_evaluated") == 7
        assert scan.counter("xscan.events") > 0
        # One QuickXScan child per evaluated document.
        assert len(scan.find_all("xscan.run")) == 7

    def test_docid_list_span_tree(self, db):
        result = db.explain_analyze("catalog", "doc", QUERY,
                                    method=AccessMethod.DOCID_LIST)
        assert result.row_count == 4
        op = result.span("exec.docid_list")
        assert op is not None
        probe = op.find("exec.probe")
        assert probe.attrs["candidates"] == 4
        assert probe.counter("btree.entries_scanned") > 0
        # Only candidate documents were re-evaluated.
        assert op.counter("exec.docs_evaluated") == 4

    def test_nodeid_list_and_anchor_spans(self, db):
        result = db.explain_analyze("catalog", "doc", QUERY,
                                    method=AccessMethod.NODEID_LIST)
        assert result.row_count == 4
        op = result.span("exec.nodeid_list")
        assert op is not None
        anchor = op.find("exec.anchor")
        assert anchor is not None
        assert anchor.attrs["anchors"] == 4
        assert anchor.counter("exec.anchors_verified") == 4
        # Anchor verification replays subtrees, never whole documents.
        assert op.counter("exec.docs_evaluated") == 0
        assert anchor.counter("buffer.hits") + \
            anchor.counter("buffer.misses") > 0

    def test_operator_costs_summary(self, db):
        result = db.explain_analyze("catalog", "doc", QUERY,
                                    method=AccessMethod.DOCID_LIST)
        costs = result.operator_costs()
        assert "exec.docid_list" in costs
        assert costs["exec.probe"]["exec.candidates"] == 4
        # Repeated per-document scans aggregate into one operator row.
        assert costs["xscan.run"]["xscan.events"] > 0

    def test_format_is_db2_style_text(self, db):
        result = db.explain_analyze("catalog", "doc", QUERY)
        text = result.format()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "access method:" in text
        assert "actual rows: 4" in text
        assert "operators (actual):" in text
        assert "trace:" in text

    def test_to_json_is_loadable(self, db):
        result = db.explain_analyze("catalog", "doc", QUERY,
                                    method=AccessMethod.NODEID_LIST)
        data = json.loads(result.to_json())
        assert data["plan"]["method"] == "nodeid-list"
        assert data["rows"] == 4
        assert data["trace"]["children"]  # span tree present

    def test_results_match_plain_xpath(self, db):
        plain = db.xpath("catalog", "doc", QUERY)
        explained = db.explain_analyze("catalog", "doc", QUERY)
        assert sorted(m.docid for m in explained.matches) == \
            sorted(r.docid for r in plain)

    def test_tracer_uninstalled_afterwards(self, db):
        db.explain_analyze("catalog", "doc", QUERY)
        assert db.stats.tracer is None

    def test_plain_queries_untraced_by_default(self, db):
        # No tracer installed: the hot path must not build spans.
        assert db.stats.tracer is None
        rows = db.xpath("catalog", "doc", QUERY)
        assert len(rows) == 4

    def test_explain_traces_dml_too(self, db):
        from repro.obs import Tracer
        tracer = Tracer(db.stats)
        with tracer.install():
            db.insert("catalog", (99, catalog_doc(999, 0.5, "Traced")))
        insert_span = tracer.root.find("db.insert")
        assert insert_span is not None
        assert insert_span.counter("wal.records") >= 1
        assert tracer.root.find("wal.append") is not None
        assert insert_span.counter("btree.inserts") >= 1
