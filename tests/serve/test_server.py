"""End-to-end serving-layer tests: sessions, statements, drain, monitor."""

import threading
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analyze import sanitize
from repro.analyze.framework import Program, SourceModule
from repro.analyze.threads import ThreadAnalysis
from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.errors import ServerClosedError, TransactionError
from repro.fault.injector import SimulatedCrash
from repro.obs.monitor import Monitor
from repro.rdb.locks import LockMode
from repro.serve import DatabaseServer

DOC = "<Product><Name>widget {i}</Name><Price>{i}</Price></Product>"


def make_db(**overrides):
    config = replace(DEFAULT_CONFIG, checkpoint_interval=0, **overrides)
    db = Database(config)
    db.create_table("docs", [("key", "varchar"), ("doc", "xml")])
    return db


class TestServing:
    def test_auto_commit_insert_and_query(self):
        db = make_db()
        with DatabaseServer(db) as server:
            with server.session() as session:
                for i in range(4):
                    session.insert("docs", (f"k{i}", DOC.format(i=i)))
                out = session.query("docs", "doc", "/Product/Name")
        assert len(out) == 4
        assert db.stats.get("serve.completed") == 5
        assert db.stats.get("serve.failed") == 0
        # The engine is single-threaded again after shutdown.
        assert db.txns.lock_wait_yield is None and db.backoff_sleep is None
        assert len(db.xpath("docs", "doc", "/Product")) == 4

    def test_many_concurrent_client_threads(self):
        db = make_db(serve_workers=4, serve_queue_limit=256)
        errors = []

        def client(index):
            try:
                with server.session() as session:
                    session.insert("docs", (f"c{index}",
                                            DOC.format(i=index)))
                    session.query("docs", "doc", "/Product/Name")
            except Exception as error:  # noqa: BLE001 - tally any failure
                errors.append(error)

        with DatabaseServer(db) as server:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(32)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert db.tables["docs"].row_count == 32
        assert db.stats.get("serve.sessions_opened") == 32
        assert db.stats.get("serve.sessions_closed") == 32

    def test_statement_cache_hits_and_lru(self):
        db = make_db(serve_stmt_cache_size=2)
        with DatabaseServer(db) as server:
            session = server.session()
            session.insert("docs", ("k", DOC.format(i=1)))
            for _ in range(3):
                session.query("docs", "doc", "/Product/Name")
            assert db.stats.get("serve.stmt_hits") == 2
            # Two more statements evict /Product/Name (cache size 2) ...
            session.query("docs", "doc", "/Product/Price")
            session.query("docs", "doc", "/Product")
            session.query("docs", "doc", "/Product/Name")
            # ... so its fourth use re-plans: 4 misses total, 2 hits.
            assert db.stats.get("serve.stmt_misses") == 4

    def test_prepared_plan_reused_until_invalidate(self):
        db = make_db()
        with DatabaseServer(db) as server:
            session = server.session()
            session.insert("docs", ("k", DOC.format(i=1)))
            session.query("docs", "doc", "/Product/Name")
            stmt = session.prepare("docs", "doc", "/Product/Name")
            assert stmt.plan is not None
            session.invalidate()
            assert stmt.plan is None
            assert session.query("docs", "doc", "/Product/Name")

    def test_explicit_txn_holds_locks_across_requests(self):
        db = make_db(serve_workers=2)
        with DatabaseServer(db) as server:
            holder = server.session()
            holder.begin()
            holder.lock(("doc", "docs", 1), LockMode.X)
            other = server.session()
            other.begin()
            assert db.txns.locks.locks_held(holder.txn.txn_id) == 1
            # The other session can take a different resource at once.
            other.lock(("doc", "docs", 2), LockMode.X)
            other.commit()
            holder.commit()
        assert db.stats.get("serve.failed") == 0

    def test_explicit_txn_contention_resolves(self):
        """Two sessions fight over one lock; the waiter wins after commit."""
        db = make_db(serve_workers=2, lock_wait_budget=4096)
        with DatabaseServer(db) as server:
            holder = server.session()
            holder.begin()
            holder.lock(("doc", "docs", 7), LockMode.X)
            got_lock = threading.Event()

            def waiter():
                with server.session() as session:
                    session.begin()
                    session.lock(("doc", "docs", 7), LockMode.X)
                    got_lock.set()
                    session.commit()

            thread = threading.Thread(target=waiter)
            thread.start()
            assert not got_lock.wait(timeout=0.05)
            holder.commit()  # releases the lock; the waiter proceeds
            thread.join(timeout=10)
            assert got_lock.is_set()

    def test_begin_twice_is_an_error(self):
        db = make_db()
        with DatabaseServer(db) as server:
            session = server.session()
            session.begin()
            with pytest.raises(TransactionError, match="already has txn"):
                session.begin()
            session.rollback()

    def test_session_close_rolls_back_open_txn(self):
        db = make_db()
        with DatabaseServer(db) as server:
            session = server.session()
            session.begin()

            def locked_insert(database, txn):
                return database.insert("docs", ("gone", DOC.format(i=0)),
                                       txn_id=txn.txn_id)

            session.execute(locked_insert)
            session.close()
        assert db.tables["docs"].row_count == 0
        assert db.stats.get("txn.aborts") == 1

    def test_shutdown_rolls_back_abandoned_txns(self):
        db = make_db()
        server = DatabaseServer(db).start()
        session = server.session()
        session.begin()
        session.execute(lambda database, txn: database.insert(
            "docs", ("orphan", DOC.format(i=0)), txn_id=txn.txn_id))
        server.shutdown()
        assert db.tables["docs"].row_count == 0
        assert not db.txns.active

    def test_requests_after_shutdown_are_rejected(self):
        db = make_db()
        server = DatabaseServer(db).start()
        session = server.session()
        server.shutdown()
        # The session was closed by the drain: its front door rejects.
        with pytest.raises(ServerClosedError):
            session.insert("docs", ("late", DOC.format(i=0)))
        # A raw request against the stopped server is shed with the
        # typed error and counted.
        with pytest.raises(ServerClosedError):
            server.call(None, lambda database: None, "late", None)
        assert db.stats.get("serve.shed_closed") == 1
        server.shutdown()  # idempotent

    def test_monitor_exposes_server_section(self):
        db = make_db()
        with DatabaseServer(db) as server:
            server.session().insert("docs", ("k", DOC.format(i=1)))
            snap = server.monitor.snapshot()
            assert snap.server["state"] == "serving"
            assert snap.server["workers"] == db.config.serve_workers
            assert snap.server["completed"] == 1
            assert "=== SERVER ===" in snap.format()
            assert "server" in snap.to_dict()
        health = server.monitor.health()
        assert health["lock_waiters"] == 0
        assert 0.0 <= health["buffer_hit_ratio"] <= 1.0

    def test_latency_histograms_populated(self):
        db = make_db()
        with DatabaseServer(db) as server:
            with server.session() as session:
                for i in range(3):
                    session.insert("docs", (f"k{i}", DOC.format(i=i)))
        for name in ("serve.request_us", "serve.queue_wait_us"):
            hist = db.stats.histogram(name)
            assert hist is not None and hist.count == 3


class TestThreadSafetyRegressions:
    """Pin the fixes the RACE/LATCH checkers forced on the serving layer."""

    def test_first_crash_wins(self):
        # RACE fix: workers and the shutdown path race to record a crash;
        # _note_crash is latched and first-write-wins, so shutdown always
        # re-raises the crash that actually stopped the server.
        db = make_db()
        server = DatabaseServer(db).start()
        server._note_crash(SimulatedCrash("first", 1))
        server._note_crash(SimulatedCrash("second", 1))
        assert "first" in str(server.crashed)
        with pytest.raises(SimulatedCrash, match="first"):
            server.shutdown()

    def test_session_open_races_shutdown_without_leaking(self):
        # RACE002 fix: session() checks the state and registers the
        # session in ONE _state_lock region, so a serving->draining flip
        # cannot slip between check and insert.  Every opener either gets
        # a session (rolled back or closed) or the typed rejection.
        db = make_db(serve_workers=2)
        server = DatabaseServer(db).start()
        proceed = threading.Event()
        outcomes: list = []

        def opener():
            proceed.wait()
            try:
                session = server.session()
                session.close()
                outcomes.append("opened")
            except ServerClosedError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=opener) for _ in range(8)]
        for thread in threads:
            thread.start()
        proceed.set()
        server.shutdown()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 8
        assert set(outcomes) <= {"opened", "rejected"}
        assert server.view()["sessions_open"] == 0
        assert server.state == "closed"

    def test_witnessed_locksets_agree_with_static_inference(self):
        # The headline cross-check: the guards ThreadAnalysis infers from
        # the AST must be the latches the lockset sanitizer actually
        # witnesses protecting each field at runtime.
        sanitize.enable()
        sanitize.reset_witness()
        try:
            db = make_db(serve_workers=4)
            with DatabaseServer(db) as server:
                workers = [threading.Thread(target=self._hammer,
                                            args=(server, i))
                           for i in range(6)]
                for thread in workers:
                    thread.start()
                for thread in workers:
                    thread.join()
            locksets = sanitize.witnessed_locksets()
            assert locksets[("DatabaseServer", "_state")] == \
                frozenset(("server._state_lock",))
            program = Program()
            server_src = Path("src/repro/serve/server.py")
            program.add(SourceModule(server_src, Path("src")))
            analysis = ThreadAnalysis(program)
            triples = [(cls, field, guard)
                       for (cls, field), guards in
                       analysis.inferred_guards().items()
                       for guard in guards]
            assert any(cls == "DatabaseServer" for cls, _, _ in triples)
            assert sanitize.cross_check_field_guards(triples) == []
        finally:
            sanitize.reset_witness()

    @staticmethod
    def _hammer(server, index):
        with server.session() as session:
            session.insert("docs", (f"x{index}", DOC.format(i=index)))
            session.query("docs", "doc", "/Product/Name")
        server.view()


class TestMonitorUnderLoad:
    def test_health_and_snapshot_race_a_mutating_workload(self):
        # Monitor reads are latch-free by design; with the sanitizers
        # armed, polling health() and snapshot() from watcher threads
        # while clients mutate stats and engine state must neither raise
        # nor trip a single runtime race witness.
        sanitize.enable()
        sanitize.reset_witness()
        try:
            db = make_db(serve_workers=4, serve_queue_limit=256)
            stop = threading.Event()
            failures: list = []

            def watcher():
                while not stop.is_set():
                    try:
                        health = monitor.health()
                        assert 0.0 <= health["buffer_hit_ratio"] <= 1.0
                        snap = monitor.snapshot()
                        assert snap.server["workers"] == 4
                    except Exception as error:  # noqa: BLE001 - tally all
                        failures.append(error)
                        return

            def client(index):
                try:
                    with server.session() as session:
                        for op in range(4):
                            session.insert(
                                "docs",
                                (f"m{index}-{op}", DOC.format(i=index)))
                            session.query("docs", "doc", "/Product/Name")
                except Exception as error:  # noqa: BLE001 - tally all
                    failures.append(error)

            with DatabaseServer(db) as server:
                monitor = server.monitor
                watchers = [threading.Thread(target=watcher)
                            for _ in range(2)]
                clients = [threading.Thread(target=client, args=(i,))
                           for i in range(8)]
                for thread in watchers + clients:
                    thread.start()
                for thread in clients:
                    thread.join()
                stop.set()
                for thread in watchers:
                    thread.join()
            assert not failures
            assert db.stats.get("sanitize.checks") > 0
            trips = {name: value
                     for name, value in db.stats.counters().items()
                     if name.startswith("sanitize.race") and value}
            assert trips == {}
        finally:
            sanitize.reset_witness()
