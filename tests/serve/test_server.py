"""End-to-end serving-layer tests: sessions, statements, drain, monitor."""

import threading
from dataclasses import replace

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.errors import ServerClosedError, TransactionError
from repro.obs.monitor import Monitor
from repro.rdb.locks import LockMode
from repro.serve import DatabaseServer

DOC = "<Product><Name>widget {i}</Name><Price>{i}</Price></Product>"


def make_db(**overrides):
    config = replace(DEFAULT_CONFIG, checkpoint_interval=0, **overrides)
    db = Database(config)
    db.create_table("docs", [("key", "varchar"), ("doc", "xml")])
    return db


class TestServing:
    def test_auto_commit_insert_and_query(self):
        db = make_db()
        with DatabaseServer(db) as server:
            with server.session() as session:
                for i in range(4):
                    session.insert("docs", (f"k{i}", DOC.format(i=i)))
                out = session.query("docs", "doc", "/Product/Name")
        assert len(out) == 4
        assert db.stats.get("serve.completed") == 5
        assert db.stats.get("serve.failed") == 0
        # The engine is single-threaded again after shutdown.
        assert db.txns.lock_wait_yield is None and db.backoff_sleep is None
        assert len(db.xpath("docs", "doc", "/Product")) == 4

    def test_many_concurrent_client_threads(self):
        db = make_db(serve_workers=4, serve_queue_limit=256)
        errors = []

        def client(index):
            try:
                with server.session() as session:
                    session.insert("docs", (f"c{index}",
                                            DOC.format(i=index)))
                    session.query("docs", "doc", "/Product/Name")
            except Exception as error:  # noqa: BLE001 - tally any failure
                errors.append(error)

        with DatabaseServer(db) as server:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(32)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert db.tables["docs"].row_count == 32
        assert db.stats.get("serve.sessions_opened") == 32
        assert db.stats.get("serve.sessions_closed") == 32

    def test_statement_cache_hits_and_lru(self):
        db = make_db(serve_stmt_cache_size=2)
        with DatabaseServer(db) as server:
            session = server.session()
            session.insert("docs", ("k", DOC.format(i=1)))
            for _ in range(3):
                session.query("docs", "doc", "/Product/Name")
            assert db.stats.get("serve.stmt_hits") == 2
            # Two more statements evict /Product/Name (cache size 2) ...
            session.query("docs", "doc", "/Product/Price")
            session.query("docs", "doc", "/Product")
            session.query("docs", "doc", "/Product/Name")
            # ... so its fourth use re-plans: 4 misses total, 2 hits.
            assert db.stats.get("serve.stmt_misses") == 4

    def test_prepared_plan_reused_until_invalidate(self):
        db = make_db()
        with DatabaseServer(db) as server:
            session = server.session()
            session.insert("docs", ("k", DOC.format(i=1)))
            session.query("docs", "doc", "/Product/Name")
            stmt = session.prepare("docs", "doc", "/Product/Name")
            assert stmt.plan is not None
            session.invalidate()
            assert stmt.plan is None
            assert session.query("docs", "doc", "/Product/Name")

    def test_explicit_txn_holds_locks_across_requests(self):
        db = make_db(serve_workers=2)
        with DatabaseServer(db) as server:
            holder = server.session()
            holder.begin()
            holder.lock(("doc", "docs", 1), LockMode.X)
            other = server.session()
            other.begin()
            assert db.txns.locks.locks_held(holder.txn.txn_id) == 1
            # The other session can take a different resource at once.
            other.lock(("doc", "docs", 2), LockMode.X)
            other.commit()
            holder.commit()
        assert db.stats.get("serve.failed") == 0

    def test_explicit_txn_contention_resolves(self):
        """Two sessions fight over one lock; the waiter wins after commit."""
        db = make_db(serve_workers=2, lock_wait_budget=4096)
        with DatabaseServer(db) as server:
            holder = server.session()
            holder.begin()
            holder.lock(("doc", "docs", 7), LockMode.X)
            got_lock = threading.Event()

            def waiter():
                with server.session() as session:
                    session.begin()
                    session.lock(("doc", "docs", 7), LockMode.X)
                    got_lock.set()
                    session.commit()

            thread = threading.Thread(target=waiter)
            thread.start()
            assert not got_lock.wait(timeout=0.05)
            holder.commit()  # releases the lock; the waiter proceeds
            thread.join(timeout=10)
            assert got_lock.is_set()

    def test_begin_twice_is_an_error(self):
        db = make_db()
        with DatabaseServer(db) as server:
            session = server.session()
            session.begin()
            with pytest.raises(TransactionError, match="already has txn"):
                session.begin()
            session.rollback()

    def test_session_close_rolls_back_open_txn(self):
        db = make_db()
        with DatabaseServer(db) as server:
            session = server.session()
            session.begin()

            def locked_insert(database, txn):
                return database.insert("docs", ("gone", DOC.format(i=0)),
                                       txn_id=txn.txn_id)

            session.execute(locked_insert)
            session.close()
        assert db.tables["docs"].row_count == 0
        assert db.stats.get("txn.aborts") == 1

    def test_shutdown_rolls_back_abandoned_txns(self):
        db = make_db()
        server = DatabaseServer(db).start()
        session = server.session()
        session.begin()
        session.execute(lambda database, txn: database.insert(
            "docs", ("orphan", DOC.format(i=0)), txn_id=txn.txn_id))
        server.shutdown()
        assert db.tables["docs"].row_count == 0
        assert not db.txns.active

    def test_requests_after_shutdown_are_rejected(self):
        db = make_db()
        server = DatabaseServer(db).start()
        session = server.session()
        server.shutdown()
        # The session was closed by the drain: its front door rejects.
        with pytest.raises(ServerClosedError):
            session.insert("docs", ("late", DOC.format(i=0)))
        # A raw request against the stopped server is shed with the
        # typed error and counted.
        with pytest.raises(ServerClosedError):
            server.call(None, lambda database: None, "late", None)
        assert db.stats.get("serve.shed_closed") == 1
        server.shutdown()  # idempotent

    def test_monitor_exposes_server_section(self):
        db = make_db()
        with DatabaseServer(db) as server:
            server.session().insert("docs", ("k", DOC.format(i=1)))
            snap = server.monitor.snapshot()
            assert snap.server["state"] == "serving"
            assert snap.server["workers"] == db.config.serve_workers
            assert snap.server["completed"] == 1
            assert "=== SERVER ===" in snap.format()
            assert "server" in snap.to_dict()
        health = server.monitor.health()
        assert health["lock_waiters"] == 0
        assert 0.0 <= health["buffer_hit_ratio"] <= 1.0

    def test_latency_histograms_populated(self):
        db = make_db()
        with DatabaseServer(db) as server:
            with server.session() as session:
                for i in range(3):
                    session.insert("docs", (f"k{i}", DOC.format(i=i)))
        for name in ("serve.request_us", "serve.queue_wait_us"):
            hist = db.stats.histogram(name)
            assert hist is not None and hist.count == 3
