"""Group commit under a live server: batching and the commit invariant.

With concurrent committers and a collection window, at least one log
force must cover more than one COMMIT record — and every acknowledged
insert must be present exactly once afterwards (the load harness's
two-view verification).
"""

from repro.serve.loadgen import (LoadHarness, build_database,
                                 serving_config)
from repro.serve.server import DatabaseServer


class TestGroupCommitUnderLoad:
    def test_forces_batch_multiple_commits(self):
        config = serving_config(
            clients=16, ops_per_client=4, serve_workers=8,
            serve_queue_limit=256, txn_group_commit=True,
            txn_group_commit_window=0.05)
        db, hot_ids = build_database(config)
        server = DatabaseServer(db).start()
        harness = LoadHarness(db, server, hot_ids)
        report = harness.run(clients=16, ops_per_client=4, seed=11)
        assert report.verified, report.verify_errors or report.failures
        hist = db.stats.histogram("wal.group_size")
        assert hist is not None and hist.count > 0
        # Concurrent committers actually shared a force: fewer grouped
        # forces (hist.count) than commits hardened (hist.sum) is the
        # whole point of group commit.
        assert report.group_size_max >= 2
        assert hist.sum > hist.count
        db.close()

    def test_group_commit_off_forces_every_commit(self):
        config = serving_config(
            clients=8, ops_per_client=3, serve_workers=4,
            serve_queue_limit=256)
        db, hot_ids = build_database(config)
        server = DatabaseServer(db).start()
        harness = LoadHarness(db, server, hot_ids)
        report = harness.run(clients=8, ops_per_client=3, seed=5)
        assert report.verified, report.verify_errors or report.failures
        # auto_flush: every append hardens itself, no grouped forces.
        assert report.wal_group_commits == 0
        assert report.group_size_p50 == 0
        assert db.log.unflushed_count == 0
        db.close()
