"""Admission controller and overload-guard unit tests."""

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.core.stats import StatsRegistry
from repro.errors import ServerOverloadedError
from repro.obs.monitor import Monitor
from repro.rdb.locks import LockMode
from repro.serve.admission import AdmissionController, OverloadGuard


def make_guard(db, **overrides):
    from dataclasses import replace
    config = replace(DEFAULT_CONFIG, **overrides)
    return OverloadGuard(Monitor(db), config, db.stats)


class TestOverloadGuard:
    def test_disabled_thresholds_never_shed(self):
        db = Database()
        guard = make_guard(db)
        assert all(guard.check() is None for _ in range(50))
        # With no thresholds configured the guard does not even read the
        # health signals.
        assert db.stats.get("serve.overload_checks") == 0

    def test_lock_waiter_threshold(self):
        db = Database()
        guard = make_guard(db, serve_shed_lock_waiters=1,
                           serve_shed_check_interval=1)
        assert guard.check() is None
        holder = db.txns.begin()
        assert holder.try_lock("r", LockMode.X)
        for _ in range(2):
            waiter = db.txns.begin()
            assert not waiter.try_lock("r", LockMode.X)
        verdict = guard.check()
        assert verdict is not None and "lock table congested" in verdict
        assert db.stats.get("serve.overload_checks") >= 2

    def test_hit_ratio_threshold_needs_min_touches(self):
        db = Database()
        guard = make_guard(db, serve_shed_min_hit_ratio=0.99,
                           serve_shed_min_touches=10_000,
                           serve_shed_check_interval=1)
        # A cold engine has not reached min_touches: healthy by fiat.
        assert guard.check() is None

    def test_verdict_cached_between_intervals(self):
        db = Database()
        guard = make_guard(db, serve_shed_lock_waiters=1,
                           serve_shed_check_interval=10)
        for _ in range(10):
            guard.check()
        # 10 calls, interval 10: health evaluated once (on the first).
        assert db.stats.get("serve.overload_checks") == 1


class TestAdmissionController:
    def test_queue_full_sheds_with_typed_error(self):
        stats = StatsRegistry()
        db = Database()
        controller = AdmissionController(make_guard(db), queue_limit=2,
                                         stats=stats)
        controller.admit("a")
        controller.admit("b")
        with pytest.raises(ServerOverloadedError, match="queue full"):
            controller.admit("c")
        assert stats.get("serve.requests") == 3
        assert stats.get("serve.admitted") == 2
        assert stats.get("serve.shed_queue_full") == 1

    def test_admission_counters_are_disjoint(self):
        stats = StatsRegistry()
        db = Database()
        controller = AdmissionController(make_guard(db), queue_limit=1,
                                         stats=stats)
        controller.admit("a")
        for _ in range(3):
            with pytest.raises(ServerOverloadedError):
                controller.admit("x")
        assert stats.get("serve.requests") == \
            stats.get("serve.admitted") + stats.get("serve.shed_queue_full")
