"""Request deadlines: the Deadline type and its propagation into the engine."""

import time
from dataclasses import replace

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.deadline import Deadline
from repro.core.engine import Database
from repro.errors import DeadlineExceededError
from repro.rdb.locks import LockMode
from repro.serve import DatabaseServer

DOC = "<Product><Name>n</Name></Product>"


def make_db(**overrides):
    config = replace(DEFAULT_CONFIG, checkpoint_interval=0, **overrides)
    db = Database(config)
    db.create_table("docs", [("key", "varchar"), ("doc", "xml")])
    return db


class TestDeadlineType:
    def test_remaining_and_expiry(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0
        assert Deadline.expired_deadline().expired()
        assert Deadline.expired_deadline().remaining() == 0.0

    def test_clamp_caps_to_remaining(self):
        deadline = Deadline.after(0.010)
        assert deadline.clamp(100.0) <= 0.010
        assert Deadline.expired_deadline().clamp(1.0) == 0.0
        # A delay already under the remaining budget is untouched.
        assert Deadline.after(60.0).clamp(0.5) == 0.5


class TestEngineDeadlines:
    def test_run_in_txn_rejects_expired_deadline_up_front(self):
        db = make_db()
        with pytest.raises(DeadlineExceededError):
            db.run_in_txn(lambda _db, _txn: None,
                          deadline=Deadline.expired_deadline())
        assert db.stats.get("txn.deadline_exceeded") == 1
        assert db.stats.get("txn.begun") == 0  # no work was started

    def test_lock_wait_aborts_on_expired_deadline(self):
        db = make_db(lock_wait_budget=10_000_000)
        holder = db.txns.begin()
        assert holder.try_lock("r", LockMode.X)
        blocked = db.txns.begin()
        blocked.deadline = Deadline.after(0.02)
        # The budget is effectively infinite: only the deadline can end
        # this wait (the yield hook makes each step take real time).
        db.txns.lock_wait_yield = lambda: time.sleep(0.001)
        with pytest.raises(DeadlineExceededError):
            blocked.lock("r", LockMode.X)
        db.txns.lock_wait_yield = None
        assert db.txns.locks.find_deadlock() is None  # edges cleared
        blocked.abort()
        holder.commit()


class TestServerDeadlines:
    def test_deadline_spent_in_queue(self):
        db = make_db()
        with DatabaseServer(db) as server:
            session = server.session()
            with pytest.raises(DeadlineExceededError, match="queue"):
                session.run(lambda _db, _txn: None,
                            deadline=Deadline.expired_deadline())
        assert db.stats.get("serve.deadline_expired") == 1
        # Deadline expiry is not a generic failure.
        assert db.stats.get("serve.failed") == 0

    def test_deadline_bounds_lock_wait_under_server(self):
        db = make_db(serve_workers=2, lock_wait_budget=10_000_000)
        with DatabaseServer(db) as server:
            holder = server.session()
            holder.begin()
            holder.lock(("doc", "docs", 1), LockMode.X)
            contender = server.session()
            contender.begin()
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                contender.lock(("doc", "docs", 1), LockMode.X,
                               deadline=0.05)
            assert time.monotonic() - started < 5.0
            # The contender's txn was aborted by the failed request; the
            # holder still owns its lock and can commit.
            assert contender.txn is None
            holder.commit()
        assert db.stats.get("txn.deadline_exceeded") >= 1

    def test_deadline_not_retryable(self):
        assert not DatabaseServer.is_retryable(DeadlineExceededError("x"))

    def test_default_deadline_from_config(self):
        db = make_db(serve_default_deadline=123.0)
        with DatabaseServer(db) as server:
            resolved = server.resolve_deadline(None)
            assert resolved is not None
            assert 0 < resolved.remaining() <= 123.0
            assert server.resolve_deadline(5).remaining() <= 5.0
            explicit = Deadline.after(1.0)
            assert server.resolve_deadline(explicit) is explicit
