"""Load-harness tests: the 100-client invariant run and induced overload."""

from dataclasses import replace

from repro.core.config import DEFAULT_CONFIG
from repro.serve.loadgen import (LoadHarness, build_database, run_load,
                                 serving_config)
from repro.serve.server import DatabaseServer


class TestLoadHarness:
    def test_hundred_concurrent_clients_verified(self):
        """The acceptance run: >= 100 clients, mixed read/write workload,
        zero lost or duplicated committed transactions (checked against
        both the base table and the accounting records), latency report
        populated, clean drain."""
        report = run_load(clients=100, ops_per_client=3, seed=11,
                          workers=8, queue_limit=512, deadline=30.0)
        assert report.verified, report.verify_errors
        assert not report.failures
        assert report.committed_inserts > 0
        assert report.hot_commits + report.timed_out + \
            report.deadline_expired > 0
        assert report.p50_request_us > 0
        assert report.p99_request_us >= report.p50_request_us
        assert report.counters["serve.requests"] >= 300

    def test_overload_sheds_and_still_verifies(self):
        """A starved server (1 worker, tiny queue) sheds most of the load
        with ServerOverloadedError but never loses or duplicates a commit
        and still drains cleanly."""
        report = run_load(clients=40, ops_per_client=3, seed=5,
                          workers=1, queue_limit=2, deadline=30.0)
        assert report.shed > 0
        assert report.counters.get("serve.shed_queue_full", 0) > 0
        assert report.verified, report.verify_errors
        assert not report.failures

    def test_deadlines_expire_under_pressure(self):
        """With millisecond deadlines some requests must run out of time —
        and expire with the typed error, not a generic failure."""
        report = run_load(clients=30, ops_per_client=3, seed=9,
                          workers=2, queue_limit=256, deadline=0.002)
        assert report.deadline_expired > 0
        assert not report.failures
        assert report.verified, report.verify_errors

    def test_overload_guard_sheds_on_lock_waiters(self):
        """The monitor-driven guard: many waiting transactions flip the
        health verdict and admission sheds before the queue fills."""
        config = serving_config(
            20, 3, serve_workers=2, serve_queue_limit=1024,
            serve_shed_lock_waiters=1, serve_shed_check_interval=1,
            lock_wait_budget=4096)
        db, hot_ids = build_database(config)
        server = DatabaseServer(db).start()
        harness = LoadHarness(db, server, hot_ids)
        report = harness.run(20, 3, seed=2, deadline=30.0)
        assert report.verified, report.verify_errors
        # Either the guard fired (preferred) or the run was too fast to
        # congest — but the guard must at least have been consulted.
        assert db.stats.get("serve.overload_checks") > 0
        db.close()

    def test_report_round_trips_to_json(self):
        import json
        report = run_load(clients=8, ops_per_client=2, seed=1, workers=2)
        rendered = json.loads(json.dumps(report.to_dict()))
        assert rendered["clients"] == 8
        assert "latency_us" in rendered
        waits = rendered["waits"]
        assert waits["total_us"] == sum(waits["by_class"].values())

    def test_sanitized_traced_load_reconciles(self):
        """A sanitized traced run: Σ waits ≤ elapsed on every clock (no
        ``sanitize.waits.*`` trip survives ``_report``'s zero check), the
        per-request wait breakdown is populated, and the trace retains
        accounting records for served requests."""
        from repro.analyze import sanitize
        from repro.obs.events import EventTrace

        trace = EventTrace()
        was_armed = sanitize.enabled()
        sanitize.enable()
        try:
            report = run_load(clients=12, ops_per_client=3, seed=3,
                              workers=4, deadline=30.0, trace=trace)
        finally:
            if not was_armed:
                sanitize.disable()
        assert report.verified, report.verify_errors
        assert report.counters.get("sanitize.waits.reconcile", 0) == 0
        from repro.core.stats import WAITS
        assert set(report.waits_by_class) <= WAITS
        served = [r for r in trace.records() if r.name == "serve.request"]
        assert served and all(r.request for r in served)
        assert any(r.name.startswith("wait.") for r in trace.records())
