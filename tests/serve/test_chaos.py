"""Chaos mode: injected mid-session faults under a live server.

A ``FaultPlan.fail_at("serve.request", ...)`` spec kills exactly one
session's transaction mid-flight with an ordinary
:class:`~repro.errors.FaultInjectionError` — the process (and every other
session) keeps serving, the dead transaction's work is rolled back, and
recovery replay of the committed log agrees with the surviving state.
"""

import threading
from dataclasses import replace

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.errors import FaultInjectionError
from repro.fault.harness import verify_value_indexes
from repro.fault.injector import FaultInjector, FaultPlan
from repro.serve import DatabaseServer

DOC = "<Product><Name>item {i}</Name><Price>{i}</Price></Product>"


def make_db(plan=(), **overrides):
    config = replace(DEFAULT_CONFIG, checkpoint_interval=0, **overrides)
    db = Database(config, injector=FaultInjector(plan) if plan else None)
    db.create_table("docs", [("key", "varchar"), ("doc", "xml")])
    db.create_xpath_index("ix_price", "docs", "doc", "/Product/Price",
                          "bigint")
    return db


class TestChaosMode:
    def test_one_request_dies_others_commit(self):
        # The 3rd request body to fire the point dies; everyone else runs.
        db = make_db(plan=[FaultPlan.fail_at("serve.request", hit=3)],
                     serve_workers=4, serve_queue_limit=256)
        outcomes = {}
        lock = threading.Lock()

        def client(index):
            try:
                with server.session() as session:
                    session.insert("docs", (f"c{index}",
                                            DOC.format(i=index)))
                with lock:
                    outcomes[index] = "committed"
            except FaultInjectionError:
                with lock:
                    outcomes[index] = "killed"

        with DatabaseServer(db) as server:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert sorted(outcomes.values()).count("killed") == 1
        assert sorted(outcomes.values()).count("committed") == 7
        assert db.stats.get("serve.chaos_faults") == 1
        assert db.stats.get("serve.failed") == 1
        # The killed session's insert was rolled back: exactly the seven
        # acknowledged rows exist, none duplicated.
        keys = sorted(row[0] for _, row in db.tables["docs"].scan_rids())
        expected = sorted(f"c{i}" for i, out in outcomes.items()
                          if out == "committed")
        assert keys == expected

    def test_mid_explicit_txn_fault_aborts_only_that_session(self):
        db = make_db(plan=[FaultPlan.fail_at("serve.request", hit=2)],
                     serve_workers=2)
        with DatabaseServer(db) as server:
            victim = server.session()
            survivor = server.session()
            victim.begin()
            survivor.begin()

            def insert(key):
                def body(database, txn):
                    return database.insert("docs", (key, DOC.format(i=0)),
                                           txn_id=txn.txn_id)
                return body

            # Request 1 fires the point (hit 1): survives.
            survivor.execute(insert("kept"))
            # Request 2 fires hit 2: the fault kills the victim's txn.
            try:
                victim.execute(insert("lost"))
                raise AssertionError("fault did not fire")
            except FaultInjectionError:
                pass
            assert victim.txn is None  # aborted and forgotten
            survivor.commit()  # undisturbed
        keys = [row[0] for _, row in db.tables["docs"].scan_rids()]
        assert keys == ["kept"]
        assert db.stats.get("txn.aborts") == 1

    def test_recovery_after_chaos_run(self):
        """Replay of the committed log matches the post-chaos engine."""
        db = make_db(plan=[FaultPlan.fail_at("serve.request", hit=2)],
                     serve_workers=2)
        committed = []
        with DatabaseServer(db) as server:
            for index in range(5):
                try:
                    with server.session() as session:
                        session.insert("docs",
                                       (f"c{index}", DOC.format(i=index)))
                    committed.append(f"c{index}")
                except FaultInjectionError:
                    pass
        assert len(committed) == 4
        # The existing crash-harness verifiers: value + DocID indexes of
        # the live engine are intact after the chaos fault...
        verify_value_indexes(db)
        # ... and archive recovery reproduces exactly the committed rows.
        db.injector.disarm()
        replayed = Database.replay(db.log, db.config)
        verify_value_indexes(replayed)
        live_keys = sorted(r[0] for _, r in db.tables["docs"].scan_rids())
        replay_keys = sorted(r[0]
                             for _, r in replayed.tables["docs"].scan_rids())
        assert live_keys == replay_keys == sorted(committed)
        live_docs = sorted(
            db.get_document("docs", "doc", docid)
            for docid in db.xml_stores[("docs", "doc")].docids())
        replay_docs = sorted(
            replayed.get_document("docs", "doc", docid)
            for docid in replayed.xml_stores[("docs", "doc")].docids())
        assert live_docs == replay_docs
