"""Tests for access-path selection and plan execution (Table 2)."""

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.query.plan import AccessMethod


def catalog_doc(price, discount, name, nested=0):
    product = (f"<Product id='x'><ProductName>{name}</ProductName>"
               f"<RegPrice>{price}</RegPrice>"
               f"<Discount>{discount}</Discount></Product>")
    filler = "".join(f"<Filler n='{i}'>pad pad pad</Filler>"
                     for i in range(nested))
    return f"<Catalog><Categories>{product}{filler}</Categories></Catalog>"


@pytest.fixture
def db():
    database = Database(DEFAULT_CONFIG.with_(record_size_limit=128))
    database.create_table("catalog", [("id", "bigint"), ("doc", "xml")])
    prices = [50, 80, 120.5, 150, 200, 95, 130]
    discounts = [0.05, 0.2, 0.15, 0.3, 0.02, 0.12, 0.25]
    for i, (price, discount) in enumerate(zip(prices, discounts, strict=True)):
        database.insert("catalog",
                        (i, catalog_doc(price, discount, f"Item{i}")))
    return database


@pytest.fixture
def indexed_db(db):
    db.create_xpath_index("ix_price", "catalog", "doc",
                          "/Catalog/Categories/Product/RegPrice", "double")
    db.create_xpath_index("ix_discount", "catalog", "doc",
                          "//Discount", "double")
    return db


QUERY_PRICE = "/Catalog/Categories/Product[RegPrice > 100]"
QUERY_DISCOUNT = "/Catalog/Categories/Product[Discount > 0.1]"
QUERY_BOTH = ("/Catalog/Categories/Product[RegPrice > 100 and "
              "Discount > 0.1]")


class TestPlanner:
    def test_no_index_full_scan(self, db):
        plan = db.plan_xpath("catalog", "doc", QUERY_PRICE)
        assert plan.method is AccessMethod.FULL_SCAN

    def test_exact_index_match(self, indexed_db):
        """Table 2 case 1: index path equals the value path."""
        plan = indexed_db.plan_xpath("catalog", "doc", QUERY_PRICE)
        assert plan.method is not AccessMethod.FULL_SCAN
        assert len(plan.source_groups) == 1
        source = plan.source_groups[0][0]
        assert source.exact
        assert plan.exact

    def test_containment_filtering_match(self, indexed_db):
        """Table 2 case 2: //Discount contains the value path."""
        plan = indexed_db.plan_xpath("catalog", "doc", QUERY_DISCOUNT)
        source = plan.source_groups[0][0]
        assert source.index.definition.name == "ix_discount"
        assert not source.exact
        assert not plan.exact

    def test_anding_two_indexes(self, indexed_db):
        """Table 2 case 3: both predicates match indexes; ANDing applies."""
        plan = indexed_db.plan_xpath("catalog", "doc", QUERY_BOTH)
        assert len(plan.source_groups) == 2
        # One exact + one containment: NodeID-level ANDing yields an exact
        # list per the paper, but the simple planner reports filtering.
        names = {g[0].index.definition.name for g in plan.source_groups}
        assert names == {"ix_price", "ix_discount"}

    def test_oring(self, indexed_db):
        plan = indexed_db.plan_xpath(
            "catalog", "doc",
            "/Catalog/Categories/Product[RegPrice > 180 or Discount > 0.28]")
        assert len(plan.source_groups) == 1
        assert len(plan.source_groups[0]) == 2

    def test_or_with_unsargable_side_scans(self, indexed_db):
        plan = indexed_db.plan_xpath(
            "catalog", "doc",
            "/Catalog/Categories/Product[RegPrice > 180 or "
            "contains(ProductName, 'Item')]")
        assert plan.method is AccessMethod.FULL_SCAN

    def test_unsargable_conjunct_keeps_index(self, indexed_db):
        plan = indexed_db.plan_xpath(
            "catalog", "doc",
            "/Catalog/Categories/Product[RegPrice > 100 and "
            "contains(ProductName, 'Item')]")
        assert plan.method is not AccessMethod.FULL_SCAN
        assert len(plan.source_groups) == 1
        assert not plan.exact

    def test_flipped_literal(self, indexed_db):
        plan = indexed_db.plan_xpath(
            "catalog", "doc", "/Catalog/Categories/Product[100 < RegPrice]")
        assert plan.method is not AccessMethod.FULL_SCAN
        assert plan.source_groups[0][0].op == ">"

    def test_method_threshold(self, indexed_db):
        planner = indexed_db.planner("catalog", "doc")
        planner.nodeid_threshold = 1  # force "large documents"
        from repro.lang.parser import parse_xpath
        plan = planner.plan(parse_xpath(QUERY_PRICE))
        assert plan.method is AccessMethod.NODEID_LIST
        planner.nodeid_threshold = 10**9
        plan = planner.plan(parse_xpath(QUERY_PRICE))
        assert plan.method is AccessMethod.DOCID_LIST

    def test_explain(self, indexed_db):
        plan = indexed_db.plan_xpath("catalog", "doc", QUERY_BOTH)
        text = plan.explain()
        assert "probe" in text and "ANDing" in text


class TestExecutionEquivalence:
    """All three access methods return identical results."""

    QUERIES = [QUERY_PRICE, QUERY_DISCOUNT, QUERY_BOTH,
               "/Catalog/Categories/Product[RegPrice > 100 or "
               "Discount > 0.2]",
               "/Catalog/Categories/Product[RegPrice = 120.5]",
               "/Catalog/Categories/Product[RegPrice > 1000]"]

    @pytest.mark.parametrize("query", QUERIES)
    def test_methods_agree(self, indexed_db, query):
        results = {}
        for method in AccessMethod:
            rows = indexed_db.xpath("catalog", "doc", query, method=method)
            results[method] = sorted(
                (r.docid, r.node_id) for r in rows)
        assert results[AccessMethod.FULL_SCAN] == \
            results[AccessMethod.DOCID_LIST] == \
            results[AccessMethod.NODEID_LIST]

    def test_expected_counts(self, indexed_db):
        # prices: 50, 80, 120.5, 150, 200, 95, 130 -> 4 above 100
        assert len(indexed_db.xpath("catalog", "doc", QUERY_PRICE)) == 4
        # discounts above 0.1: 0.2, 0.15, 0.3, 0.12, 0.25 -> 5
        assert len(indexed_db.xpath("catalog", "doc", QUERY_DISCOUNT)) == 5
        # both: (120.5,0.15),(150,0.3),(130,0.25) -> 3
        assert len(indexed_db.xpath("catalog", "doc", QUERY_BOTH)) == 3

    def test_index_access_touches_fewer_documents(self, indexed_db):
        stats = indexed_db.stats
        with stats.delta() as scan_delta:
            indexed_db.xpath("catalog", "doc", QUERY_PRICE,
                             method=AccessMethod.FULL_SCAN)
        with stats.delta() as index_delta:
            indexed_db.xpath("catalog", "doc", QUERY_PRICE,
                             method=AccessMethod.DOCID_LIST)
        assert index_delta.get("exec.docs_evaluated", 0) < \
            scan_delta.get("exec.docs_evaluated", 0)

    def test_nodeid_access_fetches_records_not_documents(self, indexed_db):
        stats = indexed_db.stats
        with stats.delta() as delta:
            rows = indexed_db.xpath("catalog", "doc", QUERY_PRICE,
                                    method=AccessMethod.NODEID_LIST)
        assert len(rows) == 4
        assert delta.get("exec.anchors_verified", 0) == 4
        assert delta.get("exec.docs_evaluated", 0) == 0


class TestEngineSurface:
    def test_results_join_base_rows(self, indexed_db):
        rows = indexed_db.xpath("catalog", "doc", QUERY_PRICE)
        for result in rows:
            assert result.row[0] in range(7)        # base id column
            assert result.row[1] == result.docid    # XML column holds DocID

    def test_serialize_result(self, indexed_db):
        rows = indexed_db.xpath("catalog", "doc",
                                "/Catalog/Categories/Product[RegPrice = 200]")
        xml = indexed_db.serialize_result("catalog", "doc", rows[0])
        assert xml.startswith("<Product")
        assert "<RegPrice>200</RegPrice>" in xml

    def test_get_document(self, db):
        text = db.get_document("catalog", "doc", 1)
        assert text.startswith("<Catalog>")

    def test_delete_row_cleans_everything(self, indexed_db):
        rows = indexed_db.xpath("catalog", "doc", QUERY_PRICE)
        before = len(rows)
        victim = rows[0]
        indexed_db.delete_row("catalog", victim.base_rid)
        after = indexed_db.xpath("catalog", "doc", QUERY_PRICE)
        assert len(after) == before - 1
        assert all(r.docid != victim.docid for r in after)

    def test_attribute_query_through_engine(self, db):
        rows = db.xpath("catalog", "doc", "//Product/@id")
        assert len(rows) == 7

    def test_recovery_replay(self, indexed_db):
        replayed = Database.replay(indexed_db.log, indexed_db.config)
        original = indexed_db.xpath("catalog", "doc", QUERY_BOTH)
        recovered = replayed.xpath("catalog", "doc", QUERY_BOTH)
        assert [(r.docid, r.node_id) for r in original] == \
            [(r.docid, r.node_id) for r in recovered]
        # Value indexes were rebuilt by DDL replay.
        assert replayed.plan_xpath("catalog", "doc", QUERY_PRICE).method \
            is not AccessMethod.FULL_SCAN

    def test_recovery_skips_uncommitted(self):
        db = Database()
        db.create_table("t", [("doc", "xml")])
        txn = db.txns.begin()
        db.insert("t", ("<a>committed</a>",), txn_id=txn.txn_id)
        txn.commit()
        loser = db.txns.begin()
        db.insert("t", ("<a>lost</a>",), txn_id=loser.txn_id)
        # loser never commits; replay must drop its insert.
        replayed = Database.replay(db.log)
        assert replayed.tables["t"].row_count == 1
