"""Tests that a lone XMLEXISTS WHERE clause uses the access-path machinery."""

import pytest

from repro.core.engine import Database
from repro.query.sqlxml import SqlSession


@pytest.fixture
def session():
    s = SqlSession(Database())
    s.execute("CREATE TABLE c (n BIGINT, doc XML)")
    for i, price in enumerate([50, 150, 250, 90, 500]):
        s.execute(f"INSERT INTO c VALUES ({i}, "
                  f"'<item><price>{price}</price></item>')")
    s.execute("CREATE INDEX ixp ON c(doc) GENERATE KEY USING "
              "XMLPATTERN '/item/price' AS SQL DOUBLE")
    return s


class TestXmlExistsRouting:
    def test_results_correct(self, session):
        rows = session.execute(
            "SELECT n FROM c WHERE "
            "XMLEXISTS('/item[price > 100]' PASSING doc)")
        assert sorted(r["n"] for r in rows) == [1, 2, 4]

    def test_uses_index_not_per_row_scan(self, session):
        stats = session.db.stats
        with stats.delta() as delta:
            session.execute(
                "SELECT n FROM c WHERE "
                "XMLEXISTS('/item[price > 400]' PASSING doc)")
        # The planner's DocID-list path evaluates only matching documents.
        assert delta.get("exec.index_probes", 0) >= 1
        assert delta.get("exec.docs_evaluated", 0) <= 1

    def test_compound_where_falls_back(self, session):
        rows = session.execute(
            "SELECT n FROM c WHERE n < 3 AND "
            "XMLEXISTS('/item[price > 100]' PASSING doc)")
        assert sorted(r["n"] for r in rows) == [1, 2]

    def test_null_xml_rows_excluded(self, session):
        session.execute("INSERT INTO c VALUES (9, NULL)")
        rows = session.execute(
            "SELECT n FROM c WHERE XMLEXISTS('/item' PASSING doc)")
        assert 9 not in {r["n"] for r in rows}
