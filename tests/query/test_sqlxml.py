"""Tests for the SQL/XML subset."""

import pytest

from repro.core.engine import Database
from repro.errors import SqlSyntaxError
from repro.query.sqlxml import SqlSession, parse_statement


@pytest.fixture
def session():
    return SqlSession(Database())


@pytest.fixture
def emp(session):
    session.execute(
        "CREATE TABLE emp (id BIGINT, fname VARCHAR(20), lname VARCHAR(20), "
        "hire DATE, dept VARCHAR(10), salary DOUBLE)")
    rows = [
        (1234, "John", "Doe", "1998-02-01", "Accting", 50000.0),
        (1235, "Jane", "Roe", "2001-05-05", "Eng", 70000.0),
        (1236, "Jim", "Poe", "1999-09-09", "Eng", 60000.0),
    ]
    for row in rows:
        values = ", ".join(
            f"'{v}'" if isinstance(v, str) else str(v) for v in row)
        session.execute(f"INSERT INTO emp VALUES ({values})")
    return session


@pytest.fixture
def catalog(session):
    session.execute("CREATE TABLE catalog (id BIGINT, doc XML)")
    docs = [
        (1, '<Catalog><Categories><Product id="a">'
            "<RegPrice>150</RegPrice><Discount>0.2</Discount>"
            "</Product></Categories></Catalog>"),
        (2, '<Catalog><Categories><Product id="b">'
            "<RegPrice>80</RegPrice><Discount>0.05</Discount>"
            "</Product></Categories></Catalog>"),
    ]
    for rid, doc in docs:
        session.execute(f"INSERT INTO catalog VALUES ({rid}, '{doc}')")
    return session


class TestDdlDml:
    def test_create_insert_select(self, emp):
        rows = emp.execute("SELECT id, fname FROM emp WHERE salary > 55000")
        assert sorted(r["id"] for r in rows) == [1235, 1236]

    def test_select_star(self, emp):
        rows = emp.execute("SELECT * FROM emp WHERE id = 1234")
        assert rows[0]["lname"] == "Doe"

    def test_where_and_or_not(self, emp):
        rows = emp.execute(
            "SELECT id FROM emp WHERE dept = 'Eng' AND salary >= 70000")
        assert [r["id"] for r in rows] == [1235]
        rows = emp.execute(
            "SELECT id FROM emp WHERE dept = 'Accting' OR salary = 60000")
        assert sorted(r["id"] for r in rows) == [1234, 1236]
        rows = emp.execute("SELECT id FROM emp WHERE NOT dept = 'Eng'")
        assert [r["id"] for r in rows] == [1234]

    def test_delete(self, emp):
        result = emp.execute("DELETE FROM emp WHERE dept = 'Eng'")
        assert result == [{"deleted": 2}]
        assert len(emp.execute("SELECT id FROM emp")) == 1

    def test_string_escaping(self, session):
        session.execute("CREATE TABLE t (v VARCHAR(30))")
        session.execute("INSERT INTO t VALUES ('it''s quoted')")
        rows = session.execute("SELECT v FROM t")
        assert rows[0]["v"] == "it's quoted"

    def test_concat(self, emp):
        rows = emp.execute(
            "SELECT fname || ' ' || lname AS name FROM emp WHERE id = 1234")
        assert rows[0]["name"] == "John Doe"

    def test_syntax_errors(self, session):
        for bad in ["SELEC x FROM t", "CREATE TABLE", "INSERT t VALUES (1)",
                    "SELECT a FROM t WHERE", "SELECT 'unterminated FROM t"]:
            with pytest.raises(SqlSyntaxError):
                session.execute(bad)


class TestXmlPredicates:
    def test_xmlexists(self, catalog):
        rows = catalog.execute(
            "SELECT id FROM catalog WHERE XMLEXISTS("
            "'/Catalog/Categories/Product[RegPrice > 100]' PASSING doc)")
        assert [r["id"] for r in rows] == [1]

    def test_xmlquery(self, catalog):
        rows = catalog.execute(
            "SELECT id, XMLQUERY('//Product' PASSING doc) AS p FROM catalog "
            "WHERE id = 2")
        assert rows[0]["p"].startswith("<Product id=\"b\">")

    def test_xmlquery_scalar_values(self, catalog):
        rows = catalog.execute(
            "SELECT XMLQUERY('//Product/@id' PASSING doc) AS pid "
            "FROM catalog WHERE id = 1")
        assert rows[0]["pid"] == "a"

    def test_create_xml_index_and_query(self, catalog):
        catalog.execute(
            "CREATE INDEX ix_price ON catalog(doc) GENERATE KEY USING "
            "XMLPATTERN '/Catalog/Categories/Product/RegPrice' AS SQL DOUBLE")
        plan = catalog.db.plan_xpath(
            "catalog", "doc", "/Catalog/Categories/Product[RegPrice > 100]")
        from repro.query.plan import AccessMethod
        assert plan.method is not AccessMethod.FULL_SCAN
        rows = catalog.execute(
            "SELECT id FROM catalog WHERE XMLEXISTS("
            "'/Catalog/Categories/Product[RegPrice > 100]' PASSING doc)")
        assert [r["id"] for r in rows] == [1]


class TestConstructors:
    def test_paper_figure5_statement(self, emp):
        rows = emp.execute(
            'SELECT XMLELEMENT(NAME "Emp", '
            'XMLATTRIBUTES(id AS "id", fname || \' \' || lname AS "name"), '
            'XMLFOREST(hire AS HIRE, dept AS department)) AS x '
            "FROM emp WHERE id = 1234")
        assert rows[0]["x"] == (
            '<Emp id="1234" name="John Doe"><HIRE>1998-02-01</HIRE>'
            "<department>Accting</department></Emp>")

    def test_nested_elements(self, emp):
        rows = emp.execute(
            'SELECT XMLELEMENT(NAME "e", XMLELEMENT(NAME "n", fname)) AS x '
            "FROM emp WHERE id = 1235")
        assert rows[0]["x"] == "<e><n>Jane</n></e>"

    def test_xmlconcat(self, emp):
        rows = emp.execute(
            'SELECT XMLCONCAT(XMLELEMENT(NAME "a", id), '
            'XMLELEMENT(NAME "b", dept)) AS x FROM emp WHERE id = 1236')
        assert rows[0]["x"] == "<a>1236</a><b>Eng</b>"

    def test_xmlagg_order_by(self, emp):
        rows = emp.execute(
            'SELECT XMLAGG(XMLELEMENT(NAME "e", fname) ORDER BY salary DESC) '
            "AS roster FROM emp")
        assert rows[0]["roster"] == "<e>Jane</e><e>Jim</e><e>John</e>"

    def test_xmlagg_group_by(self, emp):
        rows = emp.execute(
            'SELECT dept, XMLAGG(XMLELEMENT(NAME "e", id) ORDER BY id) AS x '
            "FROM emp GROUP BY dept")
        by_dept = {r["dept"]: r["x"] for r in rows}
        assert by_dept["Eng"] == "<e>1235</e><e>1236</e>"
        assert by_dept["Accting"] == "<e>1234</e>"

    def test_template_compiled_once(self, emp):
        statement = parse_statement(
            'SELECT XMLELEMENT(NAME "e", fname) AS x FROM emp')
        constructor = statement.items[0][0]
        assert constructor.template.op_count == 3  # open, slot, close


class TestEndToEndScenario:
    def test_full_lifecycle(self, session):
        session.execute("CREATE TABLE store (sku BIGINT, info XML)")
        session.execute(
            "INSERT INTO store VALUES (1, '<item><price>9</price></item>')")
        session.execute(
            "INSERT INTO store VALUES (2, '<item><price>99</price></item>')")
        session.execute(
            "CREATE INDEX ix ON store(info) GENERATE KEY USING "
            "XMLPATTERN '/item/price' AS SQL DOUBLE")
        rows = session.execute(
            "SELECT sku FROM store WHERE "
            "XMLEXISTS('/item[price > 50]' PASSING info)")
        assert [r["sku"] for r in rows] == [2]
        session.execute("DELETE FROM store WHERE sku = 2")
        rows = session.execute(
            "SELECT sku FROM store WHERE "
            "XMLEXISTS('/item[price > 50]' PASSING info)")
        assert rows == []
