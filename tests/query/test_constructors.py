"""Tests for constructor templates, naive construction, and XMLAGG."""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import QueryError
from repro.query.constructors import (Arg, Const, XAttr, XConcat, XElem,
                                      XForest, XmlAggregator, arg,
                                      compile_template, elem, forest,
                                      naive_construct)
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.rdb.tablespace import TableSpace
from repro.xdm.serializer import serialize


def paper_spec():
    """Fig. 5: XMLELEMENT(NAME "Emp", XMLATTRIBUTES(id, name),
    XMLFOREST(hire, dept AS department))."""
    return XElem("Emp",
                 attrs=(XAttr("id", Arg(0)), XAttr("name", Arg(1))),
                 children=(XForest((("HIRE", Arg(2)),
                                    ("department", Arg(3)))),))


PAPER_ARGS = (1234, "John Doe", "1998-02-01", "Accting")
PAPER_XML = ('<Emp id="1234" name="John Doe"><HIRE>1998-02-01</HIRE>'
             '<department>Accting</department></Emp>')


class TestTemplate:
    def test_paper_example(self):
        template = compile_template(paper_spec())
        value = template.instantiate(PAPER_ARGS)
        assert value.serialize() == PAPER_XML

    def test_template_shared_across_rows(self):
        template = compile_template(paper_spec())
        first = template.instantiate(PAPER_ARGS)
        second = template.instantiate((5678, "Jane Roe", "2001-05-05", "Eng"))
        assert first.template is second.template
        assert 'id="5678"' in second.serialize()

    def test_slot_count(self):
        template = compile_template(paper_spec())
        assert template.slot_count == 4
        with pytest.raises(QueryError):
            template.instantiate((1, 2))

    def test_constant_children(self):
        template = compile_template(elem("a", "hello ", elem("b", "world")))
        assert template.instantiate(()).serialize() == \
            "<a>hello <b>world</b></a>"

    def test_concat(self):
        spec = XConcat((elem("x", arg(0)), elem("y", arg(1))))
        template = compile_template(spec)
        out = serialize(template.instantiate(("1", "2")).events())
        assert out == "<x>1</x><y>2</y>"

    def test_forest_builder(self):
        template = compile_template(forest(a=arg(0), b=Const("k")))
        assert template.instantiate(("v",)).serialize() == "<a>v</a><b>k</b>"

    def test_numeric_args_rendered_cleanly(self):
        template = compile_template(elem("n", arg(0)))
        assert template.instantiate((3.0,)).serialize() == "<n>3</n>"
        assert template.instantiate((3.5,)).serialize() == "<n>3.5</n>"

    def test_none_arg_is_empty(self):
        template = compile_template(elem("n", arg(0)))
        assert template.instantiate((None,)).serialize() == "<n/>"

    def test_escaping_through_serializer(self):
        template = compile_template(elem("n", arg(0), attrs={"v": arg(1)}))
        out = template.instantiate(("a<b", 'say "hi"')).serialize()
        assert "a&lt;b" in out
        assert "&quot;hi&quot;" in out


class TestNaiveBaseline:
    def test_matches_template_output(self):
        nodes = naive_construct(paper_spec(), PAPER_ARGS)
        assert len(nodes) == 1
        assert serialize(nodes[0]) == PAPER_XML

    def test_many_rows_agree(self):
        template = compile_template(paper_spec())
        for i in range(20):
            args = (i, f"P{i}", f"200{i % 10}-01-01", "D")
            fast = template.instantiate(args).serialize()
            slow = serialize(naive_construct(paper_spec(), args)[0])
            assert fast == slow


class TestXmlAgg:
    def rows(self, n=10):
        template = compile_template(elem("r", arg(0)))
        agg = XmlAggregator()
        keys = [(7 * i) % n for i in range(n)]
        for key in keys:
            agg.add(template.instantiate((str(key),)), sort_key=key)
        return agg, sorted(keys)

    def test_unordered_keeps_arrival_order(self):
        agg, _ = self.rows(5)
        out = agg.serialize()
        assert out.count("<r>") == 5

    def test_order_by_quicksort(self):
        agg, expected = self.rows(10)
        out = agg.serialize(order_by=True, sort_path="quicksort")
        rendered = [int(x.split("</r>")[0]) for x in out.split("<r>")[1:]]
        assert rendered == expected

    def test_order_by_external_sort_matches(self):
        agg, expected = self.rows(50)
        space = TableSpace(BufferPool(
            Disk(page_size=512, stats=StatsRegistry()), capacity=8))
        out_ext = agg.serialize(order_by=True, sort_path="external",
                                work_space=space)
        out_quick = agg.serialize(order_by=True, sort_path="quicksort")
        assert out_ext == out_quick

    def test_external_needs_workspace(self):
        agg, _ = self.rows(3)
        with pytest.raises(QueryError):
            agg.serialize(order_by=True, sort_path="external")

    def test_string_sort_keys(self):
        template = compile_template(elem("r", arg(0)))
        agg = XmlAggregator()
        for name in ["pear", "apple", "fig"]:
            agg.add(template.instantiate((name,)), sort_key=name)
        out = agg.serialize(order_by=True)
        assert out == "<r>apple</r><r>fig</r><r>pear</r>"

    def test_aggregate_over_query_results(self):
        """XMLAGG over engine query output (pipelined, Fig. 8)."""
        from repro.core.engine import Database
        db = Database()
        db.create_table("t", [("n", "bigint"), ("doc", "xml")])
        for i in range(5):
            db.insert("t", (i, f"<v>{i}</v>"))
        template = compile_template(elem("item", arg(0), attrs={"n": arg(1)}))
        agg = XmlAggregator()
        for result in db.xpath("t", "doc", "/v"):
            agg.add(template.instantiate(
                (result.match.item.value, str(result.row[0]))),
                sort_key=-result.row[0])
        out = agg.serialize(order_by=True)
        assert out.startswith('<item n="4">4</item>')
