"""Suite-wide wiring for the runtime invariant sanitizers.

Run ``pytest --sanitize`` (or set ``REPRO_SANITIZE=1``) to arm the
:mod:`repro.analyze.sanitize` checks for every test: double-unpin and
buffer-pool quiesce assertions, lock-release-at-txn-end, witnessed
lock-order inversions and WAL LSN monotonicity.  On top of the in-engine
checks, an autouse fixture asserts at the end of every test that no
buffer pool created by the test still has pinned frames.

Tests that *deliberately* leave frames pinned opt out with
``@pytest.mark.pinned_ok``.
"""

from __future__ import annotations

import os

import pytest

from repro.analyze import sanitize


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="arm the repro.analyze runtime sanitizers for every test "
             "(equivalent to REPRO_SANITIZE=1)")


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "pinned_ok: the test intentionally leaves buffer-pool frames "
        "pinned; skip the end-of-test quiesce assertion")
    if config.getoption("--sanitize") or \
            os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0"):
        sanitize.enable()


@pytest.fixture(autouse=True)
def _sanitizer_scope(request: pytest.FixtureRequest):
    """Per-test sanitizer isolation and end-of-test pool quiesce check."""
    was_enabled = sanitize.enabled()
    if was_enabled:
        sanitize.reset_witness()
        sanitize.clear_tracked_pools()
    try:
        yield
        if was_enabled and \
                request.node.get_closest_marker("pinned_ok") is None:
            for pool in sanitize.tracked_pools():
                sanitize.check_pool_quiesced(
                    pool, pool.stats,
                    where=f"end of test {request.node.name}")
    finally:
        # Tests exercising the sanitizers themselves may arm/disarm them;
        # restore the session-wide state either way.
        if was_enabled:
            sanitize.enable()
            sanitize.reset_witness()
            sanitize.clear_tracked_pools()
        else:
            sanitize.disable()
