"""Tests for the LALR(1) parser generator itself."""

import pytest

from repro.lang.lalr import (EOF, Grammar, GrammarError, ParseError, Token,
                             build_parser)


def tokens_of(text):
    """Tiny lexer for arithmetic test grammars."""
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < len(text) and text[j].isdigit():
                j += 1
            out.append(Token("num", int(text[i:j]), i))
            i = j
        else:
            out.append(Token(ch, ch, i))
            i += 1
    return out


def arithmetic_parser():
    g = Grammar("E")
    g.rule("E", ["E", "+", "T"], lambda a, _p, b: a + b)
    g.rule("E", ["E", "-", "T"], lambda a, _m, b: a - b)
    g.rule("E", ["T"])
    g.rule("T", ["T", "*", "F"], lambda a, _m, b: a * b)
    g.rule("T", ["F"])
    g.rule("F", ["num"])
    g.rule("F", ["(", "E", ")"], lambda _l, e, _r: e)
    return build_parser(g)


class TestArithmetic:
    @pytest.mark.parametrize("text,expected", [
        ("1", 1),
        ("1+2", 3),
        ("1+2*3", 7),          # precedence from the grammar
        ("(1+2)*3", 9),
        ("10-2-3", 5),         # left associativity
        ("2*3*4", 24),
        ("((((5))))", 5),
    ])
    def test_evaluates(self, text, expected):
        assert arithmetic_parser().parse(tokens_of(text)) == expected

    @pytest.mark.parametrize("text", ["1+", "+1", "(1", "1)", "1 1", ""])
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            arithmetic_parser().parse(tokens_of(text))


class TestGrammarFeatures:
    def test_nullable_productions(self):
        g = Grammar("S")
        g.rule("S", ["a", "B", "c"], lambda a, b, c: (a, b, c))
        g.rule("B", ["b"])
        g.rule("B", [], lambda: None)
        parser = build_parser(g)
        toks = [Token("a", "a"), Token("b", "b"), Token("c", "c")]
        assert parser.parse(toks) == ("a", "b", "c")
        toks = [Token("a", "a"), Token("c", "c")]
        assert parser.parse(toks) == ("a", None, "c")

    def test_lalr_not_slr(self):
        """A grammar that is LALR(1) but not SLR(1)."""
        g = Grammar("S")
        g.rule("S", ["A", "a"], lambda a, _x: ("Aa", a))
        g.rule("S", ["b", "A", "c"], lambda _b, a, _c: ("bAc", a))
        g.rule("S", ["d", "c"], lambda _d, _c: "dc")
        g.rule("S", ["b", "d", "a"], lambda _b, _d, _a: "bda")
        g.rule("A", ["d"], lambda d: d)
        parser = build_parser(g)
        assert parser.parse([Token("d", "d"), Token("a", "a")]) == ("Aa", "d")
        assert parser.parse([Token("b", "b"), Token("d", "d"),
                             Token("c", "c")]) == ("bAc", "d")
        assert parser.parse([Token("b", "b"), Token("d", "d"),
                             Token("a", "a")]) == "bda"

    def test_ambiguous_grammar_rejected(self):
        g = Grammar("E")
        g.rule("E", ["E", "+", "E"], lambda a, _p, b: a + b)
        g.rule("E", ["num"])
        with pytest.raises(GrammarError):
            build_parser(g)

    def test_missing_start_rule(self):
        g = Grammar("S")
        g.rule("A", ["a"])
        with pytest.raises(GrammarError):
            build_parser(g)

    def test_terminals_derived(self):
        g = Grammar("S")
        g.rule("S", ["a", "S"], lambda a, s: a + s)
        g.rule("S", ["b"])
        assert g.terminals == {"a", "b"}

    def test_error_message_lists_expectations(self):
        parser = arithmetic_parser()
        with pytest.raises(ParseError) as err:
            parser.parse([Token("+", "+", 0)])
        assert "num" in str(err.value)

    def test_eof_token_reserved(self):
        parser = arithmetic_parser()
        assert EOF == "$end"
        with pytest.raises(ParseError):
            parser.parse([Token("num", 1), Token("num", 2)])
