"""Tests for the XPath lexer, grammar, and rewrites."""

import pytest

from repro.errors import XPathSyntaxError, XPathUnsupportedError
from repro.lang.ast import (Axis, BinaryOp, FunctionCall, KindTest, Literal,
                            LocationPath, NameTest, UnaryOp)
from repro.lang.parser import parse_path, parse_xpath
from repro.lang.xpath_lexer import tokenize


def steps_of(text, **kw):
    path = parse_xpath(text, **kw)
    assert isinstance(path, LocationPath)
    return path.steps


class TestLexer:
    def test_star_disambiguation(self):
        kinds = [t.type for t in tokenize("//*[a * 2 > 3]")]
        assert kinds == ["DSLASH", "STAR", "LBRACK", "NAME", "MUL", "NUMBER",
                         "GT", "NUMBER", "RBRACK"]

    def test_operator_name_disambiguation(self):
        kinds = [t.type for t in tokenize("and and and")]
        assert kinds == ["NAME", "AND", "NAME"]

    def test_div_as_element_name(self):
        kinds = [t.type for t in tokenize("/html/div")]
        assert kinds == ["SLASH", "NAME", "SLASH", "NAME"]

    def test_axis_token(self):
        kinds = [t.type for t in tokenize("child::a/descendant :: b")]
        assert kinds == ["AXIS", "NAME", "SLASH", "AXIS", "NAME"]

    def test_function_vs_nodetype(self):
        tokens = tokenize("count(text())")
        assert [t.type for t in tokens][:2] == ["FUNCNAME", "LPAREN"]
        assert tokens[2].type == "NODETYPE"

    def test_prefixed_names(self):
        token = tokenize("p:name")[0]
        assert token.type == "NAME"
        assert token.value == ("p", "name")
        star = tokenize("p:*")[0]
        assert star.value == ("p", "*")

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 .75")]
        assert values == [1.0, 2.5, 0.75]

    def test_strings_both_quotes(self):
        assert tokenize("'abc'")[0].value == "abc"
        assert tokenize('"x y"')[0].value == "x y"

    def test_errors(self):
        for bad in ["'unterminated", "a:::", "#"]:
            with pytest.raises(XPathSyntaxError):
                tokenize(bad)


class TestPaths:
    def test_simple_absolute_path(self):
        steps = steps_of("/Catalog/Categories/Product")
        assert [s.axis for s in steps] == [Axis.CHILD] * 3
        assert [s.test.local for s in steps] == ["Catalog", "Categories",
                                                 "Product"]

    def test_descendant_shorthand_reduced(self):
        """`//ProductName` normalizes to descendant::ProductName."""
        steps = steps_of("//ProductName")
        assert len(steps) == 1
        assert steps[0].axis is Axis.DESCENDANT

    def test_inner_descendant(self):
        steps = steps_of("/Catalog//Discount")
        assert [s.axis for s in steps] == [Axis.CHILD, Axis.DESCENDANT]

    def test_attribute_step(self):
        steps = steps_of("/a/@id")
        assert steps[1].axis is Axis.ATTRIBUTE
        assert steps[1].test.local == "id"

    def test_explicit_axes(self):
        steps = steps_of("self::a/descendant-or-self::b/child::c")
        assert [s.axis for s in steps] == [Axis.SELF,
                                           Axis.DESCENDANT_OR_SELF, Axis.CHILD]

    def test_kind_tests(self):
        steps = steps_of("/a/text()")
        assert isinstance(steps[1].test, KindTest)
        assert steps[1].test.kind == "text"
        steps = steps_of("/a/node()")
        assert steps[1].test.kind == "node"

    def test_pi_with_target(self):
        steps = steps_of("/a/processing-instruction('style')")
        assert steps[1].test == KindTest("processing-instruction", "style")

    def test_wildcard(self):
        steps = steps_of("/a/*")
        assert steps[1].test.local == "*"

    def test_dot_step(self):
        steps = steps_of("./a")
        assert steps[0].axis is Axis.SELF

    def test_root_only(self):
        path = parse_xpath("/")
        assert isinstance(path, LocationPath)
        assert path.absolute and path.steps == []

    def test_relative_path(self):
        path = parse_xpath("a/b")
        assert not path.absolute


class TestPredicates:
    def test_value_comparison(self):
        steps = steps_of("/Catalog/Categories/Product[RegPrice > 100]")
        pred = steps[2].predicates[0]
        assert isinstance(pred, BinaryOp)
        assert pred.op == ">"
        assert isinstance(pred.left, LocationPath)
        assert pred.right == Literal(100.0)

    def test_paper_figure6_query(self):
        steps = steps_of('//b/s[.//t = "XML" and f/@w > 300]')
        assert [s.axis for s in steps] == [Axis.DESCENDANT, Axis.CHILD]
        pred = steps[1].predicates[0]
        assert pred.op == "and"
        assert pred.left.op == "="
        assert pred.right.op == ">"
        # .//t  — self step then descendant
        left_path = pred.left.left
        assert [s.axis for s in left_path.steps] == [Axis.SELF,
                                                     Axis.DESCENDANT]

    def test_multiple_predicates(self):
        steps = steps_of("/a[b][c]")
        assert len(steps[0].predicates) == 2

    def test_existence_predicate(self):
        steps = steps_of("/a[b/c]")
        inner = steps[0].predicates[0]
        assert isinstance(inner, LocationPath)

    def test_nested_predicates(self):
        steps = steps_of("/a[b[c > 1]]")
        inner = steps[0].predicates[0]
        assert inner.steps[0].predicates[0].op == ">"

    def test_arithmetic_in_predicate(self):
        steps = steps_of("/a[b + 2 * c >= -1]")
        pred = steps[0].predicates[0]
        assert pred.op == ">="
        assert isinstance(pred.right, UnaryOp)
        assert pred.left.right.op == "*"

    def test_function_calls(self):
        steps = steps_of("/a[count(b) > 2 and contains(c, 'x')]")
        pred = steps[0].predicates[0]
        assert isinstance(pred.left.left, FunctionCall)
        assert pred.left.left.name == "count"
        assert pred.right.name == "contains"


class TestRewrites:
    def test_parent_axis_becomes_predicate(self):
        steps = steps_of("/a/b/..")
        assert len(steps) == 1
        assert steps[0].test.local == "a"
        predicate = steps[0].predicates[0]
        assert predicate.steps[0].test.local == "b"

    def test_parent_with_name_constrains(self):
        steps = steps_of("/a/b/parent::a")
        assert steps[0].test.local == "a"

    def test_parent_with_conflicting_name_is_unsatisfiable(self):
        steps = steps_of("/a/b/parent::z")
        assert steps[0].test.local == "#impossible"

    def test_parent_of_wildcard(self):
        steps = steps_of("/*/b/parent::a")
        assert steps[0].test.local == "a"

    def test_leading_parent_unsupported(self):
        with pytest.raises(XPathUnsupportedError):
            parse_xpath("../a")

    def test_unsupported_axis(self):
        with pytest.raises(XPathUnsupportedError):
            parse_xpath("/a/following-sibling::b")

    def test_prefix_resolution(self):
        steps = steps_of("/p:a", namespaces={"p": "urn:x"})
        assert steps[0].test.uri == "urn:x"

    def test_unknown_prefix(self):
        with pytest.raises(XPathUnsupportedError):
            parse_xpath("/p:a")

    def test_dos_with_predicate_not_reduced(self):
        steps = steps_of("/descendant-or-self::node()[b]/c")
        assert steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert len(steps) == 2


class TestNameTestMatching:
    def test_no_namespace_semantics(self):
        test = NameTest("a")
        assert test.matches("a", "")
        assert not test.matches("a", "urn:x")
        assert not test.matches("b", "")

    def test_wildcard_matches_all(self):
        test = NameTest("*")
        assert test.matches("anything", "")

    def test_resolved_uri(self):
        test = NameTest("a", prefix="p", uri="urn:x")
        assert test.matches("a", "urn:x")
        assert not test.matches("a", "")


class TestParseFacade:
    def test_parse_path_requires_path(self):
        with pytest.raises(XPathSyntaxError):
            parse_path("1 + 2")

    def test_non_path_expression(self):
        expr = parse_xpath("1 + 2")
        assert isinstance(expr, BinaryOp)

    def test_empty_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("   ")

    def test_syntax_error_message_includes_query(self):
        with pytest.raises(XPathSyntaxError) as err:
            parse_xpath("/a[")
        assert "/a[" in str(err.value)

    def test_table_2_index_paths(self):
        """All Table 2 paths parse."""
        for text in ["/Catalog/Categories/Product/RegPrice", "//Discount",
                     "/Catalog/Categories/Product[RegPrice > 100]",
                     "/Catalog/Categories/Product[Discount > 0.1]",
                     "/Catalog/Categories/Product[RegPrice > 100 and "
                     "Discount > 0.1]"]:
            assert parse_xpath(text) is not None
