"""Tests for the catalog and relational base tables."""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import CatalogError
from repro.rdb.buffer import BufferPool
from repro.rdb.catalog import Catalog, ColumnDef, IndexDef, TableDef
from repro.rdb.storage import Disk
from repro.rdb.table import Table
from repro.rdb.values import SqlType


def emp_def():
    return TableDef("emp", [
        ColumnDef("id", SqlType.BIGINT),
        ColumnDef("fname", SqlType.VARCHAR),
        ColumnDef("lname", SqlType.VARCHAR),
        ColumnDef("salary", SqlType.DOUBLE),
    ])


def xml_def():
    return TableDef("docs", [
        ColumnDef("id", SqlType.BIGINT),
        ColumnDef("body", SqlType.XML),
    ])


class TestCatalog:
    def test_add_and_lookup_table(self):
        cat = Catalog()
        cat.add_table(emp_def())
        assert cat.table("emp").name == "emp"
        with pytest.raises(CatalogError):
            cat.table("missing")

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.add_table(emp_def())
        with pytest.raises(CatalogError):
            cat.add_table(emp_def())

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableDef("t", [ColumnDef("a", SqlType.BIGINT),
                           ColumnDef("a", SqlType.VARCHAR)])

    def test_xml_columns_and_docids(self):
        cat = Catalog()
        cat.add_table(xml_def())
        assert [c.name for c in cat.table("docs").xml_columns] == ["body"]
        assert cat.next_docid("docs") == 1
        assert cat.next_docid("docs") == 2

    def test_docid_requires_xml_column(self):
        cat = Catalog()
        cat.add_table(emp_def())
        with pytest.raises(CatalogError):
            cat.next_docid("emp")

    def test_indexes(self):
        cat = Catalog()
        cat.add_table(xml_def())
        cat.add_index(IndexDef("ix1", "docs", "xpath",
                               {"path": "//Discount", "type": "double",
                                "column": "body"}))
        assert cat.index("ix1").spec["path"] == "//Discount"
        assert len(cat.indexes_on("docs", kind="xpath")) == 1
        assert cat.indexes_on("docs", kind="column") == []
        cat.drop_index("ix1")
        with pytest.raises(CatalogError):
            cat.index("ix1")

    def test_index_requires_table(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.add_index(IndexDef("ix", "nope", "column", {"column": "a"}))

    def test_drop_table_drops_its_indexes(self):
        cat = Catalog()
        cat.add_table(emp_def())
        cat.add_index(IndexDef("ix", "emp", "column", {"column": "id"}))
        cat.drop_table("emp")
        with pytest.raises(CatalogError):
            cat.index("ix")

    def test_schema_registration(self):
        cat = Catalog()
        cat.register_schema("order.xsd", b"\x01compiled")
        assert cat.schema("order.xsd") == b"\x01compiled"
        with pytest.raises(CatalogError):
            cat.register_schema("order.xsd", b"again")
        with pytest.raises(CatalogError):
            cat.schema("other.xsd")

    def test_encode_decode_roundtrip(self):
        cat = Catalog()
        cat.add_table(emp_def())
        cat.add_table(xml_def())
        cat.next_docid("docs")
        cat.add_index(IndexDef("ix1", "docs", "xpath",
                               {"path": "//p", "type": "string",
                                "column": "body"}))
        cat.register_schema("s.xsd", b"\x02blob")
        cat.names.intern_name("Product")
        restored = Catalog.decode(cat.encode())
        assert restored.table("emp").columns == emp_def().columns
        assert restored.index("ix1").spec["path"] == "//p"
        assert restored.schema("s.xsd") == b"\x02blob"
        assert restored.next_docid("docs") == 2  # sequence continues
        assert restored.names.lookup_name("Product") == \
            cat.names.lookup_name("Product")


class TestTable:
    @pytest.fixture
    def table(self):
        pool = BufferPool(Disk(page_size=1024, stats=StatsRegistry()), capacity=32)
        return Table(emp_def(), pool)

    def test_insert_fetch(self, table):
        rid = table.insert((1, "John", "Doe", 50000.0))
        assert table.fetch(rid) == (1, "John", "Doe", 50000.0)

    def test_scan(self, table):
        for i in range(20):
            table.insert((i, f"F{i}", f"L{i}", float(i)))
        rows = list(table.scan())
        assert len(rows) == 20
        assert rows[0][0] == 0

    def test_scan_with_predicate(self, table):
        for i in range(10):
            table.insert((i, "f", "l", float(i)))
        rows = list(table.scan(lambda r: r[3] > 7.0))
        assert [r[0] for r in rows] == [8, 9]

    def test_update_and_delete(self, table):
        rid = table.insert((1, "John", "Doe", 1.0))
        rid = table.update(rid, (1, "Jane", "Doe", 2.0))
        assert table.fetch(rid)[1] == "Jane"
        old = table.delete(rid)
        assert old[1] == "Jane"
        assert table.row_count == 0

    def test_column_index_lookup(self, table):
        for i in range(50):
            table.insert((i, f"F{i}", "L", float(i)))
        table.create_column_index("id", unique=True)
        hits = list(table.lookup("id", 33))
        assert len(hits) == 1
        assert hits[0][1][1] == "F33"

    def test_index_backfill(self, table):
        table.insert((5, "a", "b", 1.0))
        table.create_column_index("id")
        assert [row[0] for _, row in table.lookup("id", 5)] == [5]

    def test_index_maintained_on_update(self, table):
        rid = table.insert((1, "a", "b", 1.0))
        table.create_column_index("id")
        table.update(rid, (2, "a", "b", 1.0))
        assert list(table.lookup("id", 1)) == []
        assert len(list(table.lookup("id", 2))) == 1

    def test_index_maintained_on_delete(self, table):
        rid = table.insert((1, "a", "b", 1.0))
        table.create_column_index("id")
        table.delete(rid)
        assert list(table.lookup("id", 1)) == []

    def test_lookup_without_index_scans(self, table):
        table.insert((1, "a", "b", 1.0))
        assert len(list(table.lookup("fname", "a"))) == 1

    def test_xml_column_stores_docid(self):
        pool = BufferPool(Disk(page_size=1024, stats=StatsRegistry()), capacity=32)
        table = Table(xml_def(), pool)
        rid = table.insert((1, 42))  # 42 is the DocID
        assert table.fetch(rid) == (1, 42)
