"""WAL volatile-tail semantics, GroupCommitter, and restart-state tests.

Covers the durable-prefix contract that group commit rides on
(``auto_flush=False`` keeps appends volatile until :meth:`flush`; ``save``
persists only the durable prefix), the :class:`GroupCommitter` bookkeeping
in its single-threaded form, the halt-on-crash rule, and the ``load``
restart-state regression: a reloaded log must continue the LSN sequence
and keep ``bytes_since_checkpoint`` correct instead of resetting both.
"""

import pytest

from repro.core.stats import StatsRegistry
from repro.fault.injector import FaultInjector, FaultPlan, SimulatedCrash
from repro.rdb.wal import GroupCommitter, LogManager, LogOp


@pytest.fixture
def stats():
    return StatsRegistry()


class TestVolatileTail:
    def test_auto_flush_default_keeps_every_append_durable(self, stats):
        log = LogManager(stats)
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.COMMIT)
        assert log.durable_count == 2
        assert log.unflushed_count == 0
        assert log.flush() == 0  # nothing outstanding, no counter traffic
        assert stats.get("wal.flushes") == 0

    def test_appends_stay_volatile_until_flush(self, stats):
        log = LogManager(stats, auto_flush=False)
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.INSERT, "t", b"row")
        assert log.durable_count == 0
        assert log.durable_lsn == -1
        assert log.unflushed_count == 2
        assert log.flush() == 2
        assert log.durable_lsn == 1
        assert stats.get("wal.flushes") == 1

    def test_save_persists_only_the_durable_prefix(self, stats, tmp_path):
        log = LogManager(stats, auto_flush=False)
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.COMMIT)
        log.flush()
        log.append(2, LogOp.BEGIN)
        log.append(2, LogOp.COMMIT)  # volatile: a crash would lose these
        path = str(tmp_path / "tail.wal")
        log.save(path)
        reloaded = LogManager.load(path)
        assert [r.txn_id for r in reloaded.records()] == [1, 1]
        assert reloaded.durable_count == 2

    def test_checkpoint_forces_the_volatile_tail(self, stats):
        log = LogManager(stats, auto_flush=False)
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.COMMIT)
        log.checkpoint()
        assert log.unflushed_count == 0  # CHECKPOINT implies a force
        assert log.durable_count == 3


class TestLoadRestartState:
    def test_reload_continues_the_lsn_sequence(self, stats, tmp_path):
        log = LogManager(stats)
        for _ in range(3):
            log.append(1, LogOp.INSERT, "t", b"x")
        path = str(tmp_path / "state.wal")
        log.save(path)
        reloaded = LogManager.load(path)
        # Regression: load used to leave _last_lsn at -1, so the LSN
        # monotonicity sanitizer saw the next append as a fresh log.
        assert reloaded._last_lsn == 2
        assert reloaded.append(2, LogOp.BEGIN).lsn == 3

    def test_reload_restores_checkpoint_byte_mark(self, stats, tmp_path):
        log = LogManager(stats)
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.COMMIT)
        log.checkpoint()
        log.append(2, LogOp.BEGIN)
        log.append(2, LogOp.COMMIT)
        path = str(tmp_path / "ckpt.wal")
        log.save(path)
        reloaded = LogManager.load(path)
        # Regression: load used to leave _bytes_at_checkpoint at 0, so a
        # restarted engine counted the whole pre-checkpoint volume as
        # outstanding checkpoint lag.
        assert reloaded.bytes_since_checkpoint == log.bytes_since_checkpoint
        assert reloaded.bytes_since_checkpoint < reloaded.bytes_written

    def test_reload_marks_everything_durable(self, stats, tmp_path):
        log = LogManager(stats, auto_flush=False)
        log.append(1, LogOp.COMMIT)
        log.flush()
        path = str(tmp_path / "durable.wal")
        log.save(path)
        reloaded = LogManager.load(path)
        assert reloaded.durable_count == 1
        assert reloaded.unflushed_count == 0


class TestGroupCommitter:
    def test_single_threaded_commit_forces_a_group_of_one(self, stats):
        log = LogManager(stats, auto_flush=False)
        gc = GroupCommitter(log, stats)
        record = gc.commit(7)
        assert record.op is LogOp.COMMIT
        assert log.durable_lsn >= record.lsn
        assert gc.pending == 0
        assert stats.get("wal.group_leads") == 1
        assert stats.get("wal.group_commits") == 1
        hist = stats.histogram("wal.group_size")
        assert hist is not None and hist.count == 1 and hist.max == 1

    def test_group_force_hardens_earlier_appends_too(self, stats):
        log = LogManager(stats, auto_flush=False)
        gc = GroupCommitter(log, stats)
        log.append(7, LogOp.BEGIN)
        log.append(7, LogOp.INSERT, "t", b"row")
        gc.commit(7)
        # One force covers the transaction's whole record chain: WAL rule.
        assert log.unflushed_count == 0
        assert stats.get("wal.flushes") == 1

    def test_window_collects_companions_via_yield_hook(self, stats):
        log = LogManager(stats, auto_flush=False)
        gc = GroupCommitter(log, stats, window=1.0, max_group=3)
        companions = iter([5, 6])

        def arriving_companions(_step):
            # Stands in for the latch-yield: another committer appends its
            # COMMIT record while the leader sleeps through the window.
            txn_id = next(companions, None)
            if txn_id is not None:
                log.append(txn_id, LogOp.COMMIT)
                gc._pending += 1

        gc.yield_wait = arriving_companions
        gc.commit(4)  # leads; window fills to max_group=3, then forces
        assert log.durable_count == 3
        assert stats.get("wal.group_commits") == 1
        assert stats.histogram("wal.group_size").max == 3

    def test_crash_mid_force_halts_the_log(self, stats):
        injector = FaultInjector([FaultPlan.crash_at("wal.group.pre_flush")],
                                 stats=stats)
        log = LogManager(stats, injector=injector, auto_flush=False)
        gc = GroupCommitter(log, stats)
        with pytest.raises(SimulatedCrash):
            gc.commit(1)
        # The process is dead: survivors cannot harden post-mortem state.
        with pytest.raises(SimulatedCrash):
            log.append(2, LogOp.BEGIN)
        with pytest.raises(SimulatedCrash):
            log.flush()
        assert log.durable_count == 0  # the group never hardened

    def test_crash_after_force_keeps_the_group_durable(self, stats):
        injector = FaultInjector([FaultPlan.crash_at("wal.group.post_flush")],
                                 stats=stats)
        log = LogManager(stats, injector=injector, auto_flush=False)
        gc = GroupCommitter(log, stats)
        with pytest.raises(SimulatedCrash):
            gc.commit(1)
        # The force beat the crash: the commit is durable even though the
        # committer never got its acknowledgement.
        assert log.durable_count == 1
