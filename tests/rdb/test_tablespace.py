"""Unit tests for table spaces (records by RID, overflow, scans)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import StatsRegistry
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.rdb.tablespace import Rid, TableSpace


@pytest.fixture
def space():
    disk = Disk(page_size=512, stats=StatsRegistry())
    return TableSpace(BufferPool(disk, capacity=16))


class TestRid:
    def test_roundtrip(self):
        rid = Rid(123456, 7)
        assert Rid.from_bytes(rid.to_bytes()) == rid

    def test_ordering_follows_page_then_slot(self):
        assert Rid(1, 5) < Rid(2, 0)
        assert Rid(1, 5) < Rid(1, 6)

    def test_bad_length(self):
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            Rid.from_bytes(b"\x00" * 5)


class TestTableSpace:
    def test_insert_read(self, space):
        rid = space.insert(b"record one")
        assert space.read(rid) == b"record one"
        assert space.record_count == 1

    def test_many_records_span_pages(self, space):
        rids = [space.insert(bytes([i % 250]) * 100) for i in range(50)]
        assert len({r.page_id for r in rids}) > 1
        for i, rid in enumerate(rids):
            assert space.read(rid) == bytes([i % 250]) * 100

    def test_insertion_order_clustering(self, space):
        """Consecutive inserts land in page order (clustering, §3.1)."""
        rids = [space.insert(b"r" * 50) for _ in range(30)]
        pages = [r.page_id for r in rids]
        assert pages == sorted(pages)

    def test_scan_in_page_order(self, space):
        payloads = [bytes([i]) * 60 for i in range(20)]
        for p in payloads:
            space.insert(p)
        assert [body for _, body in space.scan()] == payloads

    def test_delete_and_space_reuse(self, space):
        rids = [space.insert(b"x" * 100) for _ in range(10)]
        pages_before = space.page_count
        for rid in rids:
            space.delete(rid)
        assert space.record_count == 0
        for _ in range(10):
            space.insert(b"y" * 100)
        assert space.page_count == pages_before  # freed space was reused

    def test_update_in_place(self, space):
        rid = space.insert(b"original value!")
        new_rid = space.update(rid, b"short")
        assert new_rid == rid
        assert space.read(rid) == b"short"

    def test_update_relocates_when_page_full(self, space):
        first = space.insert(b"a" * 200)
        space.insert(b"b" * 200)
        new_rid = space.update(first, b"c" * 400)
        assert space.read(new_rid) == b"c" * 400
        assert space.record_count == 2

    def test_overflow_record_roundtrip(self, space):
        big = bytes(range(256)) * 20  # 5120 bytes > 512-byte page
        rid = space.insert(big)
        assert space.read(rid) == big

    def test_overflow_scan(self, space):
        big = b"Z" * 2000
        space.insert(b"small")
        space.insert(big)
        bodies = [body for _, body in space.scan()]
        assert bodies == [b"small", big]

    def test_overflow_accounting_on_delete(self, space):
        rid = space.insert(b"Z" * 2000)
        pages_with = space.page_count
        space.delete(rid)
        assert space.page_count < pages_with

    def test_update_overflow_to_inline(self, space):
        rid = space.insert(b"Z" * 2000)
        new_rid = space.update(rid, b"now small")
        assert space.read(new_rid) == b"now small"

    def test_read_deleted_raises(self, space):
        from repro.errors import RecordNotFoundError
        rid = space.insert(b"gone")
        space.delete(rid)
        with pytest.raises(RecordNotFoundError):
            space.read(rid)

    def test_live_bytes_tracks_payloads(self, space):
        space.insert(b"x" * 100)
        space.insert(b"y" * 50)
        assert space.live_bytes() >= 150

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=700), min_size=1, max_size=40))
    def test_roundtrip_property(self, payloads):
        disk = Disk(page_size=256, stats=StatsRegistry())
        space = TableSpace(BufferPool(disk, capacity=8))
        rids = [space.insert(p) for p in payloads]
        for rid, payload in zip(rids, payloads, strict=True):
            assert space.read(rid) == payload
        assert space.record_count == len(payloads)
