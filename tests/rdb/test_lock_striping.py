"""Striped lock-table tests and the phantom-waiter regression.

``release_all`` used to leave ``{waiter: set()}`` husks in the waits-for
map after erasing the released transaction from other waiters' edge sets,
so :meth:`LockManager.waiter_count` kept counting transactions that no
longer waited on anything — and the serving layer's overload guard sheds
new work on that number.  These tests pin the fix and the agreement
between ``waiter_count``, ``waits_for_edges`` and ``find_deadlock``,
plus basic correctness of the striped tables themselves.
"""

import threading
from dataclasses import replace

from repro.analyze import sanitize
from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.core.stats import StatsRegistry
from repro.obs.monitor import Monitor
from repro.rdb.locks import LockManager, LockMode
from repro.serve.admission import OverloadGuard


class TestPhantomWaiterRegression:
    def test_release_all_drops_emptied_waiters(self):
        lm = LockManager(StatsRegistry())
        lm.try_acquire(1, "a", LockMode.X)
        assert not lm.try_acquire(2, "a", LockMode.X)  # 2 waits on 1
        assert lm.waiter_count() == 1
        lm.release_all(1)
        # Regression: the emptied edge set used to linger, so txn 2 kept
        # counting as a waiter forever.
        assert lm.waiter_count() == 0
        assert lm.waits_for_edges() == {}

    def test_waiter_count_agrees_with_edges_through_churn(self):
        lm = LockManager(StatsRegistry())
        lm.try_acquire(1, "a", LockMode.X)
        lm.try_acquire(2, "b", LockMode.X)
        assert not lm.try_acquire(3, "a", LockMode.X)
        assert not lm.try_acquire(3, "b", LockMode.S)
        assert not lm.try_acquire(4, "a", LockMode.S)
        for txn_id in (1, 2, 3, 4):
            assert lm.waiter_count() == len(lm.waits_for_edges())
            lm.release_all(txn_id)
        assert lm.waiter_count() == 0
        assert lm.waits_for_edges() == {}

    def test_find_deadlock_sees_no_cycle_after_release(self):
        lm = LockManager(StatsRegistry())
        lm.try_acquire(1, "a", LockMode.X)
        lm.try_acquire(2, "b", LockMode.X)
        assert not lm.try_acquire(1, "b", LockMode.X)
        assert not lm.try_acquire(2, "a", LockMode.X)
        assert lm.find_deadlock() is not None
        lm.release_all(1)
        assert lm.find_deadlock() is None
        assert lm.waiter_count() == len(lm.waits_for_edges())

    def test_overload_guard_stops_shedding_after_release(self):
        config = replace(DEFAULT_CONFIG, serve_shed_lock_waiters=1,
                         serve_shed_check_interval=1)
        db = Database(config)
        guard = OverloadGuard(Monitor(db), config, db.stats)
        locks = db.txns.locks
        locks.try_acquire(1, "hot", LockMode.X)
        locks.try_acquire(2, "hot", LockMode.X)
        locks.try_acquire(3, "hot", LockMode.S)
        assert guard.check() is not None  # two real waiters > limit of 1
        locks.release_all(1)
        locks.release_all(2)
        locks.release_all(3)
        # Regression: phantom waiters kept the guard shedding every new
        # request even though the lock table was completely idle.
        assert guard.check() is None


class TestStripedTables:
    def test_grants_and_holders_across_many_stripes(self):
        lm = LockManager(StatsRegistry(), stripes=4)
        resources = [f"r{i}" for i in range(32)]
        for i, resource in enumerate(resources):
            assert lm.try_acquire(i, resource, LockMode.X)
        table = lm.lock_table()
        assert len(table) == len(resources)
        for i, resource in enumerate(resources):
            assert lm.holders(resource) == {i: LockMode.X}
            assert lm.holds(i, resource, LockMode.X)

    def test_conflicts_are_per_resource_not_per_stripe(self):
        # Two resources that can land in the same stripe must still grant
        # independently; the same resource must still conflict.
        lm = LockManager(StatsRegistry(), stripes=1)
        assert lm.try_acquire(1, "a", LockMode.X)
        assert lm.try_acquire(2, "b", LockMode.X)
        assert not lm.try_acquire(3, "a", LockMode.S)

    def test_release_all_spans_stripes(self):
        lm = LockManager(StatsRegistry(), stripes=4)
        for i in range(16):
            assert lm.try_acquire(1, f"r{i}", LockMode.X)
        assert lm.locks_held(1) == 16
        lm.release_all(1)
        assert lm.locks_held(1) == 0
        for i in range(16):
            assert lm.try_acquire(2, f"r{i}", LockMode.S)

    def test_upgrade_still_works_striped(self):
        lm = LockManager(StatsRegistry(), stripes=8)
        assert lm.try_acquire(1, "r", LockMode.S)
        assert lm.try_acquire(1, "r", LockMode.X)
        assert lm.holds(1, "r", LockMode.X)


class TestStripeLatchWitnessing:
    """Stripe latches built while the sanitizers are armed are tracked,
    so the lockset discipline witnesses every striped-table mutation."""

    def test_concurrent_acquires_witness_the_stripe_latches(self):
        sanitize.enable()
        sanitize.reset_witness()
        try:
            lm = LockManager(StatsRegistry(), stripes=4)
            barrier = threading.Barrier(4)

            def txn_body(txn_id):
                barrier.wait()
                for i in range(8):
                    lm.try_acquire(txn_id, f"r{txn_id}-{i}", LockMode.X)
                lm.release_all(txn_id)

            threads = [threading.Thread(target=txn_body, args=(t,))
                       for t in range(1, 5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            locksets = sanitize.witnessed_locksets()
            assert locksets[("LockStripe", "granted")] == \
                frozenset(("lock.resource_stripe",))
            assert locksets[("LockStripe", "held")] == \
                frozenset(("lock.txn_stripe",))
            assert lm.stats.get("sanitize.race.lockset") == 0
        finally:
            sanitize.reset_witness()

    def test_disarmed_stripes_use_plain_locks(self):
        sanitize.disable()
        lm = LockManager(StatsRegistry(), stripes=2)
        assert lm.try_acquire(1, "r", LockMode.X)
        lm.release_all(1)
        assert sanitize.witnessed_locksets() == {}
