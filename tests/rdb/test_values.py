"""Unit tests for SQL value codecs and memcomparable key encodings."""

import datetime as dt
from decimal import Decimal

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeError_
from repro.rdb.values import (SqlType, coerce, decode_row, decode_value,
                              encode_row, encode_value, key_encode)


class TestCoerce:
    def test_bigint_from_string(self):
        assert coerce(SqlType.BIGINT, "42") == 42

    def test_double_from_string(self):
        assert coerce(SqlType.DOUBLE, "3.5") == 3.5

    def test_decfloat_from_string_is_exact(self):
        assert coerce(SqlType.DECFLOAT, "0.1") == Decimal("0.1")

    def test_decfloat_from_float_uses_shortest_repr(self):
        assert coerce(SqlType.DECFLOAT, 0.1) == Decimal("0.1")

    def test_varchar_from_bytes(self):
        assert coerce(SqlType.VARCHAR, b"abc") == "abc"

    def test_varbinary_from_str(self):
        assert coerce(SqlType.VARBINARY, "abc") == b"abc"

    def test_date_from_iso_string(self):
        assert coerce(SqlType.DATE, "2005-06-16") == dt.date(2005, 6, 16)

    def test_none_passthrough(self):
        assert coerce(SqlType.DOUBLE, None) is None

    def test_bad_numeric_raises(self):
        with pytest.raises(TypeError_):
            coerce(SqlType.DOUBLE, "not a number")

    def test_bad_date_raises(self):
        with pytest.raises(TypeError_):
            coerce(SqlType.DATE, "June 16")

    def test_parse_type_names(self):
        assert SqlType.parse("VARCHAR") is SqlType.VARCHAR
        assert SqlType.parse(" xml ") is SqlType.XML
        with pytest.raises(TypeError_):
            SqlType.parse("blob")


class TestRowCodec:
    TYPES = [SqlType.BIGINT, SqlType.DOUBLE, SqlType.VARCHAR,
             SqlType.VARBINARY, SqlType.DATE, SqlType.DECFLOAT]

    def test_roundtrip(self):
        row = (7, 2.5, "hello", b"\x00raw", dt.date(2005, 6, 16), Decimal("1.25"))
        assert decode_row(self.TYPES, encode_row(self.TYPES, row)) == row

    def test_nulls_roundtrip(self):
        row = (None,) * len(self.TYPES)
        assert decode_row(self.TYPES, encode_row(self.TYPES, row)) == row

    def test_wrong_arity_raises(self):
        with pytest.raises(TypeError_):
            encode_row([SqlType.BIGINT], (1, 2))

    def test_single_value_roundtrip(self):
        out = bytearray()
        encode_value(out, SqlType.VARCHAR, "只")
        value, pos = decode_value(bytes(out), 0, SqlType.VARCHAR)
        assert value == "只"
        assert pos == len(out)


def _ordered(sql_type, values):
    """Assert key_encode agrees with logical ordering of values."""
    coerced = [coerce(sql_type, v) for v in values]
    keys = [key_encode(sql_type, v) for v in values]
    for i in range(len(values)):
        for j in range(len(values)):
            logical = (coerced[i] > coerced[j]) - (coerced[i] < coerced[j])
            encoded = (keys[i] > keys[j]) - (keys[i] < keys[j])
            assert encoded == logical, (values[i], values[j])


class TestKeyEncoding:
    def test_bigint_order(self):
        _ordered(SqlType.BIGINT, [-(2**62), -100, -1, 0, 1, 7, 2**62])

    def test_double_order(self):
        _ordered(SqlType.DOUBLE, [-1e300, -2.0, -0.5, 0.0, 1e-10, 1.0, 300.0, 1e300])

    def test_decfloat_order(self):
        _ordered(SqlType.DECFLOAT, ["-1000", "-1.23", "-1.2", "0", "0.001",
                                    "1.2", "1.23", "9.9", "10", "1000"])

    def test_decfloat_trailing_zeros_equal(self):
        assert key_encode(SqlType.DECFLOAT, "1.20") == key_encode(SqlType.DECFLOAT, "1.2")
        assert key_encode(SqlType.DECFLOAT, "100") == key_encode(SqlType.DECFLOAT, "1e2")

    def test_varchar_order(self):
        _ordered(SqlType.VARCHAR, ["", "a", "ab", "b", "ba"])

    def test_date_order(self):
        _ordered(SqlType.DATE, ["1969-12-31", "1970-01-01", "2005-06-16"])

    def test_null_sorts_lowest(self):
        assert key_encode(SqlType.BIGINT, None) < key_encode(SqlType.BIGINT, -(2**62))

    def test_nan_rejected(self):
        with pytest.raises(TypeError_):
            key_encode(SqlType.DOUBLE, float("nan"))

    def test_xml_has_no_key_encoding(self):
        with pytest.raises(TypeError_):
            key_encode(SqlType.XML, b"<a/>")

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1),
           st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_bigint_order_property(self, a, b):
        assert (key_encode(SqlType.BIGINT, a) < key_encode(SqlType.BIGINT, b)) == (a < b)

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_double_order_property(self, a, b):
        ka, kb = key_encode(SqlType.DOUBLE, a), key_encode(SqlType.DOUBLE, b)
        if a < b:
            assert ka < kb
        elif a > b:
            assert ka > kb

    @given(st.decimals(allow_nan=False, allow_infinity=False, places=6),
           st.decimals(allow_nan=False, allow_infinity=False, places=6))
    def test_decfloat_order_property(self, a, b):
        ka, kb = key_encode(SqlType.DECFLOAT, a), key_encode(SqlType.DECFLOAT, b)
        if a < b:
            assert ka < kb
        elif a > b:
            assert ka > kb
        else:
            assert ka == kb
