"""Unit tests for the simulated disk, slotted pages, and the buffer pool."""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import (BufferPoolError, PageFullError, RecordNotFoundError,
                          StorageError)
from repro.rdb.buffer import BufferPool
from repro.rdb.pages import SlottedPage
from repro.rdb.storage import Disk


@pytest.fixture
def stats():
    return StatsRegistry()


@pytest.fixture
def disk(stats):
    return Disk(page_size=512, stats=stats)


class TestDisk:
    def test_allocate_and_rw(self, disk, stats):
        pid = disk.allocate_page()
        assert disk.read_page(pid) == bytes(512)
        disk.write_page(pid, b"x" * 512)
        assert disk.read_page(pid)[:1] == b"x"
        assert stats.get("disk.page_reads") == 2
        assert stats.get("disk.page_writes") == 1

    def test_bad_page_id(self, disk):
        with pytest.raises(StorageError):
            disk.read_page(99)

    def test_wrong_write_size(self, disk):
        pid = disk.allocate_page()
        with pytest.raises(StorageError):
            disk.write_page(pid, b"short")

    def test_save_load_roundtrip(self, disk, tmp_path):
        pid = disk.allocate_page()
        disk.write_page(pid, bytes([7]) * 512)
        path = str(tmp_path / "disk.img")
        disk.save(path)
        reloaded = Disk.load(path)
        assert reloaded.page_size == 512
        assert reloaded.read_page(pid) == bytes([7]) * 512

    def test_too_small_page_size(self):
        with pytest.raises(StorageError):
            Disk(page_size=16)


class TestSlottedPage:
    def make(self, size=256):
        return SlottedPage.format(bytearray(size))

    def test_insert_read(self):
        page = self.make()
        slot = page.insert(b"hello")
        assert bytes(page.read(slot)) == b"hello"

    def test_multiple_records_distinct_slots(self):
        page = self.make()
        slots = [page.insert(bytes([i]) * 10) for i in range(5)]
        assert len(set(slots)) == 5
        for i, slot in enumerate(slots):
            assert bytes(page.read(slot)) == bytes([i]) * 10

    def test_delete_then_read_raises(self):
        page = self.make()
        slot = page.insert(b"data")
        page.delete(slot)
        with pytest.raises(RecordNotFoundError):
            page.read(slot)

    def test_tombstone_slot_reused(self):
        page = self.make()
        a = page.insert(b"a" * 8)
        page.insert(b"b" * 8)
        page.delete(a)
        c = page.insert(b"c" * 8)
        assert c == a
        assert bytes(page.read(c)) == b"c" * 8

    def test_page_full(self):
        page = self.make(64)
        page.insert(b"x" * 40)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 40)

    def test_compaction_reclaims_space(self):
        page = self.make(128)
        a = page.insert(b"a" * 30)
        b = page.insert(b"b" * 30)
        c = page.insert(b"c" * 30)
        page.delete(a)
        page.delete(c)
        # Needs compaction: free space is fragmented.
        d = page.insert(b"d" * 55)
        assert bytes(page.read(d)) == b"d" * 55
        assert bytes(page.read(b)) == b"b" * 30

    def test_update_in_place_shrink(self):
        page = self.make()
        slot = page.insert(b"long record here")
        page.update(slot, b"short")
        assert bytes(page.read(slot)) == b"short"

    def test_update_grow_within_page(self):
        page = self.make()
        slot = page.insert(b"aa")
        other = page.insert(b"bb")
        page.update(slot, b"a much longer record body")
        assert bytes(page.read(slot)) == b"a much longer record body"
        assert bytes(page.read(other)) == b"bb"

    def test_update_grow_overflow_rolls_back(self):
        page = self.make(64)
        slot = page.insert(b"tiny")
        with pytest.raises(PageFullError):
            page.update(slot, b"z" * 60)
        assert bytes(page.read(slot)) == b"tiny"

    def test_records_iteration_skips_deleted(self):
        page = self.make()
        a = page.insert(b"a")
        b = page.insert(b"b")
        page.delete(a)
        live = [(slot, bytes(data)) for slot, data in page.records()]
        assert live == [(b, b"b")]

    def test_empty_record_rejected(self):
        with pytest.raises(StorageError):
            self.make().insert(b"")


class TestBufferPool:
    def test_hit_miss_accounting(self, disk, stats):
        pool = BufferPool(disk, capacity=2)
        pid, data = pool.new_page()
        data[0] = 42
        pool.unpin(pid, dirty=True)
        with pool.page(pid) as again:
            assert again[0] == 42
        assert stats.get("buffer.hits") == 1
        assert stats.get("buffer.misses") == 0

    def test_eviction_writes_dirty_page(self, disk, stats):
        pool = BufferPool(disk, capacity=1)
        pid, data = pool.new_page()
        data[0] = 9
        pool.unpin(pid, dirty=True)
        pid2, _ = pool.new_page()  # forces eviction of pid
        pool.unpin(pid2)
        assert stats.get("buffer.evictions") == 1
        assert disk.read_page(pid)[0] == 9

    def test_refetch_after_eviction(self, disk):
        pool = BufferPool(disk, capacity=1)
        pid, data = pool.new_page()
        data[1] = 7
        pool.unpin(pid, dirty=True)
        pid2, _ = pool.new_page()
        pool.unpin(pid2)
        with pool.page(pid) as again:
            assert again[1] == 7

    def test_all_pinned_raises(self, disk):
        pool = BufferPool(disk, capacity=1)
        pid, _ = pool.new_page()  # stays pinned
        with pytest.raises(BufferPoolError):
            pool.new_page()
        pool.unpin(pid, dirty=True)

    def test_unpin_without_pin_raises(self, disk):
        pool = BufferPool(disk, capacity=2)
        with pytest.raises(BufferPoolError):
            pool.unpin(123)

    def test_flush_all_persists(self, disk):
        pool = BufferPool(disk, capacity=4)
        pid, data = pool.new_page()
        data[5] = 1
        pool.unpin(pid, dirty=True)
        pool.flush_all()
        assert disk.read_page(pid)[5] == 1

    def test_evict_all_drops_frames(self, disk):
        pool = BufferPool(disk, capacity=4)
        pid, _ = pool.new_page()
        pool.unpin(pid, dirty=True)
        pool.evict_all()
        assert not pool.resident(pid)
