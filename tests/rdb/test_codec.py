"""Unit tests for the binary codec primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rdb import codec


class TestUvarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21, 2**63, 2**80])
    def test_roundtrip(self, value):
        out = bytearray()
        codec.write_uvarint(out, value)
        decoded, pos = codec.read_uvarint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            codec.write_uvarint(bytearray(), -1)

    def test_size_matches_encoding(self):
        for value in (0, 127, 128, 16383, 16384, 2**35):
            out = bytearray()
            codec.write_uvarint(out, value)
            assert codec.uvarint_size(value) == len(out)

    @given(st.integers(min_value=0, max_value=2**70))
    def test_roundtrip_property(self, value):
        out = bytearray()
        codec.write_uvarint(out, value)
        decoded, pos = codec.read_uvarint(bytes(out), 0)
        assert (decoded, pos) == (value, len(out))


class TestSvarint:
    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2**40, -(2**40)])
    def test_roundtrip(self, value):
        out = bytearray()
        codec.write_svarint(out, value)
        decoded, pos = codec.read_svarint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        out = bytearray()
        codec.write_svarint(out, value)
        decoded, _ = codec.read_svarint(bytes(out), 0)
        assert decoded == value


class TestBytesAndStrings:
    def test_bytes_roundtrip(self):
        out = bytearray()
        codec.write_bytes(out, b"hello")
        codec.write_bytes(out, b"")
        codec.write_bytes(out, bytes(range(256)))
        first, pos = codec.read_bytes(bytes(out), 0)
        second, pos = codec.read_bytes(bytes(out), pos)
        third, pos = codec.read_bytes(bytes(out), pos)
        assert (first, second, third) == (b"hello", b"", bytes(range(256)))
        assert pos == len(out)

    def test_str_roundtrip_unicode(self):
        out = bytearray()
        codec.write_str(out, "héllo wörld — ユニコード")
        text, pos = codec.read_str(bytes(out), 0)
        assert text == "héllo wörld — ユニコード"
        assert pos == len(out)

    def test_u32_roundtrip(self):
        out = bytearray()
        codec.write_u32(out, 0)
        codec.write_u32(out, 2**32 - 1)
        first, pos = codec.read_u32(bytes(out), 0)
        second, pos = codec.read_u32(bytes(out), pos)
        assert (first, second) == (0, 2**32 - 1)

    def test_sequential_mixed_stream(self):
        out = bytearray()
        codec.write_uvarint(out, 42)
        codec.write_str(out, "answer")
        codec.write_bytes(out, b"\x00\x01")
        value, pos = codec.read_uvarint(bytes(out), 0)
        text, pos = codec.read_str(bytes(out), pos)
        data, pos = codec.read_bytes(bytes(out), pos)
        assert (value, text, data) == (42, "answer", b"\x00\x01")

    def test_read_from_memoryview(self):
        out = bytearray()
        codec.write_bytes(out, b"view")
        data, _ = codec.read_bytes(memoryview(bytes(out)), 0)
        assert data == b"view"
