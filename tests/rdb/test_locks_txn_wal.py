"""Tests for the lock manager, transactions, and the write-ahead log."""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import TransactionError
from repro.rdb.locks import LockManager, LockMode, mode_compatible, mode_lub
from repro.rdb.txn import IsolationLevel, TransactionManager, TxnState
from repro.rdb.wal import LogManager, LogOp, LogRecord, replay


class TestModeAlgebra:
    def test_is_compatible_with_most(self):
        for granted in (LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX):
            assert mode_compatible(LockMode.IS, granted)

    def test_x_conflicts_with_all(self):
        for granted in LockMode:
            assert not mode_compatible(LockMode.X, granted)

    def test_ix_s_conflict(self):
        assert not mode_compatible(LockMode.IX, LockMode.S)
        assert not mode_compatible(LockMode.S, LockMode.IX)

    def test_lub_s_ix_is_six(self):
        assert mode_lub(LockMode.S, LockMode.IX) is LockMode.SIX

    def test_lub_idempotent(self):
        for mode in LockMode:
            assert mode_lub(mode, mode) is mode

    def test_lub_commutative(self):
        for a in LockMode:
            for b in LockMode:
                assert mode_lub(a, b) is mode_lub(b, a)


class TestLockManager:
    def test_grant_and_conflict(self):
        lm = LockManager(StatsRegistry())
        assert lm.try_acquire(1, "r", LockMode.X)
        assert not lm.try_acquire(2, "r", LockMode.S)
        lm.release_all(1)
        assert lm.try_acquire(2, "r", LockMode.S)

    def test_shared_readers(self):
        lm = LockManager(StatsRegistry())
        assert lm.try_acquire(1, "r", LockMode.S)
        assert lm.try_acquire(2, "r", LockMode.S)

    def test_upgrade(self):
        lm = LockManager(StatsRegistry())
        assert lm.try_acquire(1, "r", LockMode.S)
        assert lm.try_acquire(1, "r", LockMode.X)  # upgrade, no other holder
        assert lm.holds(1, "r", LockMode.X)

    def test_upgrade_blocked_by_other_reader(self):
        lm = LockManager(StatsRegistry())
        lm.try_acquire(1, "r", LockMode.S)
        lm.try_acquire(2, "r", LockMode.S)
        assert not lm.try_acquire(1, "r", LockMode.X)
        assert lm.holds(1, "r", LockMode.S)  # still holds old mode

    def test_intention_locks(self):
        lm = LockManager(StatsRegistry())
        assert lm.try_acquire(1, "tbl", LockMode.IX)
        assert lm.try_acquire(2, "tbl", LockMode.IX)  # IX || IX
        assert not lm.try_acquire(3, "tbl", LockMode.S)  # S vs IX

    def test_deadlock_detection(self):
        lm = LockManager(StatsRegistry())
        lm.try_acquire(1, "a", LockMode.X)
        lm.try_acquire(2, "b", LockMode.X)
        assert not lm.try_acquire(1, "b", LockMode.X)
        assert not lm.try_acquire(2, "a", LockMode.X)
        cycle = lm.find_deadlock()
        assert cycle is not None
        assert set(cycle) == {1, 2}

    def test_no_false_deadlock(self):
        lm = LockManager(StatsRegistry())
        lm.try_acquire(1, "a", LockMode.X)
        assert not lm.try_acquire(2, "a", LockMode.X)
        assert lm.find_deadlock() is None

    def test_release_clears_waits(self):
        lm = LockManager(StatsRegistry())
        lm.try_acquire(1, "a", LockMode.X)
        lm.try_acquire(2, "a", LockMode.X)
        lm.release_all(1)
        assert lm.find_deadlock() is None
        assert lm.try_acquire(2, "a", LockMode.X)

    def test_stats_counters(self):
        stats = StatsRegistry()
        lm = LockManager(stats)
        lm.try_acquire(1, "a", LockMode.X)
        lm.try_acquire(2, "a", LockMode.S)
        assert stats.get("lock.acquired") == 1
        assert stats.get("lock.waits") == 1


class TestTransactions:
    def test_commit_releases_locks(self):
        tm = TransactionManager(stats=StatsRegistry())
        txn = tm.begin()
        txn.lock("r", LockMode.X)
        txn.commit()
        assert txn.state is TxnState.COMMITTED
        other = tm.begin()
        other.lock("r", LockMode.X)  # no conflict remains

    def test_abort_runs_undo_in_reverse(self):
        tm = TransactionManager(stats=StatsRegistry())
        txn = tm.begin()
        trace = []
        txn.on_abort(lambda: trace.append("first"))
        txn.on_abort(lambda: trace.append("second"))
        txn.abort()
        assert trace == ["second", "first"]

    def test_finished_txn_rejects_operations(self):
        tm = TransactionManager(stats=StatsRegistry())
        txn = tm.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.lock("r", LockMode.S)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_blocked_lock_raises_outside_scheduler(self):
        tm = TransactionManager(stats=StatsRegistry())
        a, b = tm.begin(), tm.begin()
        a.lock("r", LockMode.X)
        with pytest.raises(TransactionError):
            b.lock("r", LockMode.S)

    def test_isolation_level_recorded(self):
        tm = TransactionManager(stats=StatsRegistry())
        txn = tm.begin(IsolationLevel.REPEATABLE_READ)
        assert txn.isolation is IsolationLevel.REPEATABLE_READ
        txn.commit()


class TestWal:
    def test_lsn_sequence(self):
        log = LogManager(StatsRegistry())
        r1 = log.append(1, LogOp.BEGIN)
        r2 = log.append(1, LogOp.INSERT, "t", b"row")
        assert (r1.lsn, r2.lsn) == (0, 1)

    def test_record_roundtrip(self):
        record = LogRecord(5, 2, LogOp.UPDATE, "tbl", b"new", b"old")
        decoded, consumed = LogRecord.decode(record.encode())
        assert decoded == record
        assert consumed == len(record.encode())

    def test_bytes_accounting(self):
        stats = StatsRegistry()
        log = LogManager(stats)
        log.append(1, LogOp.INSERT, "t", b"x" * 100)
        assert log.bytes_written > 100
        assert stats.get("wal.bytes") == log.bytes_written
        assert stats.get("wal.records") == 1

    def test_save_load(self, tmp_path):
        log = LogManager(StatsRegistry())
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.INSERT, "t", b"payload", b"extra")
        log.append(1, LogOp.COMMIT)
        path = str(tmp_path / "wal.log")
        log.save(path)
        reloaded = LogManager.load(path)
        assert [r.op for r in reloaded.records()] == [LogOp.BEGIN, LogOp.INSERT,
                                                      LogOp.COMMIT]

    def test_replay_committed_only(self):
        log = LogManager(StatsRegistry())
        log.append(1, LogOp.BEGIN)
        log.append(1, LogOp.INSERT, "t", b"keep")
        log.append(1, LogOp.COMMIT)
        log.append(2, LogOp.BEGIN)
        log.append(2, LogOp.INSERT, "t", b"lose")  # never committed
        applied = []
        count = replay(log, lambda r: applied.append(r.payload))
        assert count == 1
        assert applied == [b"keep"]

    def test_replay_all(self):
        log = LogManager(StatsRegistry())
        log.append(1, LogOp.INSERT, "t", b"a")
        log.append(2, LogOp.INSERT, "t", b"b")
        applied = []
        replay(log, lambda r: applied.append(r.payload), committed_only=False)
        assert applied == [b"a", b"b"]

    def test_truncate(self):
        log = LogManager(StatsRegistry())
        log.append(1, LogOp.INSERT, "t", b"a")
        log.truncate()
        assert list(log.records()) == []
