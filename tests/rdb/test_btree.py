"""Unit and property tests for the B+tree index manager."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import StatsRegistry
from repro.errors import DuplicateKeyError
from repro.rdb.btree import BTree
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk


def make_tree(page_size=512, unique=False, capacity=64):
    disk = Disk(page_size=page_size, stats=StatsRegistry())
    return BTree(BufferPool(disk, capacity=capacity), unique=unique)


class TestBasics:
    def test_insert_search(self):
        tree = make_tree()
        tree.insert(b"key", b"value")
        assert tree.search(b"key") == [b"value"]
        assert tree.search(b"missing") == []

    def test_len_tracks_entries(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(f"k{i}".encode(), b"v")
        assert len(tree) == 10

    def test_duplicate_keys_allowed(self):
        tree = make_tree()
        tree.insert(b"k", b"v1")
        tree.insert(b"k", b"v2")
        assert sorted(tree.search(b"k")) == [b"v1", b"v2"]

    def test_exact_duplicate_entry_rejected(self):
        tree = make_tree()
        tree.insert(b"k", b"v")
        with pytest.raises(DuplicateKeyError):
            tree.insert(b"k", b"v")

    def test_unique_index_rejects_key(self):
        tree = make_tree(unique=True)
        tree.insert(b"k", b"v1")
        with pytest.raises(DuplicateKeyError):
            tree.insert(b"k", b"v2")

    def test_search_one(self):
        tree = make_tree()
        tree.insert(b"k", b"v")
        assert tree.search_one(b"k") == b"v"
        assert tree.search_one(b"zz") is None


class TestSplitsAndOrder:
    def test_many_inserts_sorted_scan(self):
        tree = make_tree()
        keys = [f"key-{i:05d}".encode() for i in range(500)]
        shuffled = keys[:]
        random.Random(7).shuffle(shuffled)
        for key in shuffled:
            tree.insert(key, b"v" + key)
        assert tree.height() > 1  # splits happened
        scanned = [k for k, _ in tree.scan()]
        assert scanned == keys

    def test_duplicate_runs_scan_in_value_order(self):
        tree = make_tree(page_size=256)
        values = [f"{i:04d}".encode() for i in range(200)]
        shuffled = values[:]
        random.Random(3).shuffle(shuffled)
        for value in shuffled:
            tree.insert(b"dup", value)
        assert [v for _, v in tree.scan()] == values

    def test_range_scan_bounds(self):
        tree = make_tree()
        for i in range(100):
            tree.insert(f"{i:03d}".encode(), b"")
        keys = [k for k, _ in tree.scan(low=b"010", high=b"020")]
        assert keys == [f"{i:03d}".encode() for i in range(10, 20)]
        keys_inc = [k for k, _ in tree.scan(low=b"010", high=b"020",
                                            high_inclusive=True)]
        assert keys_inc[-1] == b"020"

    def test_scan_prefix(self):
        tree = make_tree()
        for key in [b"ab1", b"ab2", b"ac1", b"b"]:
            tree.insert(key, b"")
        assert [k for k, _ in tree.scan_prefix(b"ab")] == [b"ab1", b"ab2"]

    def test_seek_ge(self):
        tree = make_tree()
        for i in range(0, 100, 10):
            tree.insert(f"{i:03d}".encode(), f"v{i}".encode())
        entry = tree.seek_ge(b"025")
        assert entry == (b"030", b"v30")
        assert tree.seek_ge(b"999") is None

    def test_variable_length_keys(self):
        tree = make_tree()
        keys = [b"a", b"aa", b"aaa" * 50, b"b" * 120, b"c"]
        for key in keys:
            tree.insert(key, b"x")
        assert [k for k, _ in tree.scan()] == sorted(keys)


class TestDelete:
    def test_delete_existing(self):
        tree = make_tree()
        tree.insert(b"k", b"v")
        assert tree.delete(b"k") is True
        assert tree.search(b"k") == []
        assert len(tree) == 0

    def test_delete_specific_value(self):
        tree = make_tree()
        tree.insert(b"k", b"v1")
        tree.insert(b"k", b"v2")
        assert tree.delete(b"k", b"v2") is True
        assert tree.search(b"k") == [b"v1"]

    def test_delete_missing_returns_false(self):
        tree = make_tree()
        tree.insert(b"k", b"v")
        assert tree.delete(b"zz") is False
        assert tree.delete(b"k", b"wrong") is False

    def test_delete_across_leaves(self):
        tree = make_tree(page_size=256)
        for i in range(300):
            tree.insert(b"same", f"{i:05d}".encode())
        assert tree.delete(b"same", b"00299") is True
        assert tree.delete(b"same", b"00000") is True
        assert len(tree) == 298


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=20),
                              st.binary(max_size=20)),
                    min_size=1, max_size=300, unique=True))
    def test_scan_matches_sorted_reference(self, entries):
        tree = make_tree(page_size=256, capacity=128)
        for key, value in entries:
            tree.insert(key, value)
        assert list(tree.scan()) == sorted(entries)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=12), min_size=1,
                    max_size=200, unique=True),
           st.data())
    def test_insert_delete_mix(self, keys, data):
        tree = make_tree(page_size=256, capacity=128)
        for key in keys:
            tree.insert(key, b"v")
        to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True))
        for key in to_delete:
            assert tree.delete(key) is True
        remaining = sorted(set(keys) - set(to_delete))
        assert [k for k, _ in tree.scan()] == remaining
