"""Tests for linked-list quicksort and the external merge sorter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import StatsRegistry
from repro.rdb.buffer import BufferPool
from repro.rdb.sort import (ExternalSorter, linked_list_from,
                            linked_list_to_list, quicksort_linked_list)
from repro.rdb.storage import Disk
from repro.rdb.tablespace import TableSpace


def work_space():
    return TableSpace(BufferPool(Disk(page_size=512, stats=StatsRegistry()),
                                 capacity=16))


class TestLinkedListQuicksort:
    def sort_keys(self, keys):
        head = linked_list_from([(k, k) for k in keys])
        return linked_list_to_list(quicksort_linked_list(head))

    def test_empty(self):
        assert quicksort_linked_list(None) is None

    def test_single(self):
        assert self.sort_keys([5]) == [5]

    def test_random(self):
        keys = [random.Random(1).randint(0, 99) for _ in range(200)]
        random.Random(2).shuffle(keys)
        assert self.sort_keys(keys) == sorted(keys)

    def test_already_sorted_and_reversed(self):
        assert self.sort_keys(list(range(50))) == list(range(50))
        assert self.sort_keys(list(range(50, 0, -1))) == list(range(1, 51))

    def test_all_equal(self):
        assert self.sort_keys([7] * 30) == [7] * 30

    def test_stability(self):
        rows = [(f"p{i}", i % 3) for i in range(30)]
        head = linked_list_from(rows)
        result = linked_list_to_list(quicksort_linked_list(head))
        expected = [p for p, _ in sorted(rows, key=lambda r: r[1])]
        assert result == expected

    def test_long_list_no_recursion_error(self):
        keys = list(range(5000, 0, -1))
        assert self.sort_keys(keys) == sorted(keys)

    @given(st.lists(st.integers(min_value=-50, max_value=50), max_size=300))
    def test_matches_sorted(self, keys):
        assert self.sort_keys(keys) == sorted(keys)


class TestExternalSorter:
    def make(self, run_limit=8):
        return ExternalSorter(work_space(),
                              encode=lambda o: str(o).encode(),
                              decode=lambda b: int(b.decode()),
                              run_limit=run_limit)

    def test_empty(self):
        assert list(self.make().sort([])) == []

    def test_single_run(self):
        sorter = self.make(run_limit=100)
        out = list(sorter.sort([(i, -i) for i in range(10)]))
        assert out == list(range(9, -1, -1))
        assert sorter.runs_spilled == 1

    def test_multiple_runs_merge(self):
        sorter = self.make(run_limit=8)
        rng = random.Random(11)
        rows = [(i, rng.randint(0, 1000)) for i in range(100)]
        out = list(sorter.sort(rows))
        expected = [p for p, _ in sorted(rows, key=lambda r: r[1])]
        # Equal keys may interleave across runs; compare keyed grouping.
        keyed = {p: k for p, k in rows}
        assert [keyed[p] for p in out] == sorted(k for _, k in rows)
        assert sorter.runs_spilled > 1
        assert sorted(out) == sorted(p for p, _ in rows)
        assert len(expected) == len(out)

    def test_spills_do_page_io(self):
        stats = StatsRegistry()
        space = TableSpace(BufferPool(Disk(page_size=256, stats=stats), capacity=2))
        sorter = ExternalSorter(space, encode=lambda o: str(o).encode(),
                                decode=lambda b: int(b.decode()), run_limit=4)
        list(sorter.sort([(i, 1000 - i) for i in range(200)]))
        # With a tiny pool the spilled runs must hit the device.
        assert stats.get("disk.page_writes") > 0

    def test_run_limit_validation(self):
        with pytest.raises(ValueError):
            self.make(run_limit=1)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=999), max_size=120))
    def test_matches_sorted_property(self, keys):
        sorter = self.make(run_limit=10)
        out = list(sorter.sort([(k, k) for k in keys]))
        assert out == sorted(keys)
