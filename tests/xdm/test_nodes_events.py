"""Tests for the XDM node model and virtual SAX event adapters."""

import pytest

from repro.errors import XmlError
from repro.xdm import nodeid
from repro.xdm.events import (EventKind, SaxEvent, assign_node_ids,
                              build_tree, events_from_tree)
from repro.xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                             ElementNode, NodeKind,
                             ProcessingInstructionNode, TextNode, document,
                             element, node_count)


def sample_tree():
    """The paper's Figure 3(a) shape: Node1..Node8 under a root."""
    root = element("Node0", children=[
        element("Node1", children=[
            element("Node2", children=[
                element("Node3", children=["three"]),
                element("Node4", children=["four"]),
                element("Node5", children=["five"]),
            ]),
            element("Node6"),
            element("Node7", children=[element("Node8")]),
        ]),
    ])
    return document(root)


class TestNodeModel:
    def test_seven_kinds_exist(self):
        assert len(NodeKind) == 7

    def test_element_accessors(self):
        el = element("Product", attrs={"id": "1"}, children=["text"])
        assert el.name == ("Product", "")
        assert el.get_attribute("id").value == "1"
        assert el.get_attribute("missing") is None
        assert el.string_value() == "text"

    def test_duplicate_attribute_rejected(self):
        el = ElementNode("e")
        el.set_attribute("a", "1")
        with pytest.raises(XmlError):
            el.set_attribute("a", "2")

    def test_string_value_concatenates_descendants(self):
        tree = element("a", children=[
            "one ", element("b", children=["two"]), TextNode(" three"),
            CommentNode("ignored"),
        ])
        assert tree.string_value() == "one two three"

    def test_document_element(self):
        doc = sample_tree()
        assert doc.document_element().local == "Node0"

    def test_document_rejects_attribute_children(self):
        doc = DocumentNode()
        with pytest.raises(XmlError):
            doc.append(AttributeNode("a", "v"))

    def test_element_rejects_document_child(self):
        with pytest.raises(XmlError):
            ElementNode("e").append(DocumentNode())

    def test_descendants_or_self_order(self):
        el = element("a", attrs={"x": "1"}, children=[element("b")])
        kinds = [n.kind for n in el.descendants_or_self()]
        assert kinds == [NodeKind.ELEMENT, NodeKind.ATTRIBUTE, NodeKind.ELEMENT]

    def test_node_count(self):
        assert node_count(sample_tree()) == 13  # doc + 9 elements + 3 texts

    def test_elements_filter(self):
        el = element("a", children=[element("b"), element("c"), element("b")])
        assert len(el.elements("b")) == 2
        assert len(el.elements()) == 3

    def test_root(self):
        doc = sample_tree()
        leaf = doc.document_element().elements("Node1")[0]
        assert leaf.root() is doc

    def test_pi_and_comment_values(self):
        pi = ProcessingInstructionNode("style", "href=x")
        assert pi.name == ("style", "")
        assert pi.string_value() == "href=x"
        assert CommentNode("note").string_value() == "note"


class TestEventRoundtrip:
    def test_tree_events_tree(self):
        doc = sample_tree()
        rebuilt = build_tree(events_from_tree(doc))
        assert isinstance(rebuilt, DocumentNode)
        assert node_count(rebuilt) == node_count(doc)
        assert rebuilt.string_value() == doc.string_value()

    def test_fragment_roundtrip(self):
        el = element("frag", attrs={"a": "1"}, children=["hi"])
        rebuilt = build_tree(events_from_tree(el))
        assert isinstance(rebuilt, ElementNode)
        assert rebuilt.get_attribute("a").value == "1"

    def test_namespace_events(self):
        el = ElementNode("e", uri="urn:x")
        el.declare_namespace("p", "urn:x")
        events = list(events_from_tree(el))
        assert events[1].kind is EventKind.NS
        rebuilt = build_tree(iter(events))
        assert rebuilt.namespaces[0].uri == "urn:x"

    def test_deep_tree_no_recursion_error(self):
        node = element("leaf")
        for _ in range(3000):
            node = element("wrap", children=[node])
        assert sum(1 for _ in events_from_tree(node)) == 2 * 3001

    def test_unbalanced_stream_rejected(self):
        events = [SaxEvent(EventKind.ELEM_START, local="a")]
        with pytest.raises(XmlError):
            build_tree(iter(events))

    def test_attr_outside_element_rejected(self):
        with pytest.raises(XmlError):
            build_tree(iter([SaxEvent(EventKind.ATTR, local="a", value="1")]))


class TestAssignNodeIds:
    def test_document_ids(self):
        doc = sample_tree()
        events = list(assign_node_ids(events_from_tree(doc)))
        ids = [e.node_id for e in events if e.node_id is not None]
        # Root gets the implicit empty id; all ids are valid and doc-ordered.
        assert ids[0] == nodeid.ROOT_ID
        non_root = ids[1:]
        assert non_root == sorted(non_root)
        assert len(set(non_root)) == len(non_root)
        for abs_id in non_root:
            nodeid.validate_absolute(abs_id)

    def test_figure3_ids(self):
        """Node1 gets 02, Node2 gets 0202, Node6 gets 0204 analogue..."""
        doc = sample_tree()
        events = list(assign_node_ids(events_from_tree(doc)))
        by_name = {e.local: e.node_id for e in events
                   if e.kind is EventKind.ELEM_START}
        assert by_name["Node0"] == b"\x02"
        assert by_name["Node1"] == b"\x02\x02"
        assert by_name["Node2"] == b"\x02\x02\x02"
        assert by_name["Node6"] == b"\x02\x02\x04"
        assert nodeid.parent(by_name["Node8"]) == by_name["Node7"]

    def test_attributes_get_ids(self):
        el = element("a", attrs={"x": "1"}, children=[element("b")])
        events = list(assign_node_ids(events_from_tree(el)))
        attr = next(e for e in events if e.kind is EventKind.ATTR)
        child = next(e for e in events if e.local == "b")
        assert attr.node_id is not None
        assert attr.node_id < child.node_id  # attributes precede children
