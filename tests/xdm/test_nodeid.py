"""Tests for Dewey prefix node IDs (§3.1 encoding rules)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeIdError
from repro.xdm import nodeid
from repro.xdm.nodeid import (ROOT_ID, ancestors, between, between_relative,
                              child_id, depth, format_id, is_ancestor,
                              is_ancestor_or_self, is_valid_relative, parent,
                              relative_from_ordinal, split_levels,
                              validate_absolute)


class TestRelativeEncoding:
    def test_small_ordinals_single_even_byte(self):
        assert relative_from_ordinal(1) == b"\x02"
        assert relative_from_ordinal(2) == b"\x04"
        assert relative_from_ordinal(127) == b"\xfe"

    def test_large_ordinals_use_continuation(self):
        rel = relative_from_ordinal(128)
        assert rel == b"\xff\x02"
        assert is_valid_relative(rel)
        assert is_valid_relative(relative_from_ordinal(1000))

    def test_ordinal_allocation_is_monotone(self):
        ids = [relative_from_ordinal(n) for n in range(1, 400)]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_validity_rules(self):
        assert is_valid_relative(b"\x02")
        assert is_valid_relative(b"\x01\x02")
        assert is_valid_relative(b"\xff\xff\x80")
        assert not is_valid_relative(b"")
        assert not is_valid_relative(b"\x03")       # odd terminator
        assert not is_valid_relative(b"\x02\x02")   # even continuation
        assert not is_valid_relative(b"\x00")       # zero reserved for root

    def test_bad_ordinal(self):
        with pytest.raises(NodeIdError):
            relative_from_ordinal(0)


class TestAbsoluteIds:
    def test_root_is_empty(self):
        assert ROOT_ID == b""
        assert depth(ROOT_ID) == 0
        assert format_id(ROOT_ID) == "00"

    def test_paper_example_order(self):
        """Figure 3: node IDs 02 < 0202 < 0204 < 0206 < 04 < 06 < 0602."""
        ids = [b"\x02", b"\x02\x02", b"\x02\x04", b"\x02\x06",
               b"\x04", b"\x06", b"\x06\x02"]
        assert ids == sorted(ids)  # document order == byte order

    def test_split_levels(self):
        assert split_levels(b"\x02\x01\x04\x06") == [b"\x02", b"\x01\x04", b"\x06"]

    def test_split_rejects_dangling(self):
        with pytest.raises(NodeIdError):
            split_levels(b"\x02\x01")
        with pytest.raises(NodeIdError):
            split_levels(b"\x02\x00")

    def test_parent(self):
        assert parent(b"\x02\x04") == b"\x02"
        assert parent(b"\x02") == ROOT_ID
        assert parent(b"\x02\x01\x04") == b"\x02"
        with pytest.raises(NodeIdError):
            parent(ROOT_ID)

    def test_ancestors(self):
        assert list(ancestors(b"\x02\x04\x06")) == [b"", b"\x02", b"\x02\x04"]

    def test_ancestor_prefix_test(self):
        assert is_ancestor_or_self(b"\x02", b"\x02\x04")
        assert is_ancestor_or_self(b"\x02", b"\x02")
        assert is_ancestor(b"", b"\x02")
        assert not is_ancestor(b"\x02", b"\x02")
        assert not is_ancestor(b"\x02", b"\x04\x02")

    def test_child_id(self):
        assert child_id(b"\x02", 3) == b"\x02\x06"

    def test_format(self):
        assert format_id(b"\x02\x01\x04") == "02.0104"

    def test_validate_absolute(self):
        validate_absolute(b"\x02\x01\x04\x06")
        with pytest.raises(NodeIdError):
            validate_absolute(b"\x01")


class TestBetween:
    def check(self, low, high):
        mid = between_relative(low, high)
        assert is_valid_relative(mid)
        if low is not None:
            assert low < mid
        if high is not None:
            assert mid < high
        return mid

    def test_simple_gap(self):
        assert self.check(b"\x02", b"\x06") in (b"\x04",)

    def test_adjacent_evens_extend_length(self):
        mid = self.check(b"\x02", b"\x04")
        assert len(mid) > 1  # forced to extend, e.g. 03-80

    def test_before_first(self):
        self.check(None, b"\x02")
        self.check(None, b"\x01\x02")
        self.check(None, b"\x01\x01\x02")

    def test_after_last(self):
        assert self.check(b"\x02", None) == b"\x04"
        self.check(b"\xfe", None)
        self.check(b"\xff\x02", None)
        self.check(b"\xff\xfe", None)

    def test_between_generated_neighbors(self):
        mid = between_relative(b"\x02", b"\x04")
        again = self.check(b"\x02", mid)
        self.check(again, mid)

    def test_no_gap_raises(self):
        with pytest.raises(NodeIdError):
            between_relative(b"\x04", b"\x02")
        with pytest.raises(NodeIdError):
            between_relative(b"\x02", b"\x02")

    def test_invalid_inputs(self):
        with pytest.raises(NodeIdError):
            between_relative(b"\x03", b"\x06")

    def test_repeated_splitting_stays_valid(self):
        """Split the same gap 64 times; §3.1 says space always exists."""
        low, high = b"\x02", b"\x04"
        for _ in range(64):
            mid = self.check(low, high)
            high = mid  # keep inserting before the previous insertion
        low, high = b"\x02", b"\x04"
        for _ in range(64):
            mid = self.check(low, high)
            low = mid  # and after

    def test_absolute_between(self):
        parent_id = b"\x02"
        left, right = b"\x02\x02", b"\x02\x04"
        mid = between(left, right, parent_id)
        assert left < mid < right
        assert mid.startswith(parent_id)
        assert nodeid.parent(mid) == parent_id

    def test_absolute_between_validates_parentage(self):
        with pytest.raises(NodeIdError):
            between(b"\x04\x02", None, b"\x02")
        with pytest.raises(NodeIdError):
            between(b"\x02\x02\x02", None, b"\x02")  # grandchild, not child


@st.composite
def relative_ids(draw):
    body = draw(st.lists(st.sampled_from([1, 3, 5, 127, 253, 255]),
                         max_size=3))
    last = draw(st.sampled_from([2, 4, 128, 252, 254]))
    return bytes(body + [last])


class TestBetweenProperties:
    @settings(max_examples=300, deadline=None)
    @given(relative_ids(), relative_ids())
    def test_between_any_pair(self, a, b):
        if a == b:
            return
        low, high = (a, b) if a < b else (b, a)
        mid = between_relative(low, high)
        assert is_valid_relative(mid)
        assert low < mid < high

    @settings(max_examples=100, deadline=None)
    @given(relative_ids())
    def test_open_ends(self, rel):
        below = between_relative(None, rel)
        above = between_relative(rel, None)
        assert is_valid_relative(below) and below < rel
        assert is_valid_relative(above) and above > rel

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                    max_size=40))
    def test_random_split_sequence(self, directions):
        """Repeatedly bisect a gap; all generated IDs stay valid and ordered."""
        low, high = b"\x02", b"\x04"
        for direction in directions:
            mid = between_relative(low, high)
            assert is_valid_relative(mid)
            assert low < mid < high
            if direction:
                low = mid
            else:
                high = mid
