"""Tests for the XML parser, token streams, and the serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XmlParseError
from repro.xdm.events import EventKind, build_tree
from repro.xdm.parser import parse, parse_sax
from repro.xdm.serializer import serialize
from repro.xdm.tokens import TokenStream


def kinds(stream):
    return [e.kind for e in stream]


class TestParserBasics:
    def test_minimal_document(self):
        events = list(parse("<a/>"))
        assert kinds(events) == [EventKind.DOC_START, EventKind.ELEM_START,
                                 EventKind.ELEM_END, EventKind.DOC_END]

    def test_text_content(self):
        tree = build_tree(parse("<a>hello</a>"))
        assert tree.string_value() == "hello"

    def test_nested_elements(self):
        tree = build_tree(parse("<a><b><c>x</c></b><b>y</b></a>"))
        root = tree.document_element()
        assert [e.local for e in root.elements()] == ["b", "b"]
        assert root.string_value() == "xy"

    def test_attributes(self):
        tree = build_tree(parse('<a id="1" name="two"/>'))
        root = tree.document_element()
        assert root.get_attribute("id").value == "1"
        assert root.get_attribute("name").value == "two"

    def test_attribute_order_adjusted(self):
        """§3.2: attribute order is normalized (sorted by uri, local)."""
        events = [e for e in parse('<a zeta="1" alpha="2"/>')
                  if e.kind is EventKind.ATTR]
        assert [e.local for e in events] == ["alpha", "zeta"]

    def test_single_and_double_quotes(self):
        tree = build_tree(parse("<a x='1' y=\"2\"/>"))
        assert tree.document_element().get_attribute("x").value == "1"

    def test_xml_declaration_and_comments(self):
        text = '<?xml version="1.0"?><!-- top --><a/><!-- tail -->'
        events = list(parse(text))
        comments = [e for e in events if e.kind is EventKind.COMMENT]
        assert [c.value for c in comments] == [" top ", " tail "]

    def test_doctype_skipped(self):
        tree = build_tree(parse('<!DOCTYPE a [<!ELEMENT a ANY>]><a>x</a>'))
        assert tree.string_value() == "x"

    def test_processing_instruction(self):
        events = list(parse('<?pi data here?><a/>'))
        pi = next(e for e in events if e.kind is EventKind.PI)
        assert pi.local == "pi"
        assert pi.value == "data here"

    def test_entities(self):
        tree = build_tree(parse("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>"))
        assert tree.string_value() == "<&>\"'AB"

    def test_entities_in_attributes(self):
        tree = build_tree(parse('<a v="&amp;&#x21;"/>'))
        assert tree.document_element().get_attribute("v").value == "&!"

    def test_cdata(self):
        tree = build_tree(parse("<a><![CDATA[<not><parsed>&amp;]]></a>"))
        assert tree.string_value() == "<not><parsed>&amp;"

    def test_strip_whitespace_option(self):
        pretty = "<a>\n  <b>x</b>\n</a>"
        kept = build_tree(parse(pretty))
        stripped = build_tree(parse(pretty, strip_whitespace=True))
        assert len(kept.document_element().children()) == 3
        assert len(stripped.document_element().children()) == 1

    def test_mixed_content(self):
        tree = build_tree(parse("<p>one <b>two</b> three</p>"))
        assert tree.string_value() == "one two three"


class TestNamespaces:
    def test_default_namespace(self):
        tree = build_tree(parse('<a xmlns="urn:one"><b/></a>'))
        root = tree.document_element()
        assert root.uri == "urn:one"
        assert root.elements()[0].uri == "urn:one"

    def test_prefixed_names(self):
        tree = build_tree(parse('<p:a xmlns:p="urn:p"><p:b/><c/></p:a>'))
        root = tree.document_element()
        assert root.uri == "urn:p"
        assert root.elements()[0].uri == "urn:p"
        assert root.elements()[1].uri == ""

    def test_prefixed_attributes(self):
        tree = build_tree(parse('<a xmlns:p="urn:p" p:x="1" x="2"/>'))
        root = tree.document_element()
        assert root.get_attribute("x", "urn:p").value == "1"
        assert root.get_attribute("x").value == "2"

    def test_namespace_scoping(self):
        text = '<a xmlns="urn:out"><b xmlns="urn:in"/><c/></a>'
        root = build_tree(parse(text)).document_element()
        assert root.elements()[0].uri == "urn:in"
        assert root.elements()[1].uri == "urn:out"

    def test_unbound_prefix_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<p:a/>")

    def test_xml_prefix_predeclared(self):
        tree = build_tree(parse('<a xml:space="preserve"/>'))
        attr = tree.document_element().attributes[0]
        assert attr.uri == "http://www.w3.org/XML/1998/namespace"

    def test_ns_events_emitted(self):
        events = [e for e in parse('<a xmlns:p="urn:p" xmlns="urn:d"/>')
                  if e.kind is EventKind.NS]
        assert [(e.local, e.value) for e in events] == [("", "urn:d"),
                                                        ("p", "urn:p")]


class TestParserErrors:
    @pytest.mark.parametrize("text", [
        "",                       # no document element
        "<a>",                    # unterminated
        "<a></b>",                # mismatched tags
        "<a><b></a></b>",         # crossed tags
        "<a foo=bar/>",           # unquoted attribute
        '<a x="1" x="2"/>',       # duplicate attribute
        "<a>&nope;</a>",          # unknown entity
        "<a/><b/>",               # two roots
        "<a><!-- -- --></a>",     # double hyphen in comment
        '<a x="<"/>',             # < in attribute value
        "<1tag/>",                # bad name start
        "<?xml version='1.0'?>",  # prolog only
    ])
    def test_rejects(self, text):
        with pytest.raises(XmlParseError):
            parse(text)

    def test_error_has_position(self):
        with pytest.raises(XmlParseError) as err:
            parse("<a>\n<b></c>\n</a>")
        assert "line 2" in str(err.value)


class TestTokenStream:
    def test_buffer_roundtrip(self):
        stream = parse('<a id="1">text<b/></a>')
        reloaded = TokenStream(stream.to_bytes())
        assert [e.kind for e in reloaded] == [e.kind for e in stream]
        assert len(reloaded) == len(stream)

    def test_annotations(self):
        stream = TokenStream()
        stream.append(EventKind.ELEM_START, "price", annotation="xs:double")
        stream.append(EventKind.TEXT, value="10")
        stream.append(EventKind.ELEM_END, "price")
        annotated = list(stream.annotated_events())
        assert annotated[0][1] == "xs:double"
        assert annotated[1][1] is None
        # Plain event iteration ignores annotations.
        assert [e.kind for e in stream] == [EventKind.ELEM_START,
                                            EventKind.TEXT, EventKind.ELEM_END]

    def test_byte_size_counts(self):
        stream = parse("<a>hello</a>")
        assert stream.byte_size > 0
        assert stream.token_count == 5

    def test_sax_interface_equivalent(self):
        text = '<a x="1"><b>t</b></a>'
        sax_events = []
        parse_sax(text, sax_events.append)
        assert sax_events == list(parse(text))


class TestSerializer:
    def roundtrip(self, text):
        return serialize(build_tree(parse(text)))

    def test_simple(self):
        assert self.roundtrip("<a>text</a>") == "<a>text</a>"

    def test_empty_element_self_closes(self):
        assert self.roundtrip("<a><b></b></a>") == "<a><b/></a>"

    def test_attributes(self):
        out = self.roundtrip('<a id="1"/>')
        assert out == '<a id="1"/>'

    def test_escaping(self):
        out = self.roundtrip("<a>&lt;tag&gt; &amp; x</a>")
        assert out == "<a>&lt;tag&gt; &amp; x</a>"

    def test_attribute_escaping(self):
        out = self.roundtrip('<a v="&quot;&amp;"/>')
        assert 'v="&quot;&amp;"' in out

    def test_namespace_preserved(self):
        out = self.roundtrip('<a xmlns="urn:x"><b/></a>')
        assert build_tree(parse(out)).document_element().uri == "urn:x"
        assert build_tree(parse(out)).document_element().elements()[0].uri == "urn:x"

    def test_prefix_generated_when_needed(self):
        from repro.xdm.nodes import ElementNode
        el = ElementNode("e", uri="urn:gen")
        el.set_attribute("x", "1", uri="urn:attr")
        out = serialize(el)
        reparsed = build_tree(parse(out)).document_element()
        assert reparsed.uri == "urn:gen"
        assert reparsed.get_attribute("x", "urn:attr").value == "1"

    def test_comment_and_pi(self):
        out = self.roundtrip("<a><!--c--><?t d?></a>")
        assert out == "<a><!--c--><?t d?></a>"

    def test_declaration_option(self):
        out = serialize(build_tree(parse("<a/>")), omit_declaration=False)
        assert out.startswith("<?xml")

    def test_double_roundtrip_stable(self):
        text = ('<catalog xmlns="urn:c" xmlns:m="urn:m">'
                '<product m:id="1">A &amp; B<price>9.99</price></product>'
                '</catalog>')
        once = self.roundtrip(text)
        twice = self.roundtrip(once)
        assert once == twice


@st.composite
def xml_trees(draw, depth=3):
    """Random small XDM trees for roundtrip property tests."""
    from repro.xdm.nodes import element
    name = draw(st.sampled_from(["a", "b", "item", "n-x"]))
    attrs = draw(st.dictionaries(
        st.sampled_from(["id", "v", "w"]),
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=8),
        max_size=2))
    children = []
    if depth > 0:
        n_children = draw(st.integers(min_value=0, max_value=3))
        for _ in range(n_children):
            if draw(st.booleans()):
                children.append(draw(xml_trees(depth=depth - 1)))
            else:
                text = draw(st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    min_size=1, max_size=10))
                # Adjacent text nodes coalesce on reparse; merge them here so
                # node counts are comparable.
                if children and isinstance(children[-1], str):
                    children[-1] += text
                else:
                    children.append(text)
    return element(name, attrs=attrs, children=children)


class TestRoundtripProperty:
    @settings(max_examples=50, deadline=None)
    @given(xml_trees())
    def test_serialize_parse_preserves_structure(self, tree):
        from repro.xdm.nodes import document, node_count
        doc = document(tree)
        text = serialize(doc)
        reparsed = build_tree(parse(text))
        assert node_count(reparsed) == node_count(doc)
        assert reparsed.string_value() == doc.string_value()
        # The parser normalizes attribute order (§3.2), so idempotence holds
        # from the first reparse onward.
        normalized = serialize(reparsed)
        assert serialize(build_tree(parse(normalized))) == normalized
