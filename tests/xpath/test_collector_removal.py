"""Regression tests for O(1) value-collector removal in QuickXScan.

``finalize`` used to call ``collectors.remove(instance)`` — a linear scan
per finalized instance, quadratic over deeply nested collecting instances.
The swap-pop replacement must not change any observable result: each
collector accumulates text independently, so order among collectors is
irrelevant, but an off-by-one in the slot bookkeeping would corrupt the
string values fed into predicates and result items.
"""

from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.domeval import evaluate_dom
from repro.xpath.quickxscan import evaluate


def both(query, doc):
    stream = evaluate(query, assign_node_ids(parse(doc).events()))
    dom = evaluate_dom(query, parse(doc).events())
    assert [(i.kind, i.local, i.value) for i in stream] == \
        [(i.kind, i.local, i.value) for i in dom], query
    return stream


def nested(depth, leaf_text):
    return "<a>" * depth + leaf_text + "</a>" * depth


RECURSIVE_DOC = (
    "<a><a><b>x1</b><a><b>x2</b></a></a><b>x3</b>"
    "<c><a><b>x4</b></a></c></a>"
)


class TestValueCollectingResultsUnchanged:
    def test_value_predicate_on_recursive_doc(self):
        # Every open <a> instance collects its string value concurrently;
        # finalization order exercises the collector bookkeeping.
        result = both("//a/b[. = 'x2']", RECURSIVE_DOC)
        assert [i.value for i in result] == ["x2"]

    def test_text_collection_under_nesting(self):
        result = both("//a[b]/b", RECURSIVE_DOC)
        assert [i.value for i in result] == ["x1", "x2", "x3", "x4"]

    def test_many_concurrent_collectors(self):
        # 60 simultaneously open collecting instances of the same qnode:
        # with the old list.remove this is the quadratic worst case, and
        # any slot-swap bug would splice text into the wrong instance.
        doc = nested(60, "payload")
        result = both("//a[. = 'payload']", doc)
        assert len(result) == 60
        assert all(i.value == "payload" for i in result)

    def test_interleaved_text_between_collector_lifetimes(self):
        doc = ("<r><a>one<a>two</a>three</a>"
               "<a>four</a><a><a>five</a>six</a></r>")
        result = both("//a[. = 'onetwothree']", doc)
        assert len(result) == 1

    def test_mixed_predicates_and_result_values(self):
        doc = ("<r><p><q>k1</q><v>10</v></p><p><q>k2</q><v>20</v></p>"
               "<p><q>k1</q><v>30</v></p></r>")
        result = both("/r/p[q = 'k1']/v", doc)
        assert [i.value for i in result] == ["10", "30"]

    def test_repeated_runs_are_stateless(self):
        # The compiled tree is shared via the compile cache: back-to-back
        # runs (including over different documents) must not see leftover
        # collector state.
        first = both("//a[. = 'payload']", nested(5, "payload"))
        second = both("//a[. = 'payload']", nested(5, "payload"))
        assert [i.value for i in first] == [i.value for i in second]
        assert both("//a[. = 'other']", nested(3, "other"))
