"""Tests for XPath value semantics and the core function library."""

import math

import pytest

from repro.errors import TypeError_, XPathUnsupportedError
from repro.xpath import functions
from repro.xpath.values import (Item, arithmetic, effective_boolean,
                                general_compare, to_number, to_string)


def items(*values):
    return [Item(i, None, "element", "x", v) for i, v in enumerate(values)]


class TestCoercions:
    def test_effective_boolean(self):
        assert effective_boolean(True) is True
        assert effective_boolean(0.0) is False
        assert effective_boolean(float("nan")) is False
        assert effective_boolean(1.5) is True
        assert effective_boolean("") is False
        assert effective_boolean("x") is True
        assert effective_boolean([]) is False
        assert effective_boolean(items("a")) is True

    def test_to_number(self):
        assert to_number("42") == 42.0
        assert to_number(" 3.5 ") == 3.5
        assert math.isnan(to_number("abc"))
        assert to_number(True) == 1.0
        assert math.isnan(to_number([]))
        assert to_number(items("7", "9")) == 7.0  # first in document order

    def test_to_string(self):
        assert to_string(3.0) == "3"
        assert to_string(3.25) == "3.25"
        assert to_string(float("nan")) == "NaN"
        assert to_string(True) == "true"
        assert to_string([]) == ""
        assert to_string(items("first", "second")) == "first"

    def test_uncollected_value_raises(self):
        bad = [Item(0, None, "element", "x", None)]
        with pytest.raises(TypeError_):
            to_string(bad)


class TestGeneralComparison:
    def test_atomic(self):
        assert general_compare("=", "a", "a")
        assert general_compare("!=", "a", "b")
        assert general_compare("<", 1.0, 2.0)
        assert not general_compare(">", 1.0, 2.0)

    def test_string_vs_number(self):
        assert general_compare("=", "10", 10.0)
        assert general_compare(">", "10", 9.0)

    def test_nodeset_vs_literal_existential(self):
        seq = items("5", "20", "abc")
        assert general_compare(">", seq, 10.0)       # 20 > 10
        assert not general_compare(">", seq, 30.0)
        assert general_compare("=", seq, "abc")

    def test_literal_vs_nodeset_flips(self):
        seq = items("5", "20")
        assert general_compare("<", 10.0, seq)       # 10 < 20
        assert not general_compare("<", 25.0, seq)

    def test_nodeset_vs_nodeset(self):
        assert general_compare("=", items("a", "b"), items("c", "b"))
        assert not general_compare("=", items("a"), items("b"))

    def test_empty_nodeset_never_compares(self):
        assert not general_compare("=", [], [])
        assert not general_compare("=", [], "anything")
        assert not general_compare("<", [], 5.0)

    def test_nan_ordering_false(self):
        assert not general_compare("<", "abc", 5.0)
        assert not general_compare(">=", "abc", 5.0)


class TestArithmetic:
    def test_basics(self):
        assert arithmetic("+", 1.0, 2.0) == 3.0
        assert arithmetic("-", 1.0, 2.0) == -1.0
        assert arithmetic("*", 3.0, 4.0) == 12.0
        assert arithmetic("div", 7.0, 2.0) == 3.5
        assert arithmetic("mod", 7.0, 2.0) == 1.0

    def test_div_by_zero(self):
        assert arithmetic("div", 1.0, 0.0) == math.inf
        assert arithmetic("div", -1.0, 0.0) == -math.inf
        assert math.isnan(arithmetic("div", 0.0, 0.0))
        assert math.isnan(arithmetic("mod", 1.0, 0.0))

    def test_string_coercion(self):
        assert arithmetic("+", "2", "3") == 5.0


class TestFunctions:
    def test_count(self):
        assert functions.call("count", [items("a", "b")]) == 2.0
        with pytest.raises(TypeError_):
            functions.call("count", ["notseq"])

    def test_existence(self):
        assert functions.call("exists", [items("a")]) is True
        assert functions.call("empty", [[]]) is True

    def test_boolean_family(self):
        assert functions.call("not", [[]]) is True
        assert functions.call("boolean", ["x"]) is True
        assert functions.call("true", []) is True
        assert functions.call("false", []) is False

    def test_string_family(self):
        assert functions.call("contains", ["hello", "ell"]) is True
        assert functions.call("starts-with", ["hello", "he"]) is True
        assert functions.call("string-length", ["abc"]) == 3.0
        assert functions.call("normalize-space", ["  a   b "]) == "a b"
        assert functions.call("substring", ["hello", 2.0, 3.0]) == "ell"
        assert functions.call("substring", ["hello", 3.0]) == "llo"

    def test_numeric_family(self):
        assert functions.call("floor", [2.7]) == 2.0
        assert functions.call("ceiling", [2.1]) == 3.0
        assert functions.call("round", [2.5]) == 3.0
        assert functions.call("round", [-2.5]) == -2.0
        assert functions.call("sum", [items("1", "2", "3")]) == 6.0

    def test_arity_checked(self):
        with pytest.raises(TypeError_):
            functions.call("count", [])
        with pytest.raises(TypeError_):
            functions.call("contains", ["only one"])

    def test_unknown_function(self):
        with pytest.raises(XPathUnsupportedError):
            functions.call("mystery", [])

    def test_value_needed_flags(self):
        assert not functions.value_needed("count", 0)
        assert not functions.value_needed("exists", 0)
        assert functions.value_needed("contains", 0)
