"""Tests for QuickXScan, cross-checked against the DOM baseline."""

from repro.core.stats import StatsRegistry
from repro.lang.parser import parse_xpath
from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.domeval import evaluate_dom
from repro.xpath.qtree import compile_query
from repro.xpath.quickxscan import QuickXScan, evaluate

PAPER_DOC = (
    "<r>"
    "<b><s><t>XML</t><f w='400'>body</f></s></b>"
    "<b><s><u><t>XML</t></u><f w='100'>cheap</f></s>"
    "<s><t>SGML</t><f w='500'>other</f></s></b>"
    "<x><b><s><t>XML</t><f w='350'>deep</f></s></b></x>"
    "</r>"
)

CATALOG_DOC = (
    "<Catalog><Categories>"
    "<Product id='p1'><ProductName>Widget</ProductName>"
    "<RegPrice>120.5</RegPrice><Discount>0.15</Discount></Product>"
    "<Product id='p2'><ProductName>Gadget</ProductName>"
    "<RegPrice>80</RegPrice><Discount>0.05</Discount></Product>"
    "<Product id='p3'><ProductName>Nut</ProductName>"
    "<RegPrice>150</RegPrice><Discount>0.30</Discount></Product>"
    "</Categories></Catalog>"
)

RECURSIVE_DOC = (
    "<a><a><b>x1</b><a><b>x2</b></a></a><b>x3</b>"
    "<c><a><b>x4</b></a></c></a>"
)


def xscan(query, doc):
    events = assign_node_ids(parse(doc).events())
    return evaluate(query, events)


def dom(query, doc):
    return evaluate_dom(query, parse(doc).events())


def both_agree(query, doc):
    """Run both evaluators; assert identical results; return QuickXScan's."""
    stream_result = xscan(query, doc)
    dom_result = dom(query, doc)
    assert [(i.kind, i.local, i.value) for i in stream_result] == \
        [(i.kind, i.local, i.value) for i in dom_result], query
    return stream_result


class TestSimplePaths:
    def test_child_path(self):
        result = both_agree("/Catalog/Categories/Product", CATALOG_DOC)
        assert len(result) == 3
        assert all(i.local == "Product" for i in result)

    def test_descendant(self):
        result = both_agree("//ProductName", CATALOG_DOC)
        assert [i.value for i in result] == ["Widget", "Gadget", "Nut"]

    def test_inner_descendant(self):
        result = both_agree("/Catalog//Discount", CATALOG_DOC)
        assert len(result) == 3

    def test_attribute(self):
        result = both_agree("/Catalog/Categories/Product/@id", CATALOG_DOC)
        assert [i.value for i in result] == ["p1", "p2", "p3"]

    def test_descendant_attribute(self):
        result = both_agree("//@id", CATALOG_DOC)
        assert len(result) == 3

    def test_wildcard(self):
        result = both_agree("/Catalog/Categories/*", CATALOG_DOC)
        assert len(result) == 3

    def test_text_kind(self):
        result = both_agree("//ProductName/text()", CATALOG_DOC)
        assert [i.value for i in result] == ["Widget", "Gadget", "Nut"]

    def test_no_match(self):
        assert both_agree("/Nothing", CATALOG_DOC) == []

    def test_root_path(self):
        result = xscan("/", CATALOG_DOC)
        assert len(result) == 1
        assert result[0].kind == "document"

    def test_results_in_document_order(self):
        result = both_agree("//b", RECURSIVE_DOC)
        orders = [i.order for i in result]
        assert orders == sorted(orders)
        assert len(result) == 4

    def test_recursive_descendant_no_duplicates(self):
        result = both_agree("//a//b", RECURSIVE_DOC)
        assert len(result) == 4  # every b is under some a

    def test_recursive_chain(self):
        result = both_agree("//a//a//b", RECURSIVE_DOC)
        # b's under at least two nested a's: x1, x2 and... a/a/b=x1,
        # a/a/a/b=x2; c/a is under outer a: x4 (a > c > a). x3 is not.
        assert sorted(i.value for i in result) == ["x1", "x2", "x4"]


class TestPredicates:
    def test_value_comparison(self):
        result = both_agree(
            "/Catalog/Categories/Product[RegPrice > 100]", CATALOG_DOC)
        assert len(result) == 2

    def test_equality_string(self):
        result = both_agree(
            "/Catalog/Categories/Product[ProductName = 'Gadget']",
            CATALOG_DOC)
        assert len(result) == 1

    def test_and_or(self):
        result = both_agree(
            "/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]",
            CATALOG_DOC)
        assert len(result) == 2
        result = both_agree(
            "/Catalog/Categories/Product[RegPrice > 140 or Discount < 0.1]",
            CATALOG_DOC)
        assert len(result) == 2

    def test_paper_figure6_query(self):
        result = both_agree('//b/s[.//t = "XML" and f/@w > 300]', PAPER_DOC)
        assert len(result) == 2  # the 400 and the 350 (deep) cases

    def test_existence_predicate(self):
        result = both_agree("//Product[Discount]", CATALOG_DOC)
        assert len(result) == 3

    def test_attribute_predicate(self):
        result = both_agree("//Product[@id = 'p2']/ProductName", CATALOG_DOC)
        assert [i.value for i in result] == ["Gadget"]

    def test_count_function(self):
        result = both_agree("//Categories[count(Product) = 3]", CATALOG_DOC)
        assert len(result) == 1
        assert both_agree("//Categories[count(Product) = 2]",
                          CATALOG_DOC) == []

    def test_contains_function(self):
        result = both_agree("//Product[contains(ProductName, 'dget')]",
                            CATALOG_DOC)
        assert len(result) == 2

    def test_not_function(self):
        result = both_agree("//Product[not(Discount > 0.1)]", CATALOG_DOC)
        assert len(result) == 1

    def test_self_comparison(self):
        result = both_agree("//ProductName[. = 'Widget']", CATALOG_DOC)
        assert len(result) == 1

    def test_nested_predicates(self):
        result = both_agree("//b[s[t = 'XML']]", PAPER_DOC)
        assert len(result) == 2  # first b and the deep b (u-nested t no)

    def test_predicate_on_descendant_branch(self):
        result = both_agree("//b[.//t = 'SGML']", PAPER_DOC)
        assert len(result) == 1

    def test_multiple_predicates(self):
        result = both_agree(
            "/Catalog/Categories/Product[RegPrice > 100][Discount > 0.2]",
            CATALOG_DOC)
        assert len(result) == 1

    def test_arithmetic_predicate(self):
        result = both_agree(
            "/Catalog/Categories/Product[RegPrice * 2 > 250]", CATALOG_DOC)
        assert len(result) == 1  # only 150*2 exceeds 250

    def test_parent_axis_rewrite_end_to_end(self):
        result = both_agree("//t/..", PAPER_DOC)
        dom_names = {i.local for i in result}
        assert dom_names == {"s", "u"}


class TestStateBounds:
    def test_peak_units_bounded_by_q_times_r(self):
        """§4.2: O(|Q|·r) matching units at any time."""
        depth = 30
        doc = "<a>" * depth + "<b>x</b>" + "</a>" * depth
        stats = StatsRegistry()
        query = compile_query(parse_xpath("//a//a//b"))
        events = assign_node_ids(parse(doc).events())
        QuickXScan(query, stats=stats).run(events)
        peak = stats.gauge("xscan.peak_units")
        recursion = depth  # every nested a has the same name
        assert peak <= query.size * recursion + 2

    def test_events_counted(self):
        stats = StatsRegistry()
        query = compile_query(parse_xpath("//b"))
        events = assign_node_ids(parse(PAPER_DOC).events())
        QuickXScan(query, stats=stats).run(events)
        assert stats.get("xscan.events") > 0
        assert stats.get("xscan.matchings") >= 3

    def test_single_pass(self):
        """The evaluator must consume the stream exactly once."""
        count = 0

        def counting():
            nonlocal count
            for event in assign_node_ids(parse(CATALOG_DOC).events()):
                count += 1
                yield event

        evaluate("//Product", counting())
        total_events = sum(1 for _ in parse(CATALOG_DOC).events())
        assert count == total_events


class TestOverStoredData:
    def test_runs_on_persistent_records(self, tmp_path):
        """Fig. 8: the same evaluator over the persistent-data iterator."""
        from repro.core.stats import StatsRegistry
        from repro.rdb.buffer import BufferPool
        from repro.rdb.storage import Disk
        from repro.xdm.names import NameTable
        from repro.xmlstore.store import XmlStore
        store = XmlStore(BufferPool(Disk(page_size=4096,
                                         stats=StatsRegistry()), 64),
                         NameTable(), record_limit=64)
        store.insert_document_text(1, CATALOG_DOC)
        result = evaluate("/Catalog/Categories/Product[RegPrice > 100]",
                          store.document(1).events())
        assert len(result) == 2
        # Node ids from storage are present and usable.
        assert all(r.node_id is not None for r in result)
