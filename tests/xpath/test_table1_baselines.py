"""Table-1 propagation scenarios and the baseline evaluators (E5 backing)."""

import pytest

from repro.core.stats import StatsRegistry
from repro.errors import XPathUnsupportedError
from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.automaton import NaiveStreamEvaluator, evaluate_naive
from repro.xpath.domeval import evaluate_dom
from repro.xpath.quickxscan import evaluate


def xscan(query, doc):
    return evaluate(query, assign_node_ids(parse(doc).events()))


def values(result):
    return sorted(i.value for i in result)


class TestTable1Propagation:
    """The four matching shapes of Table 1 (§4.2).

    Each case checks the sequence-valued attribute (here surfaced as the
    count/content of a predicate branch) is complete and duplicate-free.
    """

    def test_case1_single_a_child_b(self):
        # Path a/b, one a with several b children.
        doc = "<a><b>1</b><x/><b>2</b></a>"
        result = xscan("/a/b", doc)
        assert values(result) == ["1", "2"]
        # The sequence attribute: count(b) at a.
        assert len(xscan("/a[count(b) = 2]", doc)) == 1

    def test_case2_nested_a_child_b(self):
        # Path a//... here: nested a's, each with direct b children; the b
        # sequences must stay per-instance (no sideways for child axis).
        doc = "<a><b>outer</b><a><b>inner</b></a></a>"
        result = xscan("//a/b", doc)
        assert values(result) == ["inner", "outer"]
        # Each a sees only its own children.
        assert len(xscan("//a[count(b) = 1]", doc)) == 2
        assert len(xscan("//a[count(b) = 2]", doc)) == 0

    def test_case3_single_a_descendant_b(self):
        # Path a//b with b's nested inside b's: sideways accumulation of
        # descendant-or-self sequences, no duplicates.
        doc = "<a><b>x<b>y</b></b></a>"
        result = xscan("/a//b", doc)
        assert len(result) == 2
        assert len(xscan("/a[count(.//b) = 2]", doc)) == 1

    def test_case4_nested_a_descendant_b(self):
        # Path a//b with nested a's AND nested b's: full transitivity.
        doc = "<a><a><b>1<b>2</b></b></a><b>3</b></a>"
        outer_count = xscan("/a[count(.//b) = 3]", doc)
        assert len(outer_count) == 1  # outer a sees b1, b2, b3
        inner_count = xscan("/a/a[count(.//b) = 2]", doc)
        assert len(inner_count) == 1  # inner a sees b1, b2
        result = xscan("//a//b", doc)
        assert len(result) == 3  # duplicate-free result sequence

    def test_deep_recursion_duplicate_free(self):
        depth = 12
        doc = "<a>" * depth + "<b>leaf</b>" + "</a>" * depth
        result = xscan("//a//b", doc)
        assert len(result) == 1  # one b, reachable through many a's


class TestDomBaseline:
    def test_matches_quickxscan_on_catalog(self):
        doc = ("<c><p><v>1</v></p><p><v>2</v></p></c>")
        dom_result = evaluate_dom("//p[v > 1]", parse(doc).events())
        stream_result = xscan("//p[v > 1]", doc)
        assert len(dom_result) == len(stream_result) == 1

    def test_tree_node_gauge(self):
        stats = StatsRegistry()
        evaluate_dom("//b", parse("<a><b/><b/></a>").events(), stats=stats)
        assert stats.gauge("domeval.tree_nodes") == 4  # doc, a, b, b

    def test_parent_axis_native(self):
        from repro.lang import ast
        path = ast.LocationPath(True, [
            ast.Step(ast.Axis.DESCENDANT, ast.NameTest("b")),
            ast.Step(ast.Axis.PARENT, ast.KindTest("node")),
        ])
        result = evaluate_dom(path, parse("<a><b/></a>").events())
        assert [i.local for i in result] == ["a"]


class TestNaiveAutomaton:
    def test_results_match_quickxscan(self):
        doc = "<r><b><s/></b><x><b><s/><s/></b></x></r>"
        naive = evaluate_naive(
            "//b/s", assign_node_ids(parse(doc).events()))
        stream = xscan("//b/s", doc)
        assert len(naive) == len(stream) == 3

    def test_absolute_child_path(self):
        doc = "<r><a><b>hit</b></a><b>miss</b></r>"
        naive = evaluate_naive("/r/a/b",
                               assign_node_ids(parse(doc).events()))
        assert len(naive) == 1

    def test_attribute_step(self):
        doc = "<r><p id='1'/><q id='2'/></r>"
        naive = evaluate_naive("//p/@id",
                               assign_node_ids(parse(doc).events()))
        assert [i.value for i in naive] == ["1"]

    def test_state_explosion_on_recursive_data(self):
        """Fig. 7(c): //a//a//a over nested a's explodes; QuickXScan stays
        linear in the recursion depth."""
        depth = 24
        doc = "<a>" * depth + "</a>" * depth
        events = list(assign_node_ids(parse(doc).events()))

        naive = NaiveStreamEvaluator("//a//a//a//a")
        naive_result = naive.run(iter(events))

        stats = StatsRegistry()
        stream_result = evaluate("//a//a//a//a", iter(events), stats=stats)
        assert {i.node_id for i in naive_result} == \
            {i.node_id for i in stream_result}
        qx_peak = stats.gauge("xscan.peak_units")
        # Naive instances grow quadratically+ with depth; QuickXScan linearly.
        assert naive.peak_instances > 10 * qx_peak

    def test_rejects_predicates(self):
        with pytest.raises(XPathUnsupportedError):
            NaiveStreamEvaluator("//a[b]")

    def test_rejects_kind_tests(self):
        with pytest.raises(XPathUnsupportedError):
            NaiveStreamEvaluator("//text()")


class TestThreeWayAgreement:
    """Property-style: all three evaluators agree on predicate-free paths."""

    DOCS = [
        "<r><a><b/></a><b/><c><a><b/><d><b/></d></a></c></r>",
        "<a><a><a><b/></a></a><b/></a>",
        "<r><x y='1'><x y='2'><x y='3'/></x></x></r>",
    ]
    QUERIES = ["//b", "//a/b", "//a//b", "/r//b", "//x/@y", "//a/a"]

    @pytest.mark.parametrize("doc", DOCS)
    @pytest.mark.parametrize("query", QUERIES)
    def test_agree(self, doc, query):
        events = list(assign_node_ids(parse(doc).events()))
        stream = evaluate(query, iter(events))
        dom_result = evaluate_dom(query, iter(events))
        try:
            naive = evaluate_naive(query, iter(events))
        except XPathUnsupportedError:
            naive = None
        stream_ids = [i.node_id for i in stream]
        assert stream_ids == [i.node_id for i in dom_result], (query, doc)
        if naive is not None:
            assert stream_ids == [i.node_id for i in naive], (query, doc)
