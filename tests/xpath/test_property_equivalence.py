"""Property tests: QuickXScan ≡ DOM evaluation on random documents/queries.

The DOM evaluator is a direct transcription of XPath navigation semantics;
agreement over randomly generated documents and randomly generated queries
is the strongest correctness evidence for the streaming algorithm.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.domeval import evaluate_dom
from repro.xpath.quickxscan import evaluate

_TAGS = ["a", "b", "c", "d"]


@st.composite
def documents(draw, max_depth=4):
    """Random XML text over a tiny tag alphabet (recursion-friendly)."""

    def build(depth):
        tag = draw(st.sampled_from(_TAGS))
        if depth >= max_depth:
            body = draw(st.sampled_from(["", "x", "XML", "7", "42"]))
        else:
            n_children = draw(st.integers(min_value=0, max_value=3))
            if n_children == 0:
                body = draw(st.sampled_from(["", "x", "XML", "7", "42"]))
            else:
                body = "".join(build(depth + 1) for _ in range(n_children))
        attr = ""
        if draw(st.booleans()):
            attr = f' w="{draw(st.integers(min_value=0, max_value=500))}"'
        return f"<{tag}{attr}>{body}</{tag}>"

    return build(0)


@st.composite
def queries(draw):
    """Random location paths over the same alphabet."""
    n_steps = draw(st.integers(min_value=1, max_value=3))
    parts = []
    for _ in range(n_steps):
        sep = draw(st.sampled_from(["/", "//"]))
        test = draw(st.sampled_from(_TAGS + ["*"]))
        predicate = draw(st.sampled_from([
            "", "", "", "[b]", "[@w]", "[@w > 250]", "[. = 'XML']",
            "[count(b) = 1]", "[.//c]", "[text()]",
        ]))
        parts.append(f"{sep}{test}{predicate}")
    final = draw(st.sampled_from(["", "", "/@w", "/text()"]))
    return "".join(parts) + final


class TestEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(documents(), queries())
    def test_quickxscan_matches_dom(self, doc, query):
        events = list(assign_node_ids(parse(doc).events()))
        stream_result = evaluate(query, iter(events))
        dom_result = evaluate_dom(query, iter(events))
        assert [i.node_id for i in stream_result] == \
            [i.node_id for i in dom_result], (doc, query)
        # String values agree for every matched node.
        assert [i.value for i in stream_result] == \
            [i.value for i in dom_result], (doc, query)

    @settings(max_examples=100, deadline=None)
    @given(documents())
    def test_results_are_document_ordered_and_unique(self, doc):
        events = list(assign_node_ids(parse(doc).events()))
        for query in ("//a", "//a//b", "//*[@w]"):
            result = evaluate(query, iter(events))
            orders = [i.order for i in result]
            assert orders == sorted(orders)
            assert len(set(orders)) == len(orders)

    @settings(max_examples=100, deadline=None)
    @given(documents(), queries())
    def test_evaluation_over_storage_matches_direct(self, doc, query):
        """Fig. 8: the persistent-records iterator feeds the same results."""
        from repro.core.stats import StatsRegistry
        from repro.rdb.buffer import BufferPool
        from repro.rdb.storage import Disk
        from repro.xdm.names import NameTable
        from repro.xmlstore.store import XmlStore
        store = XmlStore(
            BufferPool(Disk(page_size=1024, stats=StatsRegistry()), 64),
            NameTable(), record_limit=48)
        store.insert_document_text(1, doc)
        direct_events = list(assign_node_ids(parse(doc).events()))
        direct = evaluate(query, iter(direct_events))
        stored = evaluate(query, store.document(1).events())
        assert [i.node_id for i in direct] == [i.node_id for i in stored]
        assert [i.value for i in direct] == [i.value for i in stored]
