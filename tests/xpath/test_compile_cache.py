"""Tests for the parse/compile LRU caches (repro.xpath.cache)."""

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.engine import Database
from repro.core.stats import StatsRegistry
from repro.lang.parser import parse_xpath
from repro.xpath import cache
from repro.xpath.cache import (CACHE_SIZE, cache_info, cached_compile,
                               cached_parse, clear_caches)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestCachedParse:
    def test_hit_and_miss_counters(self):
        stats = StatsRegistry()
        first = cached_parse("/a/b", stats=stats)
        again = cached_parse("/a/b", stats=stats)
        assert again is first                  # shared AST object
        assert stats.get("xpath.parse_misses") == 1
        assert stats.get("xpath.parse_hits") == 1

    def test_namespaces_participate_in_key(self):
        stats = StatsRegistry()
        plain = cached_parse("/x:a", {"x": "urn:one"}, stats=stats)
        other = cached_parse("/x:a", {"x": "urn:two"}, stats=stats)
        assert plain is not other
        assert stats.get("xpath.parse_misses") == 2
        # Binding order does not matter.
        a = cached_parse("/x:a", {"x": "u1", "y": "u2"}, stats=stats)
        b = cached_parse("/x:a", {"y": "u2", "x": "u1"}, stats=stats)
        assert a is b

    def test_parse_result_matches_uncached(self):
        assert repr(cached_parse("/a//b[@c > 3]")) == \
            repr(parse_xpath("/a//b[@c > 3]"))


class TestCachedCompile:
    def test_hit_and_miss_counters(self):
        stats = StatsRegistry()
        path = parse_xpath("/a/b[c]")
        first = cached_compile(path, stats=stats)
        again = cached_compile(path, stats=stats)
        assert again is first
        assert stats.get("xpath.compile_misses") == 1
        assert stats.get("xpath.compile_hits") == 1

    def test_structurally_equal_paths_share_one_entry(self):
        stats = StatsRegistry()
        a = cached_compile(parse_xpath("/a/b"), stats=stats)
        b = cached_compile(parse_xpath("/a/b"), stats=stats)
        assert a is b

    def test_collect_flag_is_part_of_the_key(self):
        stats = StatsRegistry()
        path = parse_xpath("/a/b")
        with_values = cached_compile(path, True, stats=stats)
        without = cached_compile(path, False, stats=stats)
        assert with_values is not without
        assert stats.get("xpath.compile_misses") == 2


class TestLruBehaviour:
    def test_eviction_at_capacity(self):
        stats = StatsRegistry()
        for i in range(CACHE_SIZE + 10):
            cached_parse(f"/a/e{i}", stats=stats)
        assert cache_info()["parse"] == CACHE_SIZE
        # The oldest entries were evicted; re-parsing them misses.
        before = stats.get("xpath.parse_misses")
        cached_parse("/a/e0", stats=stats)
        assert stats.get("xpath.parse_misses") == before + 1

    def test_recent_use_protects_against_eviction(self):
        stats = StatsRegistry()
        cached_parse("/keep/me", stats=stats)
        for i in range(CACHE_SIZE - 1):
            cached_parse(f"/fill/e{i}", stats=stats)
            cached_parse("/keep/me", stats=stats)   # refresh recency
        cached_parse("/one/more", stats=stats)      # evicts the LRU entry
        before = stats.get("xpath.parse_hits")
        cached_parse("/keep/me", stats=stats)
        assert stats.get("xpath.parse_hits") == before + 1

    def test_clear_caches(self):
        cached_parse("/a")
        cached_compile(parse_xpath("/a"))
        clear_caches()
        assert cache_info()["parse"] == 0
        assert cache_info()["compile"] == 0


class TestEngineIntegration:
    def test_repeated_xpath_hits_cache_with_identical_results(self):
        db = Database(DEFAULT_CONFIG.with_(record_size_limit=128))
        db.create_table("t", [("doc", "xml")])
        for i in range(4):
            db.insert("t", (f"<r><v>{i}</v></r>",))
        first = db.xpath("t", "doc", "/r/v")
        assert db.stats.get("xpath.parse_misses") == 1
        assert db.stats.get("xpath.compile_misses") == 1
        second = db.xpath("t", "doc", "/r/v")
        assert db.stats.get("xpath.parse_hits") >= 1
        assert db.stats.get("xpath.compile_hits") >= 1
        assert [(m.docid, m.match.item.value) for m in first] == \
            [(m.docid, m.match.item.value) for m in second]

    def test_cache_shared_across_engines_but_counted_per_engine(self):
        a = Database()
        b = Database()
        for db in (a, b):
            db.create_table("t", [("doc", "xml")])
            db.insert("t", ("<r><v>1</v></r>",))
        a.xpath("t", "doc", "/r/v")
        b.xpath("t", "doc", "/r/v")
        assert a.stats.get("xpath.parse_misses") == 1
        assert b.stats.get("xpath.parse_hits") >= 1
        assert b.stats.get("xpath.parse_misses") == 0

    def test_module_state_is_reachable_for_tests(self):
        # Guard against the caches being rebound (tests rely on clearing).
        assert cache._parse_cache is not None
        assert cache._compile_cache is not None
