"""Edge-case semantics: intermediate duplicate elimination, kind tests over
storage, and document-level miscellany."""

from repro.xdm.events import assign_node_ids
from repro.xdm.parser import parse
from repro.xpath.domeval import evaluate_dom
from repro.xpath.quickxscan import evaluate


def both(query, doc):
    events = list(assign_node_ids(parse(doc).events()))
    stream = evaluate(query, iter(events))
    dom = evaluate_dom(query, iter(events))
    assert [i.node_id for i in stream] == [i.node_id for i in dom], query
    return stream


class TestIntermediateDeduplication:
    """count(.//a//b) must count *distinct* b's even when nested a's would
    deliver them through multiple propagation chains — the case the paper's
    unpublished propagation rules address and consumption-time dedup covers."""

    DOC = "<r><a><a><b>1</b></a><b>2</b></a></r>"

    def test_count_over_descendant_chain(self):
        # .//a//b from r: distinct b's = 2 (both under some a under r).
        assert len(both("//r[count(.//a//b) = 2]", self.DOC)) == 1
        assert both("//r[count(.//a//b) = 3]", self.DOC) == []

    def test_deeper_nesting(self):
        doc = "<r>" + "<a>" * 4 + "<b>x</b>" + "</a>" * 4 + "</r>"
        assert len(both("//r[count(.//a//b) = 1]", doc)) == 1

    def test_comparison_over_duplicated_chain(self):
        # Existential comparison is unaffected by multiplicity, but the
        # sequence fed to it must carry correct values.
        assert len(both("//r[.//a//b = '2']", self.DOC)) == 1
        assert both("//r[.//a//b = '9']", self.DOC) == []

    def test_sum_over_descendant_chain(self):
        assert len(both("//r[sum(.//a//b) = 3]", self.DOC)) == 1


class TestKindTestsAndWildcards:
    DOC = ("<r>top<child>in<!--note--><?pi data?></child>tail"
           "<child>two</child></r>")

    def test_all_text_nodes(self):
        result = both("//text()", self.DOC)
        assert [i.value for i in result] == ["top", "in", "tail", "two"]

    def test_child_text_only(self):
        result = both("/r/text()", self.DOC)
        assert [i.value for i in result] == ["top", "tail"]

    def test_comment_kind(self):
        result = both("//comment()", self.DOC)
        assert [i.value for i in result] == ["note"]

    def test_pi_kind_with_target(self):
        result = both("//processing-instruction('pi')", self.DOC)
        assert len(result) == 1
        assert both("//processing-instruction('other')", self.DOC) == []

    def test_node_kind_matches_all_child_kinds(self):
        result = both("/r/child/node()", self.DOC)
        kinds = [i.kind for i in result]
        assert kinds == ["text", "comment", "processing-instruction",
                         "text"]

    def test_wildcard_star_elements_only(self):
        result = both("/r/*", self.DOC)
        assert [i.local for i in result] == ["child", "child"]

    def test_kind_tests_over_storage(self):
        from repro.core.stats import StatsRegistry
        from repro.rdb.buffer import BufferPool
        from repro.rdb.storage import Disk
        from repro.xdm.names import NameTable
        from repro.xmlstore.store import XmlStore
        store = XmlStore(BufferPool(Disk(1024, stats=StatsRegistry()), 64),
                         NameTable(), record_limit=48)
        store.insert_document_text(1, self.DOC)
        stored = evaluate("//comment()", store.document(1).events())
        assert [i.value for i in stored] == ["note"]
        stored = evaluate("//text()", store.document(1).events())
        assert [i.value for i in stored] == ["top", "in", "tail", "two"]


class TestDocumentLevelMisc:
    def test_doc_level_comments_and_pis(self):
        doc = "<!--before--><?style x?><r>body</r><!--after-->"
        result = both("//comment()", doc)
        assert [i.value for i in result] == ["before", "after"]
        result = both("//processing-instruction()", doc)
        assert len(result) == 1

    def test_empty_predicates_chain(self):
        doc = "<r><a/><a><b/></a></r>"
        assert len(both("//a[b][not(c)]", doc)) == 1

    def test_or_across_branches(self):
        doc = "<r><p><x>1</x></p><p><y>2</y></p><p><z>3</z></p></r>"
        assert len(both("//p[x or y]", doc)) == 2

    def test_numeric_string_coercion_in_predicates(self):
        doc = "<r><v>007</v><v>7.0</v><v>8</v></r>"
        assert len(both("//v[. = 7]", doc)) == 2  # numeric comparison
